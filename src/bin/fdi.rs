//! `fdi` — the flow-directed inlining optimizer as a command-line tool.
//!
//! ```text
//! fdi optimize <file.scm> [-t THRESHOLD] [--clref] [--policy 0cfa|poly|1cfa]
//! fdi run      <file.scm> [-t THRESHOLD] [--clref] [--stats]
//! fdi analyze  <file.scm> [--policy …]
//! ```
//!
//! `optimize` prints the optimized source; `run` executes baseline and
//! optimized versions on the cost-model VM and reports both; `analyze`
//! prints flow-analysis statistics and inline candidates.
//!
//! By default the pipeline degrades on phase failures (budget trips, limit
//! aborts, contained panics) and reports them as `;; degraded:` warnings on
//! stderr; `--strict` turns the first such failure into a non-zero exit.
//! `--deadline-ms`, `--fuel`, and `--max-growth` bound the run.

use fdi_core::{optimize, optimize_strict, Budget, PipelineConfig, Polyvariance, RunConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    command: String,
    file: String,
    threshold: usize,
    unroll: usize,
    clref: bool,
    policy: Polyvariance,
    stats: bool,
    dump: bool,
    strict: bool,
    budget: Budget,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fdi <optimize|run|analyze> <file.scm> \
         [-t THRESHOLD] [--unroll N] [--clref] [--policy 0cfa|poly|1cfa] [--stats] [--dump] \
         [--strict] [--deadline-ms N] [--fuel N] [--max-growth X]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let mut args = std::env::args().skip(1);
    let command = args.next()?;
    let mut opts = Options {
        command,
        file: String::new(),
        threshold: 200,
        unroll: 0,
        clref: false,
        policy: Polyvariance::PolymorphicSplitting,
        stats: false,
        dump: false,
        strict: false,
        budget: Budget::default(),
    };
    let mut rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "-t" | "--threshold" => {
                opts.threshold = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--unroll" => {
                opts.unroll = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--clref" => {
                opts.clref = true;
                rest.remove(i);
            }
            "--stats" => {
                opts.stats = true;
                rest.remove(i);
            }
            "--dump" => {
                opts.dump = true;
                rest.remove(i);
            }
            "--strict" => {
                opts.strict = true;
                rest.remove(i);
            }
            "--deadline-ms" => {
                let ms: u64 = rest.get(i + 1)?.parse().ok()?;
                opts.budget = opts.budget.with_deadline(Duration::from_millis(ms));
                rest.drain(i..=i + 1);
            }
            "--fuel" => {
                opts.budget = opts.budget.with_fuel(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--max-growth" => {
                opts.budget = opts.budget.with_max_growth(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--policy" => {
                opts.policy = match rest.get(i + 1)?.as_str() {
                    "0cfa" => Polyvariance::Monovariant,
                    "poly" | "poly-split" => Polyvariance::PolymorphicSplitting,
                    "1cfa" => Polyvariance::CallStrings(1),
                    "2cfa" => Polyvariance::CallStrings(2),
                    _ => return None,
                };
                rest.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    opts.file = rest.into_iter().next()?;
    Some(opts)
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else {
        return usage();
    };
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fdi: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let mut config = PipelineConfig::with_threshold(opts.threshold);
    config.policy = opts.policy;
    config.unroll = opts.unroll;
    config.budget = opts.budget;
    if opts.clref {
        config.mode = fdi_core::InlineMode::ClRef;
    }
    // Degrading by default; `--strict` propagates the first phase failure.
    let run_pipeline = |src: &str| {
        let result = if opts.strict {
            optimize_strict(src, &config)
        } else {
            optimize(src, &config)
        };
        match result {
            Ok(out) => {
                if out.health.degraded() {
                    eprintln!(";; degraded: {}", out.health.summary());
                }
                Some(out)
            }
            Err(e) => {
                eprintln!("fdi: {e}");
                None
            }
        }
    };
    match opts.command.as_str() {
        "optimize" => {
            let Some(out) = run_pipeline(&src) else {
                return ExitCode::FAILURE;
            };
            println!("{}", fdi_sexpr::pretty(&fdi_lang::unparse(&out.optimized)));
            eprintln!(
                ";; inlined {} sites, pruned {} branches, size ratio {:.2}, analysis {:?}",
                out.report.sites_inlined,
                out.report.branches_pruned,
                out.size_ratio(),
                out.flow_stats.duration
            );
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(out) = run_pipeline(&src) else {
                return ExitCode::FAILURE;
            };
            let cfg = RunConfig::default();
            let base = fdi_vm::run(&out.baseline, &cfg);
            let opt = fdi_vm::run(&out.optimized, &cfg);
            match (base, opt) {
                (Ok(b), Ok(o)) => {
                    print!("{}", o.output);
                    println!("{}", o.value);
                    if b.value != o.value {
                        eprintln!("fdi: MISCOMPILE: baseline computed {}", b.value);
                        return ExitCode::FAILURE;
                    }
                    if opts.stats {
                        let m = &cfg.model;
                        eprintln!(
                            ";; baseline : total {:>12} (mutator {}, collector {}), {} calls",
                            b.counters.total(m),
                            b.counters.mutator,
                            b.counters.collector(m),
                            b.counters.calls
                        );
                        eprintln!(
                            ";; optimized: total {:>12} (mutator {}, collector {}), {} calls",
                            o.counters.total(m),
                            o.counters.mutator,
                            o.counters.collector(m),
                            o.counters.calls
                        );
                        eprintln!(
                            ";; speedup  : {:.3}x",
                            b.counters.total(m) as f64 / o.counters.total(m) as f64
                        );
                    }
                    ExitCode::SUCCESS
                }
                (_, Err(e)) | (Err(e), _) => {
                    eprintln!("fdi: runtime error: {}", e.message);
                    ExitCode::FAILURE
                }
            }
        }
        "analyze" => {
            let program = match fdi_lang::parse_and_lower(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("fdi: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let flow = fdi_cfa::analyze(&program, opts.policy);
            let s = flow.stats();
            let candidates = flow.candidate_call_sites(&program);
            println!("policy            : {}", opts.policy.name());
            println!("nodes             : {}", s.nodes);
            println!("edges             : {}", s.edges);
            println!("worklist steps    : {}", s.steps);
            println!("contours          : {}", s.contours);
            println!("abstract closures : {}", s.closures);
            println!("analysis time     : {:?}", s.duration);
            println!("inline candidates : {}", candidates.len());
            println!("arity mismatches  : {}", s.arity_mismatches);
            if opts.dump {
                println!();
                print!("{}", fdi_cfa::dump_analysis(&flow, &program));
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
