//! `fdi` — the flow-directed inlining optimizer as a command-line tool.
//!
//! ```text
//! fdi optimize <file.scm> [-t THRESHOLD] [--clref] [--policy 0cfa|poly|1cfa]
//! fdi run      <file.scm> [-t THRESHOLD] [--clref] [--stats]
//! fdi analyze  <file.scm> [--policy …]
//! fdi batch    <manifest> [--jobs N] [--out FILE]
//! ```
//!
//! `optimize` prints the optimized source; `run` executes baseline and
//! optimized versions on the cost-model VM and reports both; `analyze`
//! prints flow-analysis statistics and inline candidates.
//!
//! `batch` runs a whole manifest of jobs on the concurrent engine
//! (`fdi-engine`) and emits one JSON report. Each manifest line is a job:
//! a source — `path/to/file.scm` or `bench:<name>[@<scale>]` — followed by
//! per-job flags (`-t`, `--policy`, `--unroll`, `--clref`, `--fuel`,
//! `--deadline-ms`, `--max-growth`). Blank lines and `#` comments are
//! skipped. Identical jobs dedup in flight, and jobs sharing a source or an
//! analysis policy share artifacts through the engine's cache.
//!
//! By default the pipeline degrades on phase failures (budget trips, limit
//! aborts, contained panics) and reports them as `;; degraded:` warnings on
//! stderr; `--strict` turns the first such failure into a non-zero exit.
//! `--deadline-ms`, `--fuel`, and `--max-growth` bound the run.
//!
//! `--validate` arms the translation-validation oracle: after every
//! transformation checkpoint the candidate program is run against the
//! original on the cost-model VM (under `--oracle-fuel`), and a divergence
//! rolls the pipeline back to the last validated program (reported in the
//! health ledger as an oracle rejection). `--faults SEED` arms the seeded
//! chaos plan — deterministic injected panics, typed errors, and latency at
//! every catalogued pipeline fault point; in `batch`, `--engine-faults SEED`
//! additionally arms the engine's cache and worker-pool seams.

use fdi_core::{
    optimize, optimize_strict, Budget, FaultPlan, OracleConfig, PipelineConfig, Polyvariance,
    RunConfig,
};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    command: String,
    file: String,
    threshold: usize,
    unroll: usize,
    clref: bool,
    policy: Polyvariance,
    stats: bool,
    dump: bool,
    strict: bool,
    budget: Budget,
    validate: bool,
    oracle_fuel: Option<u64>,
    faults: Option<u64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fdi <optimize|run|analyze> <file.scm> \
         [-t THRESHOLD] [--unroll N] [--clref] [--policy 0cfa|poly|1cfa] [--stats] [--dump] \
         [--strict] [--deadline-ms N] [--fuel N] [--max-growth X] \
         [--validate] [--oracle-fuel N] [--faults SEED]\n       \
         fdi batch <manifest> [--jobs N] [--out FILE] \
         [--validate] [--oracle-fuel N] [--faults SEED] [--engine-faults SEED]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let mut args = std::env::args().skip(1);
    let command = args.next()?;
    let mut opts = Options {
        command,
        file: String::new(),
        threshold: 200,
        unroll: 0,
        clref: false,
        policy: Polyvariance::PolymorphicSplitting,
        stats: false,
        dump: false,
        strict: false,
        budget: Budget::default(),
        validate: false,
        oracle_fuel: None,
        faults: None,
    };
    let mut rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "-t" | "--threshold" => {
                opts.threshold = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--unroll" => {
                opts.unroll = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--clref" => {
                opts.clref = true;
                rest.remove(i);
            }
            "--stats" => {
                opts.stats = true;
                rest.remove(i);
            }
            "--dump" => {
                opts.dump = true;
                rest.remove(i);
            }
            "--strict" => {
                opts.strict = true;
                rest.remove(i);
            }
            "--deadline-ms" => {
                let ms: u64 = rest.get(i + 1)?.parse().ok()?;
                opts.budget = opts.budget.with_deadline(Duration::from_millis(ms));
                rest.drain(i..=i + 1);
            }
            "--fuel" => {
                opts.budget = opts.budget.with_fuel(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--max-growth" => {
                opts.budget = opts.budget.with_max_growth(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--validate" => {
                opts.validate = true;
                rest.remove(i);
            }
            "--oracle-fuel" => {
                opts.oracle_fuel = Some(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--faults" => {
                opts.faults = Some(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--policy" => {
                opts.policy = match rest.get(i + 1)?.as_str() {
                    "0cfa" => Polyvariance::Monovariant,
                    "poly" | "poly-split" => Polyvariance::PolymorphicSplitting,
                    "1cfa" => Polyvariance::CallStrings(1),
                    "2cfa" => Polyvariance::CallStrings(2),
                    _ => return None,
                };
                rest.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    opts.file = rest.into_iter().next()?;
    Some(opts)
}

/// Minimal JSON string escaping for the batch report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Applies one manifest line's per-job flags to `config`.
fn apply_job_flags(config: &mut PipelineConfig, tokens: &[&str]) -> Result<(), String> {
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        tokens
            .get(*i)
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < tokens.len() {
        match tokens[i] {
            "-t" | "--threshold" => {
                config.threshold = next(&mut i, "-t")?
                    .parse()
                    .map_err(|e| format!("-t: {e}"))?;
            }
            "--unroll" => {
                config.unroll = next(&mut i, "--unroll")?
                    .parse()
                    .map_err(|e| format!("--unroll: {e}"))?;
            }
            "--clref" => config.mode = fdi_core::InlineMode::ClRef,
            "--policy" => {
                config.policy = match next(&mut i, "--policy")?.as_str() {
                    "0cfa" => Polyvariance::Monovariant,
                    "poly" | "poly-split" => Polyvariance::PolymorphicSplitting,
                    "1cfa" => Polyvariance::CallStrings(1),
                    "2cfa" => Polyvariance::CallStrings(2),
                    p => return Err(format!("unknown policy {p:?}")),
                };
            }
            "--fuel" => {
                let fuel = next(&mut i, "--fuel")?
                    .parse()
                    .map_err(|e| format!("--fuel: {e}"))?;
                config.budget = config.budget.with_fuel(fuel);
            }
            "--deadline-ms" => {
                let ms: u64 = next(&mut i, "--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                config.budget = config.budget.with_deadline(Duration::from_millis(ms));
            }
            "--max-growth" => {
                let x = next(&mut i, "--max-growth")?
                    .parse()
                    .map_err(|e| format!("--max-growth: {e}"))?;
                config.budget = config.budget.with_max_growth(x);
            }
            "--validate" => config.oracle = OracleConfig::on(),
            "--oracle-fuel" => {
                config.oracle.fuel = next(&mut i, "--oracle-fuel")?
                    .parse()
                    .map_err(|e| format!("--oracle-fuel: {e}"))?;
            }
            "--faults" => {
                let seed = next(&mut i, "--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
                config.faults = FaultPlan::new(seed);
            }
            flag => return Err(format!("unknown job flag {flag:?}")),
        }
        i += 1;
    }
    Ok(())
}

/// Resolves a manifest source spec: `bench:<name>[@<scale>]` or a file path.
fn resolve_source(spec: &str) -> Result<String, String> {
    if let Some(bench) = spec.strip_prefix("bench:") {
        let (name, scale) = match bench.split_once('@') {
            Some((n, s)) => {
                let scale: u32 = s.parse().map_err(|e| format!("{spec}: bad scale: {e}"))?;
                (n, Some(scale))
            }
            None => (bench, None),
        };
        let b = fdi_benchsuite::by_name(name)
            .ok_or_else(|| format!("{spec}: no benchmark named {name:?}"))?;
        Ok(b.scaled(scale.unwrap_or(b.default_scale)))
    } else {
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))
    }
}

/// Renders a health ledger as a JSON array of degradation objects.
fn health_json(health: &fdi_core::PipelineHealth) -> String {
    let entries: Vec<String> = health
        .degradations
        .iter()
        .map(|d| {
            format!(
                "{{\"phase\":\"{}\",\"error\":\"{}\",\"fallback\":\"{}\"}}",
                d.phase,
                json_escape(&d.error.to_string()),
                json_escape(&d.fallback.to_string())
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// `fdi batch <manifest> [--jobs N] [--out FILE] [--validate]
/// [--oracle-fuel N] [--faults SEED] [--engine-faults SEED]`.
fn run_batch_command(mut args: Vec<String>) -> ExitCode {
    let mut jobs = None;
    let mut out_file = None;
    let mut default_config = PipelineConfig::default();
    let mut engine_faults = FaultPlan::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                jobs = Some(n);
                args.drain(i..=i + 1);
            }
            "--out" => {
                let Some(f) = args.get(i + 1) else {
                    return usage();
                };
                out_file = Some(f.clone());
                args.drain(i..=i + 1);
            }
            "--validate" => {
                default_config.oracle = OracleConfig::on();
                args.remove(i);
            }
            "--oracle-fuel" => {
                let Some(fuel) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                default_config.oracle.fuel = fuel;
                args.drain(i..=i + 1);
            }
            "--faults" => {
                let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                default_config.faults = FaultPlan::new(seed);
                args.drain(i..=i + 1);
            }
            "--engine-faults" => {
                let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                engine_faults = FaultPlan::new(seed);
                args.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    let Some(manifest_path) = args.first() else {
        return usage();
    };
    let manifest = match std::fs::read_to_string(manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("fdi: cannot read {manifest_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse the manifest into (spec, config, source?) jobs. Source
    // resolution failures become per-job errors in the report, not a
    // manifest rejection — one bad path must not kill the batch.
    struct Line {
        spec: String,
        config: PipelineConfig,
        source: Result<String, String>,
    }
    let mut lines = Vec::new();
    for (lineno, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let spec = tokens[0].to_string();
        let mut config = default_config;
        if let Err(e) = apply_job_flags(&mut config, &tokens[1..]) {
            eprintln!("fdi: {manifest_path}:{}: {e}", lineno + 1);
            return ExitCode::FAILURE;
        }
        let source = resolve_source(&spec);
        lines.push(Line {
            spec,
            config,
            source,
        });
    }

    let engine = fdi_engine::Engine::new(fdi_engine::EngineConfig {
        faults: engine_faults,
        ..match jobs {
            Some(n) => fdi_engine::EngineConfig::with_workers(n),
            None => fdi_engine::EngineConfig::default(),
        }
    });
    let handles: Vec<Option<fdi_engine::JobHandle>> = lines
        .iter()
        .map(|line| {
            line.source
                .as_ref()
                .ok()
                .map(|src| engine.submit(fdi_engine::Job::new(src.as_str(), line.config)))
        })
        .collect();

    let mut entries = Vec::new();
    let mut failures = 0u32;
    for (line, handle) in lines.iter().zip(handles) {
        let head = format!(
            "{{\"spec\":\"{}\",\"threshold\":{}",
            json_escape(&line.spec),
            line.config.threshold
        );
        let entry = match handle.map(|h| h.wait()) {
            None => {
                failures += 1;
                format!(
                    "{head},\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(line.source.as_ref().unwrap_err())
                )
            }
            Some(Err(e)) => {
                failures += 1;
                format!(
                    "{head},\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(&e.to_string())
                )
            }
            Some(Ok(out)) => format!(
                concat!(
                    "{},\"ok\":true,\"degraded\":{},\"oracle_rejected\":{},",
                    "\"size_ratio\":{:.6},",
                    "\"baseline_size\":{},\"optimized_size\":{},\"sites_inlined\":{},",
                    "\"analysis_ms\":{:.3},\"health\":{}}}"
                ),
                head,
                out.health.degraded(),
                out.health.oracle_rejected(),
                out.size_ratio(),
                out.baseline_size,
                out.optimized_size,
                out.report.sites_inlined,
                out.flow_stats.duration.as_secs_f64() * 1e3,
                health_json(&out.health),
            ),
        };
        entries.push(entry);
    }
    // The poison list: jobs the supervisor quarantined after exhausting
    // their retries. Map each back to its manifest spec by source text.
    let poisoned: Vec<String> = engine
        .poisoned()
        .iter()
        .map(|p| {
            let spec = lines
                .iter()
                .find(|l| l.source.as_deref().ok() == Some(&*p.source))
                .map(|l| l.spec.as_str())
                .unwrap_or("<unknown>");
            format!(
                "{{\"spec\":\"{}\",\"threshold\":{},\"attempts\":{},\"error\":\"{}\"}}",
                json_escape(spec),
                p.threshold,
                p.attempts,
                json_escape(&p.error.to_string())
            )
        })
        .collect();
    let report = format!(
        "{{\"jobs\":[{}],\"poisoned\":[{}],\"stats\":{}}}\n",
        entries.join(","),
        poisoned.join(","),
        engine.stats().to_json()
    );
    print!("{report}");
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("fdi: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures > 0 {
        eprintln!("fdi: {failures} job(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // `batch` has its own argument shape; intercept it before the
    // single-file parser.
    {
        let mut argv = std::env::args().skip(1);
        if argv.next().as_deref() == Some("batch") {
            return run_batch_command(argv.collect());
        }
    }
    let Some(opts) = parse_args() else {
        return usage();
    };
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fdi: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let mut config = PipelineConfig::with_threshold(opts.threshold);
    config.policy = opts.policy;
    config.unroll = opts.unroll;
    config.budget = opts.budget;
    if opts.clref {
        config.mode = fdi_core::InlineMode::ClRef;
    }
    if opts.validate {
        config.oracle = OracleConfig::on();
    }
    if let Some(fuel) = opts.oracle_fuel {
        config.oracle.fuel = fuel;
    }
    if let Some(seed) = opts.faults {
        config.faults = FaultPlan::new(seed);
    }
    // Degrading by default; `--strict` propagates the first phase failure.
    let run_pipeline = |src: &str| {
        let result = if opts.strict {
            optimize_strict(src, &config)
        } else {
            optimize(src, &config)
        };
        match result {
            Ok(out) => {
                if out.health.oracle_rejected() {
                    eprintln!(";; oracle rejected: rolled back to the last validated program");
                }
                if out.health.degraded() {
                    eprintln!(";; degraded: {}", out.health.summary());
                }
                Some(out)
            }
            Err(e) => {
                eprintln!("fdi: {e}");
                None
            }
        }
    };
    match opts.command.as_str() {
        "optimize" => {
            let Some(out) = run_pipeline(&src) else {
                return ExitCode::FAILURE;
            };
            println!("{}", fdi_sexpr::pretty(&fdi_lang::unparse(&out.optimized)));
            eprintln!(
                ";; inlined {} sites, pruned {} branches, size ratio {:.2}, analysis {:?}",
                out.report.sites_inlined,
                out.report.branches_pruned,
                out.size_ratio(),
                out.flow_stats.duration
            );
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(out) = run_pipeline(&src) else {
                return ExitCode::FAILURE;
            };
            let cfg = RunConfig::default();
            let base = fdi_vm::run(&out.baseline, &cfg);
            let opt = fdi_vm::run(&out.optimized, &cfg);
            match (base, opt) {
                (Ok(b), Ok(o)) => {
                    print!("{}", o.output);
                    println!("{}", o.value);
                    if b.value != o.value {
                        eprintln!("fdi: MISCOMPILE: baseline computed {}", b.value);
                        return ExitCode::FAILURE;
                    }
                    if opts.stats {
                        let m = &cfg.model;
                        eprintln!(
                            ";; baseline : total {:>12} (mutator {}, collector {}), {} calls",
                            b.counters.total(m),
                            b.counters.mutator,
                            b.counters.collector(m),
                            b.counters.calls
                        );
                        eprintln!(
                            ";; optimized: total {:>12} (mutator {}, collector {}), {} calls",
                            o.counters.total(m),
                            o.counters.mutator,
                            o.counters.collector(m),
                            o.counters.calls
                        );
                        eprintln!(
                            ";; speedup  : {:.3}x",
                            b.counters.total(m) as f64 / o.counters.total(m) as f64
                        );
                    }
                    ExitCode::SUCCESS
                }
                (_, Err(e)) | (Err(e), _) => {
                    eprintln!("fdi: runtime error: {}", e.message);
                    ExitCode::FAILURE
                }
            }
        }
        "analyze" => {
            let program = match fdi_lang::parse_and_lower(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("fdi: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let flow = fdi_cfa::analyze(&program, opts.policy);
            let s = flow.stats();
            let candidates = flow.candidate_call_sites(&program);
            println!("policy            : {}", opts.policy.name());
            println!("nodes             : {}", s.nodes);
            println!("edges             : {}", s.edges);
            println!("worklist steps    : {}", s.steps);
            println!("contours          : {}", s.contours);
            println!("abstract closures : {}", s.closures);
            println!("analysis time     : {:?}", s.duration);
            println!("inline candidates : {}", candidates.len());
            println!("arity mismatches  : {}", s.arity_mismatches);
            if opts.dump {
                println!();
                print!("{}", fdi_cfa::dump_analysis(&flow, &program));
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
