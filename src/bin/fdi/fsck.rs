//! `fdi fsck` — offline integrity check and repair for a disk store.
//!
//! ```text
//! fdi fsck <STORE> [--repair]
//! ```
//!
//! Walks every artifact under `<STORE>/out/`, verifies each frame's magic,
//! length, and checksum ([`fdi_core::framing`]), and reports per-store
//! totals. Orphaned `.tmp` files (a crash mid-write) are always damage;
//! corrupt artifacts are the disk lying. With `--repair`, both are evicted —
//! safe because every artifact is a cache entry the engine will faithfully
//! recompute; without it, nothing is touched.
//!
//! Exit code: 0 when the store is healthy **or** every problem was
//! repaired; nonzero while unrepaired damage remains, so
//! `fdi fsck "$STORE" || fdi fsck "$STORE" --repair` is the idiomatic
//! pre-start gate for a daemon.

use fdi_engine::fsck;
use std::process::ExitCode;

pub fn main(args: Vec<String>) -> ExitCode {
    let mut store: Option<String> = None;
    let mut repair = false;
    for arg in args {
        match arg.as_str() {
            "--repair" => repair = true,
            _ if store.is_none() && !arg.starts_with('-') => store = Some(arg),
            other => {
                eprintln!("fdi fsck: unexpected argument {other:?}");
                eprintln!("usage: fdi fsck <STORE> [--repair]");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(store) = store else {
        eprintln!("usage: fdi fsck <STORE> [--repair]");
        return ExitCode::FAILURE;
    };
    let report = match fsck(std::path::Path::new(&store), repair) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fdi fsck: {e}");
            return ExitCode::FAILURE;
        }
    };
    for path in &report.corrupt_paths {
        eprintln!(
            "fdi fsck: corrupt artifact{}: {}",
            if repair { " (evicted)" } else { "" },
            path.display()
        );
    }
    println!(
        "{{\"store\":\"{}\",\"scanned\":{},\"healthy\":{},\"corrupt\":{},\
         \"orphaned_tmp\":{},\"repaired\":{},\"bytes\":{},\"unrepaired\":{}}}",
        crate::report::json_escape(&store),
        report.scanned,
        report.healthy,
        report.corrupt,
        report.orphaned_tmp,
        report.repaired,
        report.bytes,
        report.unrepaired(),
    );
    if report.unrepaired() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
