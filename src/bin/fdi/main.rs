//! `fdi` — the flow-directed inlining optimizer as a command-line tool.
//!
//! ```text
//! fdi optimize <file.scm> [-t THRESHOLD] [--clref] [--policy 0cfa|poly|1cfa]
//! fdi run      <file.scm> [-t THRESHOLD] [--clref] [--stats] [--trace]
//! fdi analyze  <file.scm> [--policy …]
//! fdi explain  <file.scm> [--site LABEL] [--json] [-t THRESHOLD] [--policy …]
//! fdi profile  <file.scm> [--entry EXPR] [-o FILE]
//! fdi batch    <manifest> [--jobs N] [--out FILE] [--trace-out FILE]
//! fdi report   [-t THRESHOLD] [--policy …] [--scale test|default]
//!              [--metrics FILE|-]
//! fdi serve    [--port N] [--port-file FILE] [--store DIR] [--jobs N]
//!              [--max-inflight N] [--deadline-ms N] [--read-deadline-ms N]
//!              [--cache-bytes N] [--store-bytes N]
//! fdi client   (--port N | --port-file FILE) [--retries N] [--retry-seed S]
//!              <ping|stats|health|metrics [--metrics-text]|flight|shutdown|job …>
//! fdi fsck     <STORE> [--repair]
//! fdi bench-diff <baseline.json> <current.json> [--tolerance PCT]
//!              [--hit-rate-tolerance ABS] [--wins-drop N]
//! ```
//!
//! `profile` runs the original program on the cost-model VM with per-site
//! attribution and writes a versioned, checksummed profile artifact
//! (`<file>.fdiprof`). `--profile FILE` (on `optimize`, `run`, `explain`,
//! `batch`, and `serve`) loads such an artifact; combined with
//! `--size-budget N` the inliner allocates its whole-run specialized-size
//! budget to the hottest sites first (benefit = measured dynamic cost)
//! instead of syntactic order. A profile collected from a different source
//! is *stale*: the run degrades to static order with a warning and a
//! `profile.stale` telemetry instant, never a silent reorder.
//!
//! `optimize` prints the optimized source; `run` executes baseline and
//! optimized versions on the cost-model VM and reports both; `analyze`
//! prints flow-analysis statistics and inline candidates.
//!
//! `explain` prints the inliner's decision provenance: one line per
//! candidate call site with its contour, callee, verdict, and the typed
//! reason it was or wasn't inlined (non-unique closure, size threshold,
//! open procedure, loop guard, inliner budget). `report` optimizes the
//! Table 1 benchmark suite and prints one row per benchmark with a
//! decisions column aggregated from the same provenance stream.
//!
//! `--trace-out FILE` (on every subcommand that runs the pipeline) collects
//! the run's telemetry — pass spans, CFA convergence counters, cache and
//! engine events — and writes it in Chrome Trace Event Format, loadable in
//! `chrome://tracing` or Perfetto.
//!
//! `batch` runs a whole manifest of jobs on the concurrent engine
//! (`fdi-engine`) and emits one JSON report. Each manifest line is a job:
//! a source — `path/to/file.scm` or `bench:<name>[@<scale>]` — followed by
//! per-job flags (`-t`, `--policy`, `--unroll`, `--clref`, `--fuel`,
//! `--deadline-ms`, `--max-growth`, `--passes`, `--size-budget`). Blank lines and `#`
//! comments are skipped. Identical jobs dedup in flight, and jobs sharing a
//! source or an analysis policy share artifacts through the engine's cache.
//!
//! `--passes SCHEDULE` replaces the default pass schedule
//! (`analyze,inline,simplify`) with a custom one: comma-separated pass
//! names, with `simplify*N` repeating the simplifier N times and a bare
//! `simplify*` running it to a fixpoint. `--trace` prints one line per
//! executed pass (wall time, fuel charged, node-count delta, disposition)
//! to stderr; `batch` reports the same trace per job in its JSON.
//!
//! By default the pipeline degrades on phase failures (budget trips, limit
//! aborts, contained panics) and reports them as `;; degraded:` warnings on
//! stderr; `--strict` turns the first such failure into a non-zero exit.
//! `--deadline-ms`, `--fuel`, and `--max-growth` bound the run.
//!
//! `--validate` arms the translation-validation oracle: after every
//! transformation checkpoint the candidate program is run against the
//! original on the cost-model VM (under `--oracle-fuel`), and a divergence
//! rolls the pipeline back to the last validated program (reported in the
//! health ledger as an oracle rejection). `--faults SEED` arms the seeded
//! chaos plan — deterministic injected panics, typed errors, and latency at
//! every catalogued pipeline fault point; in `batch` and `serve`,
//! `--engine-faults SEED` additionally arms the engine's cache, worker-pool,
//! and disk-store seams.
//!
//! `serve` keeps the engine and its caches hot in a persistent daemon
//! (JSON lines over localhost TCP) and, with `--store DIR`, persists
//! finished optimizations to a checksummed disk store that survives crashes
//! and restarts; `client` is the matching one-shot client, with
//! `--retries N` for seeded-backoff retry of transient failures. See
//! `serve.rs` for the protocol and its typed rejections (overloaded,
//! timeout, draining).
//!
//! The daemon carries a live observability plane: `{"op":"metrics"}`
//! returns windowed counters, gauges, and span-duration histograms (as JSON,
//! or Prometheus text via `fdi client metrics --metrics-text`);
//! `{"op":"flight"}` dumps the flight recorder — the last requests with
//! their deterministic `trace_id`s (shared with `batch` and
//! `explain --json` output for the same source and config) and any notable
//! incidents. `fdi report --metrics FILE|-` renders a scraped metrics JSON
//! document as tables. `fdi bench-diff` is the perf-regression watchdog:
//! it compares two benchmark snapshots (`results/BENCH_sweep.json` /
//! `BENCH_profile.json`) and exits nonzero past tolerance — the CI perf
//! gate.
//!
//! Resource governance: `--cache-bytes N` (on `batch` and `serve`) bounds
//! the in-memory artifact caches with byte-accounted LRU eviction, and
//! `--store-bytes N` (on `serve`) puts the disk store under a quota enforced
//! by LRU garbage collection. `fdi fsck <STORE> [--repair]` is the offline
//! integrity checker for a store: it verifies every artifact frame and, with
//! `--repair`, evicts corrupt and orphaned entries so a damaged store heals
//! by recomputation instead of serving lies.

mod analyze;
mod batch;
mod bench_diff;
mod client;
mod explain;
mod fsck;
mod optimize;
mod opts;
mod profile;
mod report;
mod run;
mod serve;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        return opts::usage();
    };
    let rest: Vec<String> = argv.collect();
    // `batch` and `report` have their own argument shapes; everything else
    // shares the single-file option parser.
    if command == "batch" {
        return batch::main(rest);
    }
    if command == "report" {
        return report::main(rest);
    }
    if command == "serve" {
        return serve::main(rest);
    }
    if command == "client" {
        return client::main(rest);
    }
    if command == "fsck" {
        return fsck::main(rest);
    }
    if command == "bench-diff" {
        return bench_diff::main(rest);
    }
    let Some(opts) = opts::parse(rest) else {
        return opts::usage();
    };
    match command.as_str() {
        "optimize" => optimize::main(&opts),
        "run" => run::main(&opts),
        "analyze" => analyze::main(&opts),
        "explain" => explain::main(&opts),
        "profile" => profile::main(&opts),
        _ => opts::usage(),
    }
}
