//! `fdi run` — execute baseline and optimized programs on the cost-model
//! VM and compare them.

use crate::opts::Options;
use fdi_core::RunConfig;
use std::process::ExitCode;

pub fn main(opts: &Options) -> ExitCode {
    let Some(src) = opts.read_source() else {
        return ExitCode::FAILURE;
    };
    let Some(out) = opts.run_pipeline(&src) else {
        return ExitCode::FAILURE;
    };
    let cfg = RunConfig::default();
    let base = fdi_vm::run(&out.baseline, &cfg);
    let opt = fdi_vm::run(&out.optimized, &cfg);
    match (base, opt) {
        (Ok(b), Ok(o)) => {
            print!("{}", o.output);
            println!("{}", o.value);
            if b.value != o.value {
                eprintln!("fdi: MISCOMPILE: baseline computed {}", b.value);
                return ExitCode::FAILURE;
            }
            if opts.stats {
                let m = &cfg.model;
                eprintln!(
                    ";; baseline : total {:>12} (mutator {}, collector {}), {} calls",
                    b.counters.total(m),
                    b.counters.mutator,
                    b.counters.collector(m),
                    b.counters.calls
                );
                eprintln!(
                    ";; optimized: total {:>12} (mutator {}, collector {}), {} calls",
                    o.counters.total(m),
                    o.counters.mutator,
                    o.counters.collector(m),
                    o.counters.calls
                );
                eprintln!(
                    ";; speedup  : {:.3}x",
                    b.counters.total(m) as f64 / o.counters.total(m) as f64
                );
            }
            ExitCode::SUCCESS
        }
        (_, Err(e)) | (Err(e), _) => {
            eprintln!("fdi: runtime error: {}", e.message);
            ExitCode::FAILURE
        }
    }
}
