//! `fdi explain` — per-call-site inlining decision provenance.
//!
//! Runs the pipeline and prints, for every candidate call site the inliner
//! considered, one line with the site label, contour, callee, verdict, and
//! the typed reason: `l17 @ κ3 -> f: rejected [threshold-exceeded(size=240,
//! limit=200)]`. `--site LABEL` narrows the output to one site.
//!
//! `--json` emits one JSON object per decision instead (stable keys, one
//! per line). Every object leads with `"trace_id"` — the deterministic
//! fingerprint of this (source, config), the same id `fdi serve` and
//! `fdi batch` answer with for the identical job — so a puzzling daemon
//! response can be explained offline and joined back by id. With a fresh
//! `--profile` loaded, each object additionally carries the site's measured
//! dynamic behavior: `"calls"` (dynamic call count) and `"benefit"`
//! (attributed mutator cost — the priority the guided size budget
//! allocates by).

use crate::opts::Options;
use fdi_core::DecisionTotals;
use std::process::ExitCode;

pub fn main(opts: &Options) -> ExitCode {
    let Some(src) = opts.read_source() else {
        return ExitCode::FAILURE;
    };
    let Some((out, profile)) = opts.run_pipeline_with_profile(&src) else {
        return ExitCode::FAILURE;
    };
    let decisions: Vec<_> = match &opts.site {
        Some(label) => out
            .decisions
            .iter()
            .filter(|d| d.site_label == *label)
            .collect(),
        None => out.decisions.iter().collect(),
    };
    if let (Some(label), true) = (&opts.site, decisions.is_empty()) {
        eprintln!(
            "fdi: no decision recorded for site {label:?} ({} candidate site(s) total)",
            out.decisions.len()
        );
        return ExitCode::FAILURE;
    }
    if decisions.is_empty() {
        // Degraded runs roll the inline step back, leaving no provenance;
        // run_pipeline already printed the health warning in that case.
        println!(";; no candidate call sites");
        return ExitCode::SUCCESS;
    }
    let trace_hex = fdi_core::trace_id_hex(&src, &opts.config());
    for d in &decisions {
        if opts.json {
            // Lead with the job's trace id (see the module docs), keeping
            // the decision record's own keys untouched after it.
            let json = format!("{{\"trace_id\":\"{trace_hex}\",{}", &d.to_json()[1..]);
            match profile
                .as_ref()
                .and_then(|p| p.sites.iter().find(|s| s.site == d.site_label))
            {
                // Splice the profile's measurements into the decision
                // object: drop the closing brace, append, re-close.
                Some(site) => println!(
                    "{},\"calls\":{},\"benefit\":{}}}",
                    &json[..json.len() - 1],
                    site.calls,
                    site.cost
                ),
                None => println!("{json}"),
            }
        } else {
            println!("{d}");
        }
    }
    let totals = DecisionTotals::tally(decisions.iter().copied());
    eprintln!(
        ";; {} candidate site(s): {} inlined, {} rejected",
        totals.total(),
        totals.inlined(),
        totals.rejected()
    );
    ExitCode::SUCCESS
}
