//! `fdi profile` — collect a call-site profile and persist the artifact.
//!
//! Runs the *original lowered program* on the cost-model VM with per-site
//! attribution and writes a versioned, checksummed [`fdi_profile::Profile`]
//! artifact keyed by the source's fingerprint. The artifact then guides
//! `optimize`/`run`/`batch`/`serve` via `--profile FILE`: with
//! `--size-budget N`, sites are admitted hot-first by measured dynamic
//! cost instead of syntactic order.
//!
//! `--entry EXPR` appends a driver expression for the profiled run (useful
//! for library-shaped sources that perform no calls on their own); the
//! driver is recorded as provenance but does **not** key the artifact —
//! the profile stays valid for the undriven source. `-o FILE` overrides
//! the default output path `<file>.fdiprof`.

use crate::opts::Options;
use fdi_core::RunConfig;
use fdi_profile::Profile;
use std::process::ExitCode;

pub fn main(opts: &Options) -> ExitCode {
    let Some(src) = opts.read_source() else {
        return ExitCode::FAILURE;
    };
    let profile = match Profile::collect(&src, opts.entry.as_deref(), &RunConfig::default()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fdi profile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = opts
        .output
        .clone()
        .unwrap_or_else(|| format!("{}.fdiprof", opts.file));
    if let Err(e) = profile.save(std::path::Path::new(&out)) {
        eprintln!("fdi profile: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        ";; {}: {} site(s), {} dynamic call(s), {} attributed cost -> {out}",
        opts.file,
        profile.sites.len(),
        profile.total_calls,
        profile.total_cost
    );
    // The hottest sites, benefit-first — the order a guided size budget
    // will admit them in.
    let mut ranked: Vec<_> = profile.sites.iter().collect();
    ranked.sort_by(|a, b| b.cost.cmp(&a.cost).then(a.site.cmp(&b.site)));
    for site in ranked.iter().take(10) {
        println!("{}\tcalls={}\tcost={}", site.site, site.calls, site.cost);
    }
    ExitCode::SUCCESS
}
