//! `fdi analyze` — print flow-analysis statistics and inline candidates.

use crate::opts::Options;
use std::process::ExitCode;

pub fn main(opts: &Options) -> ExitCode {
    let Some(src) = opts.read_source() else {
        return ExitCode::FAILURE;
    };
    let program = match fdi_lang::parse_and_lower(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fdi: {e}");
            return ExitCode::FAILURE;
        }
    };
    let flow = fdi_cfa::analyze(&program, opts.policy);
    let s = flow.stats();
    let candidates = flow.candidate_call_sites(&program);
    println!("policy            : {}", opts.policy.name());
    println!("nodes             : {}", s.nodes);
    println!("edges             : {}", s.edges);
    println!("worklist steps    : {}", s.steps);
    println!("contours          : {}", s.contours);
    println!("abstract closures : {}", s.closures);
    println!("analysis time     : {:?}", s.duration);
    println!("inline candidates : {}", candidates.len());
    println!("arity mismatches  : {}", s.arity_mismatches);
    if opts.dump {
        println!();
        print!("{}", fdi_cfa::dump_analysis(&flow, &program));
    }
    ExitCode::SUCCESS
}
