//! `fdi serve` — a persistent, crash-tolerant optimization daemon.
//!
//! The daemon keeps one [`fdi_engine::Engine`] — worker pool, parse and
//! analysis caches, telemetry — hot across requests, and (with `--store DIR`)
//! fronts it with the engine's disk-backed artifact store, so finished
//! optimizations survive process death and are re-served byte-identically
//! after a crash or restart.
//!
//! ## Protocol
//!
//! JSON lines over TCP on `127.0.0.1` (one request object per line, one
//! response object per line, same order). The job request/response schema
//! mirrors the `fdi batch` manifest and report: a job is a source spec plus
//! the batch per-job flag grammar.
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"health"}
//! {"op":"metrics"}
//! {"op":"metrics","format":"text"}
//! {"op":"flight"}
//! {"op":"shutdown"}
//! {"op":"job","spec":"bench:fib@6","flags":["-t","200"],"deadline_ms":5000}
//! {"op":"job","source":"(let ((f (lambda (x) x))) (f 1))"}
//! ```
//!
//! Every response carries `"ok"`, `"proto"` (the wire-protocol version,
//! [`PROTO_VERSION`]) and `"trace_id"` — for job requests a deterministic
//! fingerprint of `(source, config)` shared with `fdi batch` and
//! `fdi explain --json`, for everything else a fingerprint of the request
//! line — so a client log line can be joined against the daemon's flight
//! recorder and Chrome traces. `health` is the operator probe: in-flight and
//! admission numbers, cache/store byte footprints against their configured
//! limits, memory-only degradation (with a typed `degraded_reason`),
//! telemetry overhead, flight-recorder occupancy, and uptime.
//!
//! ## Observability
//!
//! The daemon's engine always emits into a [`fdi_telemetry::MetricsRegistry`]
//! (windowed counters, gauges, per-span duration histograms) and a
//! [`fdi_telemetry::FlightRecorder`] (bounded ring of the last requests plus
//! notable incidents). `{"op":"metrics"}` returns the registry as JSON;
//! with `"format":"text"` the payload is the Prometheus text exposition
//! format instead (also `fdi client metrics --metrics-text`).
//! `{"op":"flight"}` dumps the recorder. With `--store DIR` the recorder
//! writes each finished request through to `DIR/flight/requests.jsonl` and
//! re-seeds from it on startup, so the last pre-kill requests are still
//! listed after a SIGKILL; on panic and on graceful drain the full recorder
//! state is additionally dumped to `DIR/flight/last_flight.json`.
//!
//! Failures are *typed* via `"kind"`:
//!
//! * `bad-request` — malformed JSON, unknown op, bad flags, unreadable spec;
//! * `overloaded` — the bounded admission gate is full; the response carries
//!   `retry_after_ms` and the request was **not** queued (backpressure is
//!   explicit, never an unbounded queue);
//! * `timeout` — the per-request deadline (request `deadline_ms`, else the
//!   server's `--deadline-ms`) passed before the job finished. The job keeps
//!   running and still fills the caches and the store — only the connection
//!   stops waiting, so a slow job can never hang a client;
//! * `draining` — a shutdown is in progress; no new work is admitted;
//! * `failed` — the job itself failed (frontend rejection, poisoned, …).
//!
//! Connections that stop sending mid-line are cut by a per-connection read
//! deadline (`--read-deadline-ms`), so a slowloris client holds a thread for
//! a bounded time, never forever. Store write failures never fail requests:
//! after [`fdi_engine`]'s degradation threshold the daemon answers
//! memory-only and re-probes the disk periodically (visible in `health`).
//!
//! Successful job responses include the optimized program text, so a warm
//! re-serve can be checked byte-for-byte against a cold run. `"cached":true`
//! marks answers served from the disk store without recomputation.
//!
//! ## Shutdown
//!
//! `{"op":"shutdown"}` is the graceful drain: admission closes, the daemon
//! waits for every in-flight job, dumps the flight recorder, replies with a
//! drain report, and exits. (Signal-based shutdown would need a libc
//! binding; the protocol-level op keeps the daemon dependency-free. A
//! SIGKILL instead of a drain is the crash path the store — and the flight
//! write-through — exist for; see `tests/serve.rs` and `tests/chaos.rs`.)

use crate::batch::{apply_job_flags, resolve_source};
use crate::opts::usage;
use crate::report::{health_json, json_escape, passes_json};
use fdi_core::{FaultPlan, PipelineConfig, Telemetry};
use fdi_engine::{Engine, EngineConfig, Job};
use fdi_telemetry::json::{self, Json};
use fdi_telemetry::{Fanout, FlightEntry, FlightRecorder, MetricsRegistry};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wire-protocol version. Bump on any response-schema change a deployed
/// client could misparse; clients refuse to talk across a mismatch.
/// (Additive fields — `trace_id`, the `metrics`/`flight` ops, the health
/// extensions — do not bump it: old clients ignore keys they don't read.)
pub const PROTO_VERSION: u64 = 1;

/// Requests the flight recorder remembers.
const FLIGHT_CAPACITY: usize = 64;

/// Shared daemon state, one per process.
struct Server {
    engine: Engine,
    /// The engine's telemetry handle (always on; also the flight time base).
    telemetry: Telemetry,
    /// Live counters/gauges/histograms, fed by the engine's event stream.
    metrics: Arc<MetricsRegistry>,
    /// The last-requests ring, write-through-backed when a store is set.
    flight: Arc<FlightRecorder>,
    /// The store directory, for flight dumps (panic, drain).
    store_dir: Option<PathBuf>,
    /// Jobs admitted and not yet finished (including ones whose requester
    /// timed out — the work is still running and still holds its slot).
    inflight: AtomicUsize,
    /// Admission bound: requests beyond this many in-flight jobs are
    /// rejected with `overloaded`, never queued.
    max_inflight: usize,
    /// Set by `shutdown`; admission closes immediately.
    draining: AtomicBool,
    /// Default per-request deadline when the request names none.
    deadline: Duration,
    /// When the daemon came up (the `health` uptime gauge).
    started: Instant,
}

/// What the connection loop should do with a handled request.
enum Reply {
    /// Write the line and keep reading.
    Line(String),
    /// Write the line, flush, and exit the process (graceful drain done).
    Shutdown(String),
}

fn err(kind: &str, message: &str, trace: &str) -> String {
    format!(
        "{{\"ok\":false,\"proto\":{PROTO_VERSION},\"trace_id\":\"{trace}\",\
         \"kind\":\"{kind}\",\"error\":\"{}\"}}",
        json_escape(message)
    )
}

/// `fdi serve [--port N] [--port-file FILE] [--store DIR] [--jobs N]
/// [--max-inflight N] [--deadline-ms N] [--read-deadline-ms N]
/// [--cache-bytes N] [--store-bytes N] [--profile FILE]
/// [--engine-faults SEED]`.
pub fn main(args: Vec<String>) -> ExitCode {
    let mut port: u16 = 0;
    let mut port_file: Option<String> = None;
    let mut store: Option<std::path::PathBuf> = None;
    let mut profile_path: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut max_inflight: usize = 64;
    let mut deadline = Duration::from_millis(30_000);
    let mut read_deadline = Duration::from_millis(10_000);
    let mut cache_bytes: Option<usize> = None;
    let mut store_bytes: Option<u64> = None;
    let mut engine_faults = FaultPlan::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1);
        match args[i].as_str() {
            "--port" => match value(i).and_then(|s| s.parse().ok()) {
                Some(p) => port = p,
                None => return usage(),
            },
            "--port-file" => match value(i) {
                Some(f) => port_file = Some(f.clone()),
                None => return usage(),
            },
            "--store" => match value(i) {
                Some(d) => store = Some(std::path::PathBuf::from(d)),
                None => return usage(),
            },
            "--profile" => match value(i) {
                Some(f) => profile_path = Some(f.clone()),
                None => return usage(),
            },
            "--jobs" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => jobs = Some(n),
                None => return usage(),
            },
            "--max-inflight" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => max_inflight = n,
                None => return usage(),
            },
            "--deadline-ms" => match value(i).and_then(|s| s.parse().ok()) {
                Some(ms) => deadline = Duration::from_millis(ms),
                None => return usage(),
            },
            "--read-deadline-ms" => match value(i).and_then(|s| s.parse().ok()) {
                Some(ms) => read_deadline = Duration::from_millis(ms),
                None => return usage(),
            },
            "--cache-bytes" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => cache_bytes = Some(n),
                None => return usage(),
            },
            "--store-bytes" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => store_bytes = Some(n),
                None => return usage(),
            },
            "--engine-faults" => match value(i).and_then(|s| s.parse().ok()) {
                Some(seed) => engine_faults = FaultPlan::new(seed),
                None => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    // The daemon's profile applies engine-wide: every job whose source
    // matches runs guided (under a guided cache key), everything else runs
    // static with a `profile.stale` accounting — see `Engine::submit`.
    let profile = match &profile_path {
        None => None,
        Some(path) => match crate::batch::load_engine_profile(path) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("fdi serve: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    // The observability plane is always on: the registry and the flight
    // recorder ride the engine's own telemetry stream (the
    // `telemetry_overhead --serve` gate holds their cost under 5%). With a
    // store, the recorder writes through to disk and re-seeds from it, so a
    // SIGKILL'd daemon's last requests are still listed after restart.
    let metrics = Arc::new(MetricsRegistry::new());
    let flight = Arc::new(match &store {
        Some(dir) => {
            FlightRecorder::with_writethrough(FLIGHT_CAPACITY, &dir.join("flight/requests.jsonl"))
        }
        None => FlightRecorder::with_capacity(FLIGHT_CAPACITY),
    });
    let telemetry =
        Telemetry::with_collector(Arc::new(Fanout::new(vec![metrics.clone(), flight.clone()])));
    if let Some(dir) = &store {
        // Post-mortem on panic: dump the recorder before unwinding proceeds.
        // (Contained chaos panics also land here; the dump is an overwrite,
        // so the freshest state always wins.)
        let hook_flight = flight.clone();
        let hook_path = dir.join("flight/last_flight.json");
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = hook_flight.dump_to(&hook_path);
            previous(info);
        }));
    }

    let engine = Engine::with_telemetry(
        EngineConfig {
            faults: engine_faults,
            store: store.clone(),
            profile,
            cache_bytes,
            store_bytes,
            ..match jobs {
                Some(n) => EngineConfig::with_workers(n),
                None => EngineConfig::default(),
            }
        },
        &telemetry,
    );
    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fdi serve: cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound listener has an addr");
    if let Some(path) = &port_file {
        // Write-then-rename so a poller never reads a half-written port.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{}\n", addr.port()))
            .and_then(|()| std::fs::rename(&tmp, path))
            .is_err()
        {
            eprintln!("fdi serve: cannot write port file {path}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "fdi serve: listening on {addr} (pid {})",
        std::process::id()
    );

    let server = Arc::new(Server {
        engine,
        telemetry,
        metrics,
        flight,
        store_dir: store,
        inflight: AtomicUsize::new(0),
        max_inflight,
        draining: AtomicBool::new(false),
        deadline,
        started: Instant::now(),
    });
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let server = server.clone();
        std::thread::spawn(move || handle_connection(&server, stream, read_deadline));
    }
    ExitCode::SUCCESS
}

fn handle_connection(server: &Arc<Server>, stream: TcpStream, read_deadline: Duration) {
    // Slowloris guard: a peer that trickles bytes (or none) without ever
    // finishing a line is cut after `read_deadline`, bounding how long a
    // connection can pin this thread. Zero disables the guard.
    if !read_deadline.is_zero() {
        let _ = stream.set_read_timeout(Some(read_deadline));
    }
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_request(server, &line);
        let (text, shutdown) = match &reply {
            Reply::Line(t) => (t, false),
            Reply::Shutdown(t) => (t, true),
        };
        if writeln!(writer, "{text}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            // Drained: every admitted job has finished and the reply is on
            // the wire. Abandoning the accept loop from here is the
            // protocol's whole graceful-exit path.
            std::process::exit(0);
        }
    }
}

fn handle_request(server: &Arc<Server>, line: &str) -> Reply {
    // Control requests and malformed lines get a line-derived trace id:
    // deterministic for identical request bytes, joinable against client
    // logs. Job requests recompute theirs from (source, config) below so
    // the id matches `fdi batch` / `fdi explain --json` for the same job.
    let line_trace = format!("{:016x}", fdi_core::source_fingerprint(line.trim()));
    let req = match json::parse(line) {
        Ok(req) => req,
        Err(e) => {
            return Reply::Line(err(
                "bad-request",
                &format!("malformed request: {e}"),
                &line_trace,
            ))
        }
    };
    let op = req.get("op").and_then(Json::as_str);
    if let Some(op) = op {
        server.metrics.add(&format!("serve.op.{op}"), 1);
    }
    match op {
        Some("ping") => Reply::Line(format!(
            "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{line_trace}\",\
             \"op\":\"ping\",\"pid\":{}}}",
            std::process::id()
        )),
        Some("stats") => Reply::Line(format!(
            "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{line_trace}\",\
             \"op\":\"stats\",\"inflight\":{},\"draining\":{},\"stats\":{}}}",
            server.inflight.load(SeqCst),
            server.draining.load(SeqCst),
            server.engine.stats().to_json()
        )),
        Some("health") => Reply::Line(health_reply(server, &line_trace)),
        Some("metrics") => Reply::Line(metrics_reply(server, &req, &line_trace)),
        Some("flight") => Reply::Line(format!(
            "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{line_trace}\",\
             \"op\":\"flight\",\"flight\":{}}}",
            server.flight.to_json()
        )),
        Some("shutdown") => {
            server.draining.store(true, SeqCst);
            // Drain: admission is closed, so inflight only falls.
            while server.inflight.load(SeqCst) > 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            // The drain post-mortem: same file the panic hook writes.
            if let Some(dir) = &server.store_dir {
                let _ = server.flight.dump_to(&dir.join("flight/last_flight.json"));
            }
            Reply::Shutdown(format!(
                "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{line_trace}\",\
                 \"op\":\"shutdown\",\"jobs_completed\":{}}}",
                server.engine.stats().jobs_completed
            ))
        }
        Some("job") => Reply::Line(handle_job(server, &req, &line_trace)),
        Some(other) => Reply::Line(err(
            "bad-request",
            &format!("unknown op {other:?}"),
            &line_trace,
        )),
        None => Reply::Line(err("bad-request", "request has no \"op\"", &line_trace)),
    }
}

/// The operator probe: admission load, byte footprints against their
/// configured limits, degradation (typed), telemetry overhead, flight
/// occupancy, and uptime, in one line.
fn health_reply(server: &Arc<Server>, trace: &str) -> String {
    let r = server.engine.resources();
    let stats = server.engine.stats();
    let opt = |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
    // One typed reason so operators can tell the failure modes apart
    // without diffing counters: a degraded store beats cache pressure
    // (it loses durability, not just speed).
    let degraded_reason = if r.store_degraded {
        "\"store-unwritable\"".to_string()
    } else if stats.cache_evictions_pressure > 0 {
        "\"cache-pressure\"".to_string()
    } else {
        "null".to_string()
    };
    let (telemetry_events, telemetry_record_ns) = server.metrics.overhead();
    let (flight_len, flight_capacity) = server.flight.occupancy();
    format!(
        "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{trace}\",\
         \"op\":\"health\",\"pid\":{},\
         \"uptime_ms\":{},\"inflight\":{},\"max_inflight\":{},\"draining\":{},\
         \"cache_bytes_used\":{},\"cache_bytes_limit\":{},\
         \"store_bytes_used\":{},\"store_bytes_limit\":{},\"store_degraded\":{},\
         \"degraded_reason\":{},\
         \"telemetry\":{{\"events\":{},\"record_us\":{}}},\
         \"flight\":{{\"len\":{},\"capacity\":{}}}}}",
        std::process::id(),
        server.started.elapsed().as_millis(),
        server.inflight.load(SeqCst),
        server.max_inflight,
        server.draining.load(SeqCst),
        r.cache_bytes_used,
        opt(r.cache_bytes_limit),
        opt(r.store_bytes_used),
        opt(r.store_bytes_limit),
        r.store_degraded,
        degraded_reason,
        telemetry_events,
        telemetry_record_ns / 1_000,
        flight_len,
        flight_capacity,
    )
}

/// `{"op":"metrics"}`: refresh the registry's gauges from the engine's
/// counters and resource footprint, then render — as JSON, or (with
/// `"format":"text"`) as Prometheus text under a `"text"` key.
fn metrics_reply(server: &Arc<Server>, req: &Json, trace: &str) -> String {
    let stats = server.engine.stats();
    let r = server.engine.resources();
    let m = &server.metrics;
    let rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };
    m.set_gauge("cache_bytes_used", r.cache_bytes_used as f64);
    m.set_gauge("store_bytes_used", r.store_bytes_used.unwrap_or(0) as f64);
    m.set_gauge("inflight", server.inflight.load(SeqCst) as f64);
    m.set_gauge("max_inflight", server.max_inflight as f64);
    m.set_gauge("uptime_s", server.started.elapsed().as_secs() as f64);
    m.set_gauge("spec_hit_rate", rate(stats.spec_hits, stats.spec_misses));
    m.set_gauge("exec_hit_rate", rate(stats.exec_hits, stats.exec_misses));
    m.set_gauge("analysis_hit_rate", stats.analysis_hit_rate());
    // Mirror the headline engine counters so one scrape answers "is the
    // cache working" without a second `stats` round trip. (Counters
    // semantically; exposed as gauges since the engine owns the totals.)
    for (name, v) in [
        ("engine.jobs_completed", stats.jobs_completed),
        ("engine.jobs_deduped", stats.jobs_deduped),
        ("engine.parse_hits", stats.parse_hits),
        ("engine.analysis_hits", stats.analysis_hits),
        ("engine.analysis_misses", stats.analysis_misses),
        ("engine.spec_hits", stats.spec_hits),
        ("engine.spec_misses", stats.spec_misses),
        ("engine.exec_hits", stats.exec_hits),
        ("engine.exec_misses", stats.exec_misses),
        ("engine.store_hits", stats.store_hits),
        ("engine.store_writes", stats.store_writes),
        ("engine.workers_respawned", stats.workers_respawned),
    ] {
        m.set_gauge(name, v as f64);
    }
    match req.get("format").and_then(Json::as_str) {
        Some("text") => format!(
            "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{trace}\",\
             \"op\":\"metrics\",\"format\":\"text\",\"text\":\"{}\"}}",
            json_escape(&m.to_prometheus_text())
        ),
        None | Some("json") => format!(
            "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{trace}\",\
             \"op\":\"metrics\",\"metrics\":{}}}",
            m.to_json()
        ),
        Some(other) => err(
            "bad-request",
            &format!("unknown metrics format {other:?}"),
            trace,
        ),
    }
}

/// Decrements the in-flight count when dropped, unless responsibility was
/// handed to a timeout watcher thread via [`InflightSlot::transfer`].
struct InflightSlot<'a> {
    server: &'a Server,
    armed: bool,
}

impl InflightSlot<'_> {
    fn transfer(mut self) {
        self.armed = false;
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.server.inflight.fetch_sub(1, SeqCst);
        }
    }
}

/// Runs one job request and records it: outcome counter, request-duration
/// histogram, and a flight-recorder entry carrying the same trace id the
/// response does.
fn handle_job(server: &Arc<Server>, req: &Json, line_trace: &str) -> String {
    let started = Instant::now();
    let (reply, outcome, trace, what) = handle_job_inner(server, req, line_trace);
    server.metrics.add(&format!("serve.job.{outcome}"), 1);
    server
        .metrics
        .observe_us("request", started.elapsed().as_micros() as u64);
    server.flight.record_request(FlightEntry {
        trace_id: trace,
        what,
        outcome: outcome.to_string(),
        duration_us: started.elapsed().as_micros() as u64,
        ts_us: server.telemetry.now_us(),
    });
    reply
}

/// The job path proper. Returns `(response line, outcome key, trace id,
/// what-was-asked)` so the wrapper can account for every exit uniformly.
fn handle_job_inner(
    server: &Arc<Server>,
    req: &Json,
    line_trace: &str,
) -> (String, &'static str, String, String) {
    let fallback = |reply: String, outcome: &'static str, what: &str| {
        (reply, outcome, line_trace.to_string(), what.to_string())
    };
    if server.draining.load(SeqCst) {
        return fallback(
            err(
                "draining",
                "server is shutting down; resubmit elsewhere",
                line_trace,
            ),
            "draining",
            "job",
        );
    }
    // Bounded admission: claim a slot or reject *now*. Nothing ever queues
    // beyond the engine's own worker queues, so a flood degrades to typed
    // rejections instead of unbounded memory growth and silent latency.
    if server.inflight.fetch_add(1, SeqCst) >= server.max_inflight {
        server.inflight.fetch_sub(1, SeqCst);
        return fallback(
            format!(
                "{{\"ok\":false,\"proto\":{PROTO_VERSION},\"trace_id\":\"{line_trace}\",\
                 \"kind\":\"overloaded\",\"retry_after_ms\":100,\
                 \"error\":\"{} jobs in flight; retry later\"}}",
                server.max_inflight
            ),
            "overloaded",
            "job",
        );
    }
    let slot = InflightSlot {
        server,
        armed: true,
    };

    let (spec, source) = match (
        req.get("spec").and_then(Json::as_str),
        req.get("source").and_then(Json::as_str),
    ) {
        (Some(spec), None) => match resolve_source(spec) {
            Ok(src) => (spec.to_string(), src),
            Err(e) => return fallback(err("bad-request", &e, line_trace), "bad-request", spec),
        },
        (None, Some(src)) => ("<inline>".to_string(), src.to_string()),
        _ => {
            return fallback(
                err(
                    "bad-request",
                    "need exactly one of \"spec\" or \"source\"",
                    line_trace,
                ),
                "bad-request",
                "job",
            )
        }
    };
    let mut config = PipelineConfig::default();
    let flags: Vec<&str> = match req.get("flags") {
        None => Vec::new(),
        Some(flags) => match flags.as_arr() {
            Some(items) if items.iter().all(|f| f.as_str().is_some()) => {
                items.iter().filter_map(Json::as_str).collect()
            }
            _ => {
                return fallback(
                    err(
                        "bad-request",
                        "\"flags\" must be an array of strings",
                        line_trace,
                    ),
                    "bad-request",
                    &spec,
                )
            }
        },
    };
    if let Err(e) = apply_job_flags(&mut config, &flags) {
        return fallback(err("bad-request", &e, line_trace), "bad-request", &spec);
    }
    let deadline = match req.get("deadline_ms").map(|d| d.as_num()) {
        None => server.deadline,
        Some(Some(ms)) if ms >= 0.0 => Duration::from_millis(ms as u64),
        Some(_) => {
            return fallback(
                err(
                    "bad-request",
                    "\"deadline_ms\" must be a number",
                    line_trace,
                ),
                "bad-request",
                &spec,
            )
        }
    };

    // From here the job is fully determined, and so is its trace id — the
    // same fingerprint `fdi batch` and `fdi explain --json` compute for
    // this (source, config), threaded into the engine's job span.
    let trace = fdi_core::trace_id(&source, &config);
    let trace_hex = format!("{trace:016x}");
    let done = |reply: String, outcome: &'static str| {
        let t = trace_hex.clone();
        (reply, outcome, t, spec.clone())
    };
    let job = Job::new(source.as_str(), config).with_trace(trace);
    let head = format!(
        "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"trace_id\":\"{trace_hex}\",\
         \"op\":\"job\",\"spec\":\"{}\",\"threshold\":{}",
        json_escape(&spec),
        config.threshold
    );

    // Warm path: answer straight from the disk store, no recomputation.
    if let Some(stored) = server.engine.lookup_stored(&job) {
        return done(
            format!(
                concat!(
                    "{},\"cached\":true,\"degraded\":false,\"oracle_rejected\":false,",
                    "\"size_ratio\":{:.6},\"baseline_size\":{},\"optimized_size\":{},",
                    "\"sites_inlined\":{},\"decisions\":{},\"fuel_used\":{},",
                    "\"optimized\":\"{}\"}}"
                ),
                head,
                stored.size_ratio(),
                stored.baseline_size,
                stored.optimized_size,
                stored.sites_inlined,
                stored.decisions.to_json(),
                stored.fuel_used,
                json_escape(&stored.optimized),
            ),
            "cached",
        );
    }

    let handle = server.engine.submit(job);
    let Some(result) = handle.wait_timeout(deadline) else {
        // The job outlived the request deadline. It keeps running (and will
        // pave the caches and store for the next asker), so its admission
        // slot stays claimed until it actually finishes — a watcher thread
        // inherits the release.
        slot.transfer();
        let watcher_server = server.clone();
        std::thread::spawn(move || {
            let _ = handle.wait();
            watcher_server.inflight.fetch_sub(1, SeqCst);
        });
        return done(
            format!(
                "{{\"ok\":false,\"proto\":{PROTO_VERSION},\"trace_id\":\"{trace_hex}\",\
                 \"kind\":\"timeout\",\"deadline_ms\":{},\
                 \"error\":\"job exceeded its deadline; it keeps running and will warm the cache\"}}",
                deadline.as_millis()
            ),
            "timeout",
        );
    };
    drop(slot);
    match result {
        Err(e) => done(err("failed", &e.to_string(), &trace_hex), "failed"),
        Ok(out) => done(
            format!(
                concat!(
                    "{},\"cached\":false,\"degraded\":{},\"oracle_rejected\":{},",
                    "\"size_ratio\":{:.6},\"baseline_size\":{},\"optimized_size\":{},",
                    "\"sites_inlined\":{},\"decisions\":{},\"fuel_used\":{},",
                    "\"passes\":{},\"health\":{},\"optimized\":\"{}\"}}"
                ),
                head,
                out.health.degraded(),
                out.health.oracle_rejected(),
                out.size_ratio(),
                out.baseline_size,
                out.optimized_size,
                out.report.sites_inlined,
                fdi_telemetry::DecisionTotals::tally(&out.decisions).to_json(),
                out.fuel_used,
                passes_json(&out.passes),
                health_json(&out.health),
                json_escape(&fdi_lang::unparse(&out.optimized).to_string()),
            ),
            "ok",
        ),
    }
}
