//! `fdi serve` — a persistent, crash-tolerant optimization daemon.
//!
//! The daemon keeps one [`fdi_engine::Engine`] — worker pool, parse and
//! analysis caches, telemetry — hot across requests, and (with `--store DIR`)
//! fronts it with the engine's disk-backed artifact store, so finished
//! optimizations survive process death and are re-served byte-identically
//! after a crash or restart.
//!
//! ## Protocol
//!
//! JSON lines over TCP on `127.0.0.1` (one request object per line, one
//! response object per line, same order). The job request/response schema
//! mirrors the `fdi batch` manifest and report: a job is a source spec plus
//! the batch per-job flag grammar.
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"health"}
//! {"op":"shutdown"}
//! {"op":"job","spec":"bench:fib@6","flags":["-t","200"],"deadline_ms":5000}
//! {"op":"job","source":"(let ((f (lambda (x) x))) (f 1))"}
//! ```
//!
//! Every response carries `"ok"` and `"proto"` (the wire-protocol version,
//! [`PROTO_VERSION`]) so clients can reject a daemon they do not speak to
//! instead of misparsing it. `health` is the operator probe: in-flight and
//! admission numbers, cache/store byte footprints against their configured
//! limits, memory-only degradation, and uptime.
//!
//! Failures are *typed* via `"kind"`:
//!
//! * `bad-request` — malformed JSON, unknown op, bad flags, unreadable spec;
//! * `overloaded` — the bounded admission gate is full; the response carries
//!   `retry_after_ms` and the request was **not** queued (backpressure is
//!   explicit, never an unbounded queue);
//! * `timeout` — the per-request deadline (request `deadline_ms`, else the
//!   server's `--deadline-ms`) passed before the job finished. The job keeps
//!   running and still fills the caches and the store — only the connection
//!   stops waiting, so a slow job can never hang a client;
//! * `draining` — a shutdown is in progress; no new work is admitted;
//! * `failed` — the job itself failed (frontend rejection, poisoned, …).
//!
//! Connections that stop sending mid-line are cut by a per-connection read
//! deadline (`--read-deadline-ms`), so a slowloris client holds a thread for
//! a bounded time, never forever. Store write failures never fail requests:
//! after [`fdi_engine`]'s degradation threshold the daemon answers
//! memory-only and re-probes the disk periodically (visible in `health`).
//!
//! Successful job responses include the optimized program text, so a warm
//! re-serve can be checked byte-for-byte against a cold run. `"cached":true`
//! marks answers served from the disk store without recomputation.
//!
//! ## Shutdown
//!
//! `{"op":"shutdown"}` is the graceful drain: admission closes, the daemon
//! waits for every in-flight job, replies with a drain report, and exits.
//! (Signal-based shutdown would need a libc binding; the protocol-level op
//! keeps the daemon dependency-free. A SIGKILL instead of a drain is the
//! crash path the store exists for — see `tests/serve.rs`.)

use crate::batch::{apply_job_flags, resolve_source};
use crate::opts::usage;
use crate::report::{health_json, json_escape, passes_json};
use fdi_core::{FaultPlan, PipelineConfig};
use fdi_engine::{Engine, EngineConfig, Job};
use fdi_telemetry::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wire-protocol version. Bump on any response-schema change a deployed
/// client could misparse; clients refuse to talk across a mismatch.
pub const PROTO_VERSION: u64 = 1;

/// Shared daemon state, one per process.
struct Server {
    engine: Engine,
    /// Jobs admitted and not yet finished (including ones whose requester
    /// timed out — the work is still running and still holds its slot).
    inflight: AtomicUsize,
    /// Admission bound: requests beyond this many in-flight jobs are
    /// rejected with `overloaded`, never queued.
    max_inflight: usize,
    /// Set by `shutdown`; admission closes immediately.
    draining: AtomicBool,
    /// Default per-request deadline when the request names none.
    deadline: Duration,
    /// When the daemon came up (the `health` uptime gauge).
    started: Instant,
}

/// What the connection loop should do with a handled request.
enum Reply {
    /// Write the line and keep reading.
    Line(String),
    /// Write the line, flush, and exit the process (graceful drain done).
    Shutdown(String),
}

fn err(kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"proto\":{PROTO_VERSION},\"kind\":\"{kind}\",\"error\":\"{}\"}}",
        json_escape(message)
    )
}

/// `fdi serve [--port N] [--port-file FILE] [--store DIR] [--jobs N]
/// [--max-inflight N] [--deadline-ms N] [--read-deadline-ms N]
/// [--cache-bytes N] [--store-bytes N] [--profile FILE]
/// [--engine-faults SEED]`.
pub fn main(args: Vec<String>) -> ExitCode {
    let mut port: u16 = 0;
    let mut port_file: Option<String> = None;
    let mut store: Option<std::path::PathBuf> = None;
    let mut profile_path: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut max_inflight: usize = 64;
    let mut deadline = Duration::from_millis(30_000);
    let mut read_deadline = Duration::from_millis(10_000);
    let mut cache_bytes: Option<usize> = None;
    let mut store_bytes: Option<u64> = None;
    let mut engine_faults = FaultPlan::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1);
        match args[i].as_str() {
            "--port" => match value(i).and_then(|s| s.parse().ok()) {
                Some(p) => port = p,
                None => return usage(),
            },
            "--port-file" => match value(i) {
                Some(f) => port_file = Some(f.clone()),
                None => return usage(),
            },
            "--store" => match value(i) {
                Some(d) => store = Some(std::path::PathBuf::from(d)),
                None => return usage(),
            },
            "--profile" => match value(i) {
                Some(f) => profile_path = Some(f.clone()),
                None => return usage(),
            },
            "--jobs" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => jobs = Some(n),
                None => return usage(),
            },
            "--max-inflight" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => max_inflight = n,
                None => return usage(),
            },
            "--deadline-ms" => match value(i).and_then(|s| s.parse().ok()) {
                Some(ms) => deadline = Duration::from_millis(ms),
                None => return usage(),
            },
            "--read-deadline-ms" => match value(i).and_then(|s| s.parse().ok()) {
                Some(ms) => read_deadline = Duration::from_millis(ms),
                None => return usage(),
            },
            "--cache-bytes" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => cache_bytes = Some(n),
                None => return usage(),
            },
            "--store-bytes" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => store_bytes = Some(n),
                None => return usage(),
            },
            "--engine-faults" => match value(i).and_then(|s| s.parse().ok()) {
                Some(seed) => engine_faults = FaultPlan::new(seed),
                None => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    // The daemon's profile applies engine-wide: every job whose source
    // matches runs guided (under a guided cache key), everything else runs
    // static with a `profile.stale` accounting — see `Engine::submit`.
    let profile = match &profile_path {
        None => None,
        Some(path) => match crate::batch::load_engine_profile(path) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("fdi serve: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let engine = Engine::new(EngineConfig {
        faults: engine_faults,
        store,
        profile,
        cache_bytes,
        store_bytes,
        ..match jobs {
            Some(n) => EngineConfig::with_workers(n),
            None => EngineConfig::default(),
        }
    });
    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fdi serve: cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound listener has an addr");
    if let Some(path) = &port_file {
        // Write-then-rename so a poller never reads a half-written port.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{}\n", addr.port()))
            .and_then(|()| std::fs::rename(&tmp, path))
            .is_err()
        {
            eprintln!("fdi serve: cannot write port file {path}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "fdi serve: listening on {addr} (pid {})",
        std::process::id()
    );

    let server = Arc::new(Server {
        engine,
        inflight: AtomicUsize::new(0),
        max_inflight,
        draining: AtomicBool::new(false),
        deadline,
        started: Instant::now(),
    });
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let server = server.clone();
        std::thread::spawn(move || handle_connection(&server, stream, read_deadline));
    }
    ExitCode::SUCCESS
}

fn handle_connection(server: &Arc<Server>, stream: TcpStream, read_deadline: Duration) {
    // Slowloris guard: a peer that trickles bytes (or none) without ever
    // finishing a line is cut after `read_deadline`, bounding how long a
    // connection can pin this thread. Zero disables the guard.
    if !read_deadline.is_zero() {
        let _ = stream.set_read_timeout(Some(read_deadline));
    }
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_request(server, &line);
        let (text, shutdown) = match &reply {
            Reply::Line(t) => (t, false),
            Reply::Shutdown(t) => (t, true),
        };
        if writeln!(writer, "{text}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            // Drained: every admitted job has finished and the reply is on
            // the wire. Abandoning the accept loop from here is the
            // protocol's whole graceful-exit path.
            std::process::exit(0);
        }
    }
}

fn handle_request(server: &Arc<Server>, line: &str) -> Reply {
    let req = match json::parse(line) {
        Ok(req) => req,
        Err(e) => return Reply::Line(err("bad-request", &format!("malformed request: {e}"))),
    };
    match req.get("op").and_then(Json::as_str) {
        Some("ping") => Reply::Line(format!(
            "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"op\":\"ping\",\"pid\":{}}}",
            std::process::id()
        )),
        Some("stats") => Reply::Line(format!(
            "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"op\":\"stats\",\
             \"inflight\":{},\"draining\":{},\"stats\":{}}}",
            server.inflight.load(SeqCst),
            server.draining.load(SeqCst),
            server.engine.stats().to_json()
        )),
        Some("health") => Reply::Line(health_reply(server)),
        Some("shutdown") => {
            server.draining.store(true, SeqCst);
            // Drain: admission is closed, so inflight only falls.
            while server.inflight.load(SeqCst) > 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            Reply::Shutdown(format!(
                "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"op\":\"shutdown\",\
                 \"jobs_completed\":{}}}",
                server.engine.stats().jobs_completed
            ))
        }
        Some("job") => Reply::Line(handle_job(server, &req)),
        Some(other) => Reply::Line(err("bad-request", &format!("unknown op {other:?}"))),
        None => Reply::Line(err("bad-request", "request has no \"op\"")),
    }
}

/// The operator probe: admission load, byte footprints against their
/// configured limits, degradation, and uptime, in one line.
fn health_reply(server: &Arc<Server>) -> String {
    let r = server.engine.resources();
    let opt = |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
    format!(
        "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"op\":\"health\",\"pid\":{},\
         \"uptime_ms\":{},\"inflight\":{},\"max_inflight\":{},\"draining\":{},\
         \"cache_bytes_used\":{},\"cache_bytes_limit\":{},\
         \"store_bytes_used\":{},\"store_bytes_limit\":{},\"store_degraded\":{}}}",
        std::process::id(),
        server.started.elapsed().as_millis(),
        server.inflight.load(SeqCst),
        server.max_inflight,
        server.draining.load(SeqCst),
        r.cache_bytes_used,
        opt(r.cache_bytes_limit),
        opt(r.store_bytes_used),
        opt(r.store_bytes_limit),
        r.store_degraded,
    )
}

/// Decrements the in-flight count when dropped, unless responsibility was
/// handed to a timeout watcher thread via [`InflightSlot::transfer`].
struct InflightSlot<'a> {
    server: &'a Server,
    armed: bool,
}

impl InflightSlot<'_> {
    fn transfer(mut self) {
        self.armed = false;
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.server.inflight.fetch_sub(1, SeqCst);
        }
    }
}

fn handle_job(server: &Arc<Server>, req: &Json) -> String {
    if server.draining.load(SeqCst) {
        return err("draining", "server is shutting down; resubmit elsewhere");
    }
    // Bounded admission: claim a slot or reject *now*. Nothing ever queues
    // beyond the engine's own worker queues, so a flood degrades to typed
    // rejections instead of unbounded memory growth and silent latency.
    if server.inflight.fetch_add(1, SeqCst) >= server.max_inflight {
        server.inflight.fetch_sub(1, SeqCst);
        return format!(
            "{{\"ok\":false,\"proto\":{PROTO_VERSION},\"kind\":\"overloaded\",\
             \"retry_after_ms\":100,\"error\":\"{} jobs in flight; retry later\"}}",
            server.max_inflight
        );
    }
    let slot = InflightSlot {
        server,
        armed: true,
    };

    let (spec, source) = match (
        req.get("spec").and_then(Json::as_str),
        req.get("source").and_then(Json::as_str),
    ) {
        (Some(spec), None) => match resolve_source(spec) {
            Ok(src) => (spec.to_string(), src),
            Err(e) => return err("bad-request", &e),
        },
        (None, Some(src)) => ("<inline>".to_string(), src.to_string()),
        _ => return err("bad-request", "need exactly one of \"spec\" or \"source\""),
    };
    let mut config = PipelineConfig::default();
    let flags: Vec<&str> = match req.get("flags") {
        None => Vec::new(),
        Some(flags) => match flags.as_arr() {
            Some(items) if items.iter().all(|f| f.as_str().is_some()) => {
                items.iter().filter_map(Json::as_str).collect()
            }
            _ => return err("bad-request", "\"flags\" must be an array of strings"),
        },
    };
    if let Err(e) = apply_job_flags(&mut config, &flags) {
        return err("bad-request", &e);
    }
    let deadline = match req.get("deadline_ms").map(|d| d.as_num()) {
        None => server.deadline,
        Some(Some(ms)) if ms >= 0.0 => Duration::from_millis(ms as u64),
        Some(_) => return err("bad-request", "\"deadline_ms\" must be a number"),
    };

    let job = Job::new(source.as_str(), config);
    let head = format!(
        "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"op\":\"job\",\"spec\":\"{}\",\"threshold\":{}",
        json_escape(&spec),
        config.threshold
    );

    // Warm path: answer straight from the disk store, no recomputation.
    if let Some(stored) = server.engine.lookup_stored(&job) {
        return format!(
            concat!(
                "{},\"cached\":true,\"degraded\":false,\"oracle_rejected\":false,",
                "\"size_ratio\":{:.6},\"baseline_size\":{},\"optimized_size\":{},",
                "\"sites_inlined\":{},\"decisions\":{},\"fuel_used\":{},",
                "\"optimized\":\"{}\"}}"
            ),
            head,
            stored.size_ratio(),
            stored.baseline_size,
            stored.optimized_size,
            stored.sites_inlined,
            stored.decisions.to_json(),
            stored.fuel_used,
            json_escape(&stored.optimized),
        );
    }

    let handle = server.engine.submit(job);
    let Some(result) = handle.wait_timeout(deadline) else {
        // The job outlived the request deadline. It keeps running (and will
        // pave the caches and store for the next asker), so its admission
        // slot stays claimed until it actually finishes — a watcher thread
        // inherits the release.
        slot.transfer();
        let watcher_server = server.clone();
        std::thread::spawn(move || {
            let _ = handle.wait();
            watcher_server.inflight.fetch_sub(1, SeqCst);
        });
        return format!(
            "{{\"ok\":false,\"proto\":{PROTO_VERSION},\"kind\":\"timeout\",\"deadline_ms\":{},\
             \"error\":\"job exceeded its deadline; it keeps running and will warm the cache\"}}",
            deadline.as_millis()
        );
    };
    drop(slot);
    match result {
        Err(e) => err("failed", &e.to_string()),
        Ok(out) => format!(
            concat!(
                "{},\"cached\":false,\"degraded\":{},\"oracle_rejected\":{},",
                "\"size_ratio\":{:.6},\"baseline_size\":{},\"optimized_size\":{},",
                "\"sites_inlined\":{},\"decisions\":{},\"fuel_used\":{},",
                "\"passes\":{},\"health\":{},\"optimized\":\"{}\"}}"
            ),
            head,
            out.health.degraded(),
            out.health.oracle_rejected(),
            out.size_ratio(),
            out.baseline_size,
            out.optimized_size,
            out.report.sites_inlined,
            fdi_telemetry::DecisionTotals::tally(&out.decisions).to_json(),
            out.fuel_used,
            passes_json(&out.passes),
            health_json(&out.health),
            json_escape(&fdi_lang::unparse(&out.optimized).to_string()),
        ),
    }
}
