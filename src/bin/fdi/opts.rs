//! Shared option parsing for the single-file subcommands
//! (`optimize`, `run`, `analyze`, `explain`, `profile`).

use fdi_core::{
    optimize_guided, Budget, FaultPlan, OracleConfig, PipelineConfig, PipelineOutput, Polyvariance,
    Schedule, Telemetry,
};
use fdi_profile::Profile;
use fdi_telemetry::RingSink;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

pub struct Options {
    pub file: String,
    pub threshold: usize,
    pub unroll: usize,
    pub clref: bool,
    pub policy: Polyvariance,
    pub stats: bool,
    pub dump: bool,
    pub strict: bool,
    pub trace: bool,
    pub budget: Budget,
    pub schedule: Option<Schedule>,
    pub validate: bool,
    pub oracle_fuel: Option<u64>,
    pub faults: Option<u64>,
    pub trace_out: Option<String>,
    pub site: Option<String>,
    pub profile: Option<String>,
    pub size_budget: Option<usize>,
    pub json: bool,
    pub entry: Option<String>,
    pub output: Option<String>,
}

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: fdi <optimize|run|analyze|explain> <file.scm> \
         [-t THRESHOLD] [--unroll N] [--clref] [--policy 0cfa|poly|1cfa] [--stats] [--dump] \
         [--passes SCHEDULE] [--trace] [--trace-out FILE] [--site LABEL] [--json] \
         [--profile FILE] [--size-budget N] \
         [--strict] [--deadline-ms N] [--fuel N] [--max-growth X] \
         [--validate] [--oracle-fuel N] [--faults SEED]\n       \
         fdi profile <file.scm> [--entry EXPR] [-o FILE]\n       \
         fdi batch <manifest> [--jobs N] [--out FILE] [--passes SCHEDULE] [--trace-out FILE] \
         [--profile FILE] [--size-budget N] [--cache-bytes N] \
         [--validate] [--oracle-fuel N] [--faults SEED] [--engine-faults SEED]\n       \
         fdi report [-t THRESHOLD] [--policy 0cfa|poly|1cfa] [--scale test|default] [--jobs N] \
         [--metrics FILE|-]\n       \
         fdi serve [--port N] [--port-file FILE] [--store DIR] [--jobs N] [--max-inflight N] \
         [--deadline-ms N] [--read-deadline-ms N] [--cache-bytes N] [--store-bytes N] \
         [--profile FILE] [--engine-faults SEED]\n       \
         fdi client (--port N | --port-file FILE) [--retries N] [--retry-seed S] \
         <ping|stats|health|flight|shutdown> | metrics [--metrics-text] | \
         job <spec> [job-flags…] [--request-deadline-ms N]\n       \
         fdi fsck <STORE> [--repair]\n       \
         fdi bench-diff <baseline.json> <current.json> [--tolerance PCT] \
         [--hit-rate-tolerance ABS] [--wins-drop N]"
    );
    ExitCode::FAILURE
}

/// Parses a schedule spec such as `analyze,inline,simplify*3`, reporting
/// malformed input on stderr.
pub fn parse_schedule(spec: &str) -> Option<Schedule> {
    match Schedule::parse(spec) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("fdi: --passes: {e}");
            None
        }
    }
}

pub fn parse(rest: Vec<String>) -> Option<Options> {
    let mut opts = Options {
        file: String::new(),
        threshold: 200,
        unroll: 0,
        clref: false,
        policy: Polyvariance::PolymorphicSplitting,
        stats: false,
        dump: false,
        strict: false,
        trace: false,
        budget: Budget::default(),
        schedule: None,
        validate: false,
        oracle_fuel: None,
        faults: None,
        trace_out: None,
        site: None,
        profile: None,
        size_budget: None,
        json: false,
        entry: None,
        output: None,
    };
    let mut rest = rest;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "-t" | "--threshold" => {
                opts.threshold = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--unroll" => {
                opts.unroll = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--clref" => {
                opts.clref = true;
                rest.remove(i);
            }
            "--stats" => {
                opts.stats = true;
                rest.remove(i);
            }
            "--dump" => {
                opts.dump = true;
                rest.remove(i);
            }
            "--strict" => {
                opts.strict = true;
                rest.remove(i);
            }
            "--trace" => {
                opts.trace = true;
                rest.remove(i);
            }
            "--passes" => {
                opts.schedule = Some(parse_schedule(rest.get(i + 1)?)?);
                rest.drain(i..=i + 1);
            }
            "--deadline-ms" => {
                let ms: u64 = rest.get(i + 1)?.parse().ok()?;
                opts.budget = opts.budget.with_deadline(Duration::from_millis(ms));
                rest.drain(i..=i + 1);
            }
            "--fuel" => {
                opts.budget = opts.budget.with_fuel(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--max-growth" => {
                opts.budget = opts.budget.with_max_growth(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--validate" => {
                opts.validate = true;
                rest.remove(i);
            }
            "--oracle-fuel" => {
                opts.oracle_fuel = Some(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--faults" => {
                opts.faults = Some(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--policy" => {
                opts.policy = parse_policy(rest.get(i + 1)?)?;
                rest.drain(i..=i + 1);
            }
            "--trace-out" => {
                opts.trace_out = Some(rest.get(i + 1)?.clone());
                rest.drain(i..=i + 1);
            }
            "--site" => {
                opts.site = Some(rest.get(i + 1)?.clone());
                rest.drain(i..=i + 1);
            }
            "--profile" => {
                opts.profile = Some(rest.get(i + 1)?.clone());
                rest.drain(i..=i + 1);
            }
            "--size-budget" => {
                opts.size_budget = Some(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--json" => {
                opts.json = true;
                rest.remove(i);
            }
            "--entry" => {
                opts.entry = Some(rest.get(i + 1)?.clone());
                rest.drain(i..=i + 1);
            }
            "-o" | "--output" => {
                opts.output = Some(rest.get(i + 1)?.clone());
                rest.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    opts.file = rest.into_iter().next()?;
    Some(opts)
}

/// Parses a `--policy` spec (shared with the batch manifest flags).
pub fn parse_policy(spec: &str) -> Option<Polyvariance> {
    match spec {
        "0cfa" => Some(Polyvariance::Monovariant),
        "poly" | "poly-split" => Some(Polyvariance::PolymorphicSplitting),
        "1cfa" => Some(Polyvariance::CallStrings(1)),
        "2cfa" => Some(Polyvariance::CallStrings(2)),
        _ => None,
    }
}

impl Options {
    /// Reads the source file, reporting failures on stderr.
    pub fn read_source(&self) -> Option<String> {
        match std::fs::read_to_string(&self.file) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("fdi: cannot read {}: {e}", self.file);
                None
            }
        }
    }

    /// The pipeline configuration these options describe.
    pub fn config(&self) -> PipelineConfig {
        let mut config = PipelineConfig::with_threshold(self.threshold);
        config.policy = self.policy;
        config.unroll = self.unroll;
        config.budget = self.budget;
        if self.clref {
            config.mode = fdi_core::InlineMode::ClRef;
        }
        if let Some(schedule) = self.schedule {
            config.schedule = schedule;
        }
        if self.validate {
            config.oracle = OracleConfig::on();
        }
        if let Some(fuel) = self.oracle_fuel {
            config.oracle.fuel = fuel;
        }
        if let Some(seed) = self.faults {
            config.faults = FaultPlan::new(seed);
        }
        config.size_budget = self.size_budget;
        config
    }

    /// Loads `--profile` and verifies it against `src`. A fresh profile is
    /// returned for guiding; a stale one (collected from a different
    /// source) degrades to static order — a warning on stderr and a
    /// `profile.stale` telemetry instant, never a silent reorder. An
    /// unreadable or corrupt artifact is a hard error: a profile that
    /// exists but cannot be verified should stop the run, not quietly
    /// change its meaning.
    pub fn load_profile(
        &self,
        src: &str,
        telemetry: &Telemetry,
    ) -> Result<Option<Profile>, String> {
        let Some(path) = &self.profile else {
            return Ok(None);
        };
        let profile = Profile::load(std::path::Path::new(path))
            .map_err(|e| format!("--profile {path}: {e}"))?;
        if profile.stale(src) {
            telemetry.instant("profile.stale", "profile", &[("path", path.clone())]);
            eprintln!(
                ";; profile {path} is stale for {}: falling back to static order",
                self.file
            );
            return Ok(None);
        }
        Ok(Some(profile))
    }

    /// Runs the pipeline over `src` — degrading by default, `--strict`
    /// propagating the first phase failure — and reports health (and, under
    /// `--trace`, the per-pass trace) on stderr. With `--trace-out FILE` the
    /// run is collected into a ring sink and exported as a Chrome trace.
    pub fn run_pipeline(&self, src: &str) -> Option<PipelineOutput> {
        self.run_pipeline_with_profile(src).map(|(out, _)| out)
    }

    /// [`Options::run_pipeline`], also returning the loaded (fresh)
    /// profile so callers like `explain --json` can annotate their output
    /// with per-site dynamic counts and benefits.
    pub fn run_pipeline_with_profile(
        &self,
        src: &str,
    ) -> Option<(PipelineOutput, Option<Profile>)> {
        let mut config = self.config();
        let (telemetry, sink) = match &self.trace_out {
            Some(_) => {
                let sink = Arc::new(RingSink::default());
                (Telemetry::with_collector(sink.clone()), Some(sink))
            }
            None => (Telemetry::off(), None),
        };
        let profile = match self.load_profile(src, &telemetry) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fdi: {e}");
                return None;
            }
        };
        // A fresh profile keys the run (distinct cache identity from static
        // mode) and supplies the benefit order for the size budget.
        let guide = profile.as_ref().map(|p| {
            config.profile_fp = Some(p.fingerprint());
            p.guide()
        });
        // `--strict` keeps `optimize_strict`'s contract: degrade-run the
        // pipeline, then surface the first recorded phase failure as an error.
        let result =
            optimize_guided(src, &config, guide.as_ref(), &telemetry).and_then(|out| {
                match (self.strict, out.health.first_error()) {
                    (true, Some(e)) => Err(e.clone()),
                    _ => Ok(out),
                }
            });
        if let (Some(path), Some(sink)) = (&self.trace_out, &sink) {
            // Export even on failure: a trace of the run up to the error is
            // exactly what the file is for.
            crate::report::write_chrome_trace(path, &sink.drain());
        }
        match result {
            Ok(out) => {
                if out.health.oracle_rejected() {
                    eprintln!(";; oracle rejected: rolled back to the last validated program");
                }
                if out.health.degraded() {
                    eprintln!(";; degraded: {}", out.health.summary());
                }
                if self.trace {
                    crate::report::print_trace(&out);
                }
                Some((out, profile))
            }
            Err(e) => {
                eprintln!("fdi: {e}");
                None
            }
        }
    }
}
