//! Shared option parsing for the single-file subcommands
//! (`optimize`, `run`, `analyze`).

use fdi_core::{
    optimize, optimize_strict, Budget, FaultPlan, OracleConfig, PipelineConfig, PipelineOutput,
    Polyvariance, Schedule,
};
use std::process::ExitCode;
use std::time::Duration;

pub struct Options {
    pub file: String,
    pub threshold: usize,
    pub unroll: usize,
    pub clref: bool,
    pub policy: Polyvariance,
    pub stats: bool,
    pub dump: bool,
    pub strict: bool,
    pub trace: bool,
    pub budget: Budget,
    pub schedule: Option<Schedule>,
    pub validate: bool,
    pub oracle_fuel: Option<u64>,
    pub faults: Option<u64>,
}

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: fdi <optimize|run|analyze> <file.scm> \
         [-t THRESHOLD] [--unroll N] [--clref] [--policy 0cfa|poly|1cfa] [--stats] [--dump] \
         [--passes SCHEDULE] [--trace] \
         [--strict] [--deadline-ms N] [--fuel N] [--max-growth X] \
         [--validate] [--oracle-fuel N] [--faults SEED]\n       \
         fdi batch <manifest> [--jobs N] [--out FILE] [--passes SCHEDULE] \
         [--validate] [--oracle-fuel N] [--faults SEED] [--engine-faults SEED]"
    );
    ExitCode::FAILURE
}

/// Parses a schedule spec such as `analyze,inline,simplify*3`, reporting
/// malformed input on stderr.
pub fn parse_schedule(spec: &str) -> Option<Schedule> {
    match Schedule::parse(spec) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("fdi: --passes: {e}");
            None
        }
    }
}

pub fn parse(rest: Vec<String>) -> Option<Options> {
    let mut opts = Options {
        file: String::new(),
        threshold: 200,
        unroll: 0,
        clref: false,
        policy: Polyvariance::PolymorphicSplitting,
        stats: false,
        dump: false,
        strict: false,
        trace: false,
        budget: Budget::default(),
        schedule: None,
        validate: false,
        oracle_fuel: None,
        faults: None,
    };
    let mut rest = rest;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "-t" | "--threshold" => {
                opts.threshold = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--unroll" => {
                opts.unroll = rest.get(i + 1)?.parse().ok()?;
                rest.drain(i..=i + 1);
            }
            "--clref" => {
                opts.clref = true;
                rest.remove(i);
            }
            "--stats" => {
                opts.stats = true;
                rest.remove(i);
            }
            "--dump" => {
                opts.dump = true;
                rest.remove(i);
            }
            "--strict" => {
                opts.strict = true;
                rest.remove(i);
            }
            "--trace" => {
                opts.trace = true;
                rest.remove(i);
            }
            "--passes" => {
                opts.schedule = Some(parse_schedule(rest.get(i + 1)?)?);
                rest.drain(i..=i + 1);
            }
            "--deadline-ms" => {
                let ms: u64 = rest.get(i + 1)?.parse().ok()?;
                opts.budget = opts.budget.with_deadline(Duration::from_millis(ms));
                rest.drain(i..=i + 1);
            }
            "--fuel" => {
                opts.budget = opts.budget.with_fuel(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--max-growth" => {
                opts.budget = opts.budget.with_max_growth(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--validate" => {
                opts.validate = true;
                rest.remove(i);
            }
            "--oracle-fuel" => {
                opts.oracle_fuel = Some(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--faults" => {
                opts.faults = Some(rest.get(i + 1)?.parse().ok()?);
                rest.drain(i..=i + 1);
            }
            "--policy" => {
                opts.policy = parse_policy(rest.get(i + 1)?)?;
                rest.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    opts.file = rest.into_iter().next()?;
    Some(opts)
}

/// Parses a `--policy` spec (shared with the batch manifest flags).
pub fn parse_policy(spec: &str) -> Option<Polyvariance> {
    match spec {
        "0cfa" => Some(Polyvariance::Monovariant),
        "poly" | "poly-split" => Some(Polyvariance::PolymorphicSplitting),
        "1cfa" => Some(Polyvariance::CallStrings(1)),
        "2cfa" => Some(Polyvariance::CallStrings(2)),
        _ => None,
    }
}

impl Options {
    /// Reads the source file, reporting failures on stderr.
    pub fn read_source(&self) -> Option<String> {
        match std::fs::read_to_string(&self.file) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("fdi: cannot read {}: {e}", self.file);
                None
            }
        }
    }

    /// The pipeline configuration these options describe.
    pub fn config(&self) -> PipelineConfig {
        let mut config = PipelineConfig::with_threshold(self.threshold);
        config.policy = self.policy;
        config.unroll = self.unroll;
        config.budget = self.budget;
        if self.clref {
            config.mode = fdi_core::InlineMode::ClRef;
        }
        if let Some(schedule) = self.schedule {
            config.schedule = schedule;
        }
        if self.validate {
            config.oracle = OracleConfig::on();
        }
        if let Some(fuel) = self.oracle_fuel {
            config.oracle.fuel = fuel;
        }
        if let Some(seed) = self.faults {
            config.faults = FaultPlan::new(seed);
        }
        config
    }

    /// Runs the pipeline over `src` — degrading by default, `--strict`
    /// propagating the first phase failure — and reports health (and, under
    /// `--trace`, the per-pass trace) on stderr.
    pub fn run_pipeline(&self, src: &str) -> Option<PipelineOutput> {
        let config = self.config();
        let result = if self.strict {
            optimize_strict(src, &config)
        } else {
            optimize(src, &config)
        };
        match result {
            Ok(out) => {
                if out.health.oracle_rejected() {
                    eprintln!(";; oracle rejected: rolled back to the last validated program");
                }
                if out.health.degraded() {
                    eprintln!(";; degraded: {}", out.health.summary());
                }
                if self.trace {
                    crate::report::print_trace(&out);
                }
                Some(out)
            }
            Err(e) => {
                eprintln!("fdi: {e}");
                None
            }
        }
    }
}
