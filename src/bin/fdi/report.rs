//! Rendering helpers shared by the subcommands: JSON fragments for the
//! batch report and the human-readable `--trace` table.

use fdi_core::{PassTrace, PipelineHealth, PipelineOutput};

/// Minimal JSON string escaping for the batch report.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a health ledger as a JSON array of degradation objects.
pub fn health_json(health: &PipelineHealth) -> String {
    let entries: Vec<String> = health
        .degradations
        .iter()
        .map(|d| {
            format!(
                "{{\"phase\":\"{}\",\"error\":\"{}\",\"fallback\":\"{}\"}}",
                d.phase,
                json_escape(&d.error.to_string()),
                json_escape(&d.fallback.to_string())
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Renders a run's per-pass traces as a JSON array, in run order.
pub fn passes_json(passes: &[PassTrace]) -> String {
    let entries: Vec<String> = passes
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "{{\"pass\":\"{}\",\"runs\":{},\"ms\":{:.3},\"fuel\":{},",
                    "\"size_before\":{},\"size_after\":{},\"disposition\":\"{}\"}}"
                ),
                t.pass,
                t.runs,
                t.wall.as_secs_f64() * 1e3,
                t.fuel,
                t.size_before,
                t.size_after,
                t.disposition
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Prints the `--trace` table on stderr: one line per executed pass.
pub fn print_trace(out: &PipelineOutput) {
    eprintln!(
        ";; {:<9} {:>4} {:>10} {:>8} {:>6} {:>6}  disposition",
        "pass", "runs", "wall", "fuel", "before", "after"
    );
    for t in &out.passes {
        eprintln!(
            ";; {:<9} {:>4} {:>8.3}ms {:>8} {:>6} {:>6}  {}",
            t.pass,
            t.runs,
            t.wall.as_secs_f64() * 1e3,
            t.fuel,
            t.size_before,
            t.size_after,
            t.disposition
        );
    }
    eprintln!(";; fuel used: {}", out.fuel_used);
}
