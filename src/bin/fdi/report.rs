//! The `fdi report` subcommand, plus rendering helpers shared by the other
//! subcommands: JSON fragments for the batch report, the human-readable
//! `--trace` table, and the Chrome-trace file writer behind `--trace-out`.

use crate::opts::{parse_policy, usage};
use fdi_core::{DecisionTotals, PassTrace, PipelineHealth, PipelineOutput};
use fdi_telemetry::Event;
use std::process::ExitCode;

/// Minimal JSON string escaping for the batch report.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a health ledger as a JSON array of degradation objects.
pub fn health_json(health: &PipelineHealth) -> String {
    let entries: Vec<String> = health
        .degradations
        .iter()
        .map(|d| {
            format!(
                "{{\"phase\":\"{}\",\"error\":\"{}\",\"fallback\":\"{}\"}}",
                d.phase,
                json_escape(&d.error.to_string()),
                json_escape(&d.fallback.to_string())
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Renders a run's per-pass traces as a JSON array, in run order.
pub fn passes_json(passes: &[PassTrace]) -> String {
    let entries: Vec<String> = passes
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "{{\"pass\":\"{}\",\"runs\":{},\"ms\":{:.3},\"fuel\":{},",
                    "\"size_before\":{},\"size_after\":{},\"disposition\":\"{}\"}}"
                ),
                t.pass,
                t.runs,
                t.wall.as_secs_f64() * 1e3,
                t.fuel,
                t.size_before,
                t.size_after,
                t.disposition
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Prints the `--trace` table on stderr: one line per executed pass.
pub fn print_trace(out: &PipelineOutput) {
    eprintln!(
        ";; {:<9} {:>4} {:>10} {:>8} {:>6} {:>6}  disposition",
        "pass", "runs", "wall", "fuel", "before", "after"
    );
    for t in &out.passes {
        eprintln!(
            ";; {:<9} {:>4} {:>8.3}ms {:>8} {:>6} {:>6}  {}",
            t.pass,
            t.runs,
            t.wall.as_secs_f64() * 1e3,
            t.fuel,
            t.size_before,
            t.size_after,
            t.disposition
        );
    }
    eprintln!(";; fuel used: {}", out.fuel_used);
}

/// Writes `events` to `path` in Chrome Trace Event Format. IO failure is
/// reported but never fails the run — telemetry must not sink a pipeline
/// that already produced its output.
pub fn write_chrome_trace(path: &str, events: &[Event]) {
    let json = fdi_telemetry::chrome_trace(events);
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("fdi: cannot write trace {path}: {e}");
    } else {
        eprintln!(";; wrote {} trace event(s) to {path}", events.len());
    }
}

/// The most common rejection reason in `totals`, as its stable key.
fn top_rejection(totals: &DecisionTotals) -> &'static str {
    totals
        .iter()
        .filter(|&(key, n)| key != "inlined" && n > 0)
        .max_by_key(|&(_, n)| n)
        .map(|(key, _)| key)
        .unwrap_or("-")
}

/// `fdi report --metrics FILE|-` — render a scraped daemon metrics document
/// (the `{"op":"metrics"}` response, or the bare registry JSON) as tables:
/// windowed counters, gauges, span-duration histograms, decision totals.
fn metrics_main(path: &str) -> ExitCode {
    let text = if path == "-" {
        let mut buf = String::new();
        use std::io::Read;
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("fdi: report: cannot read metrics from stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fdi: report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let doc = match fdi_telemetry::json::parse(text.trim()) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("fdi: report: {path}: malformed metrics JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Accept the client's response envelope or the bare registry document.
    let m = doc.get("metrics").unwrap_or(&doc);
    let num = |j: Option<&fdi_telemetry::json::Json>| j.and_then(|v| v.as_num()).unwrap_or(0.0);
    if m.get("counters").is_none() {
        eprintln!("fdi: report: {path}: not a metrics document (no \"counters\")");
        return ExitCode::FAILURE;
    }
    println!(
        "daemon metrics (uptime {:.0}s, {} events, {:.0} µs recording)",
        num(m.get("uptime_s")),
        num(m.get("overhead").and_then(|o| o.get("events"))),
        num(m.get("overhead").and_then(|o| o.get("record_us"))),
    );
    if let Some(counters) = m.get("counters").and_then(|c| c.as_obj()) {
        println!(
            "\n{:<36} {:>10} {:>8} {:>8}",
            "counter", "total", "1m", "5m"
        );
        for (name, c) in counters {
            println!(
                "{:<36} {:>10} {:>8} {:>8}",
                name,
                num(c.get("total")),
                num(c.get("w1m")),
                num(c.get("w5m")),
            );
        }
    }
    if let Some(gauges) = m.get("gauges").and_then(|g| g.as_obj()) {
        println!("\n{:<36} {:>14}", "gauge", "value");
        for (name, v) in gauges {
            println!("{:<36} {:>14.3}", name, v.as_num().unwrap_or(0.0));
        }
    }
    if let Some(histos) = m.get("histograms").and_then(|h| h.as_obj()) {
        println!(
            "\n{:<20} {:>8} {:>12} {:>8} {:>8}",
            "span", "count", "mean µs", "1m", "5m"
        );
        for (name, h) in histos {
            let count = num(h.get("count"));
            let mean = if count > 0.0 {
                num(h.get("sum_us")) / count
            } else {
                0.0
            };
            println!(
                "{:<20} {:>8} {:>12.1} {:>8} {:>8}",
                name,
                count,
                mean,
                num(h.get("w1m").and_then(|w| w.get("count"))),
                num(h.get("w5m").and_then(|w| w.get("count"))),
            );
        }
    }
    if let Some(decisions) = m.get("decisions").and_then(|d| d.as_obj()) {
        println!("\n{:<24} {:>10}", "decision", "count");
        for (reason, n) in decisions {
            println!("{:<24} {:>10}", reason, n.as_num().unwrap_or(0.0));
        }
    }
    ExitCode::SUCCESS
}

/// `fdi report [-t THRESHOLD] [--policy P] [--scale test|default] [--jobs N]`
/// — optimize the Table 1 benchmark suite on the engine and print one table
/// row per benchmark, with a decisions column from the inliner's telemetry
/// provenance (sites inlined / sites rejected, plus the dominant rejection
/// reason). `--metrics FILE|-` switches to rendering a scraped daemon
/// metrics document instead (see [`metrics_main`]).
pub fn main(args: Vec<String>) -> ExitCode {
    let mut threshold = 200usize;
    let mut policy = fdi_core::Polyvariance::PolymorphicSplitting;
    let mut test_scale = true;
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned();
        match args[i].as_str() {
            "-t" | "--threshold" => {
                let Some(n) = value(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                threshold = n;
                i += 2;
            }
            "--policy" => {
                let Some(p) = value(i).as_deref().and_then(parse_policy) else {
                    return usage();
                };
                policy = p;
                i += 2;
            }
            "--scale" => match value(i).as_deref() {
                Some("test") => {
                    test_scale = true;
                    i += 2;
                }
                Some("default") => {
                    test_scale = false;
                    i += 2;
                }
                _ => return usage(),
            },
            "--jobs" => {
                let Some(n) = value(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                jobs = Some(n);
                i += 2;
            }
            "--metrics" => {
                let Some(path) = value(i) else {
                    return usage();
                };
                return metrics_main(&path);
            }
            other => {
                eprintln!("fdi: report: unknown argument {other:?}");
                return usage();
            }
        }
    }

    let engine = fdi_engine::Engine::new(match jobs {
        Some(n) => fdi_engine::EngineConfig::with_workers(n),
        None => fdi_engine::EngineConfig::default(),
    });
    let mut config = fdi_core::PipelineConfig::with_threshold(threshold);
    config.policy = policy;
    let handles: Vec<(&str, fdi_engine::JobHandle)> = fdi_benchsuite::BENCHMARKS
        .iter()
        .map(|b| {
            let scale = if test_scale {
                b.test_scale
            } else {
                b.default_scale
            };
            let src = b.scaled(scale);
            (
                b.name,
                engine.submit(fdi_engine::Job::new(src.as_str(), config)),
            )
        })
        .collect();

    println!(
        "{:<10} {:>8} {:>8} {:>6}  {:<9}  top rejection",
        "benchmark", "baseline", "opt", "ratio", "decisions"
    );
    let mut suite = DecisionTotals::default();
    let mut failures = 0u32;
    for (name, handle) in handles {
        match handle.wait() {
            Ok(out) => {
                let totals = DecisionTotals::tally(&out.decisions);
                suite.merge(&totals);
                println!(
                    "{:<10} {:>8} {:>8} {:>6.2}  {:<9}  {}",
                    name,
                    out.baseline_size,
                    out.optimized_size,
                    out.size_ratio(),
                    format!("{}/{}", totals.inlined(), totals.rejected()),
                    top_rejection(&totals),
                );
            }
            Err(e) => {
                failures += 1;
                println!("{name:<10} failed: {e}");
            }
        }
    }
    println!(
        "{:<10} {:>8} {:>8} {:>6}  {:<9}  {}",
        "total",
        "",
        "",
        "",
        format!("{}/{}", suite.inlined(), suite.rejected()),
        top_rejection(&suite),
    );
    if failures > 0 {
        eprintln!("fdi: {failures} benchmark(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
