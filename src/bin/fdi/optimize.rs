//! `fdi optimize` — print the optimized source.

use crate::opts::Options;
use std::process::ExitCode;

pub fn main(opts: &Options) -> ExitCode {
    let Some(src) = opts.read_source() else {
        return ExitCode::FAILURE;
    };
    let Some(out) = opts.run_pipeline(&src) else {
        return ExitCode::FAILURE;
    };
    println!("{}", fdi_sexpr::pretty(&fdi_lang::unparse(&out.optimized)));
    eprintln!(
        ";; inlined {} sites, pruned {} branches, size ratio {:.2}, analysis {:?}",
        out.report.sites_inlined,
        out.report.branches_pruned,
        out.size_ratio(),
        out.flow_stats.duration
    );
    ExitCode::SUCCESS
}
