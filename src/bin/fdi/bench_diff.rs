//! `fdi bench-diff` — the perf-regression watchdog.
//!
//! ```text
//! fdi bench-diff <baseline.json> <current.json>
//!                [--tolerance PCT] [--hit-rate-tolerance ABS] [--wins-drop N]
//! ```
//!
//! Compares two benchmark snapshots and exits nonzero when the current one
//! regressed past tolerance — the CI perf gate, replacing hand-maintained
//! absolute thresholds (which go stale the moment the suite or the runner
//! changes) with a relative check against the committed snapshot.
//!
//! Two snapshot schemas are recognised by their keys:
//!
//! * **engine sweeps** (`results/BENCH_sweep.json`, schema `v:2`, written by
//!   `engine_sweep --json`): wall clocks (`sequential_ms`, `cold_ms`,
//!   `warm_ms`, `inline_pass_ms`) may grow at most `--tolerance` percent
//!   (default 50 — CI runners are noisy; catch the 2× cliff, not the 5%
//!   jitter); cache hit *rates* (analysis, spec, exec) may drop at most
//!   `--hit-rate-tolerance` absolute (default 0.05); `rows_agree` must stay
//!   true; warm runs must not start re-analysing (`warm_new_analyses`/
//!   `warm_new_parses` must not grow); and the decision totals must match
//!   exactly — the sweep is deterministic at a fixed scale, so any drift
//!   means the optimizer changed behaviour, not just speed.
//! * **profile snapshots** (`results/BENCH_profile.json`, schema `v:1`,
//!   written by `fdi-profile --json`): the number of `guided_win`
//!   benchmarks may drop at most `--wins-drop` (default 1 — individual wins
//!   at test scale sit close to the line), and per-benchmark
//!   `sites_inlined` for the static and guided runs must match exactly.
//!
//! Snapshots are only comparable like-for-like: a schema-version or scale
//! mismatch (or unreadable input) is a usage error (exit 2), not a
//! regression (exit 1). Improvements are reported but never fail the gate.

use crate::opts::usage;
use fdi_telemetry::json::{self, Json};
use std::process::ExitCode;

/// Wall-clock growth allowed before a sweep counts as regressed, percent.
const DEFAULT_TOLERANCE_PCT: f64 = 50.0;
/// Absolute hit-rate drop allowed (0.05 = five percentage points).
const DEFAULT_RATE_TOLERANCE: f64 = 0.05;
/// Guided-win flips allowed in a profile snapshot comparison.
const DEFAULT_WINS_DROP: i64 = 1;

pub fn main(args: Vec<String>) -> ExitCode {
    let mut tolerance = DEFAULT_TOLERANCE_PCT;
    let mut rate_tolerance = DEFAULT_RATE_TOLERANCE;
    let mut wins_drop = DEFAULT_WINS_DROP;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(pct) => {
                    tolerance = pct;
                    i += 2;
                }
                None => return usage(),
            },
            "--hit-rate-tolerance" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(abs) => {
                    rate_tolerance = abs;
                    i += 2;
                }
                None => return usage(),
            },
            "--wins-drop" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => {
                    wins_drop = n;
                    i += 2;
                }
                None => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            _ => {
                files.push(args[i].clone());
                i += 1;
            }
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return usage();
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        json::parse(text.trim()).map_err(|e| format!("{path}: malformed JSON: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("fdi bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    match diff(&baseline, &current, tolerance, rate_tolerance, wins_drop) {
        Err(e) => {
            eprintln!("fdi bench-diff: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for line in &report.lines {
                println!("{line}");
            }
            if report.regressions == 0 {
                println!(
                    "bench-diff: OK — {} checks, no regressions \
                     ({baseline_path} → {current_path})",
                    report.checks
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "bench-diff: REGRESSION — {} of {} checks failed \
                     ({baseline_path} → {current_path})",
                    report.regressions, report.checks
                );
                ExitCode::FAILURE
            }
        }
    }
}

/// The comparison verdict: every check's line, plus the tally the exit code
/// is derived from.
pub struct DiffReport {
    /// One human-readable line per check (prefixed `ok:` or `REGRESSION:`).
    pub lines: Vec<String>,
    /// Checks run.
    pub checks: usize,
    /// Checks failed.
    pub regressions: usize,
}

impl DiffReport {
    fn new() -> DiffReport {
        DiffReport {
            lines: Vec::new(),
            checks: 0,
            regressions: 0,
        }
    }

    fn pass(&mut self, line: String) {
        self.checks += 1;
        self.lines.push(format!("ok: {line}"));
    }

    fn fail(&mut self, line: String) {
        self.checks += 1;
        self.regressions += 1;
        self.lines.push(format!("REGRESSION: {line}"));
    }
}

/// Compares two parsed snapshots of the same schema.
///
/// # Errors
///
/// Returns a message when the snapshots are not comparable (unknown or
/// mismatched schema, mismatched scale or benchmark set) — a usage problem,
/// distinct from a regression.
pub fn diff(
    baseline: &Json,
    current: &Json,
    tolerance_pct: f64,
    rate_tolerance: f64,
    wins_drop: i64,
) -> Result<DiffReport, String> {
    let version = |doc: &Json, who: &str| {
        doc.get("v")
            .and_then(Json::as_num)
            .ok_or(format!("{who} snapshot has no schema version \"v\""))
    };
    let (bv, cv) = (version(baseline, "baseline")?, version(current, "current")?);
    if bv != cv {
        return Err(format!(
            "schema mismatch: baseline v{bv}, current v{cv} — regenerate the baseline"
        ));
    }
    for key in ["scale", "jobs"] {
        let (b, c) = (baseline.get(key), current.get(key));
        if b.is_some() && b != c {
            return Err(format!(
                "\"{key}\" mismatch — snapshots are only comparable like-for-like"
            ));
        }
    }
    if baseline.get("inline_pass_ms").is_some() {
        Ok(diff_sweep(baseline, current, tolerance_pct, rate_tolerance))
    } else if baseline.get("benchmarks").and_then(Json::as_arr).is_some() {
        diff_profile(baseline, current, wins_drop)
    } else {
        Err("unrecognised snapshot schema (neither an engine sweep nor a profile run)".to_string())
    }
}

/// The `engine_sweep --json` (v2) comparison.
fn diff_sweep(
    baseline: &Json,
    current: &Json,
    tolerance_pct: f64,
    rate_tolerance: f64,
) -> DiffReport {
    let mut report = DiffReport::new();
    let num = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_num);

    // Wall clocks: relative ceiling. A missing field on either side is
    // itself a failure — the gate must never silently skip a check.
    for key in ["sequential_ms", "cold_ms", "warm_ms", "inline_pass_ms"] {
        match (num(baseline, key), num(current, key)) {
            (Some(b), Some(c)) if b > 0.0 => {
                let growth_pct = (c / b - 1.0) * 100.0;
                if growth_pct > tolerance_pct {
                    report.fail(format!(
                        "{key}: {b:.1} → {c:.1} ms (+{growth_pct:.1}%, tolerance {tolerance_pct:.0}%)"
                    ));
                } else {
                    report.pass(format!("{key}: {b:.1} → {c:.1} ms ({growth_pct:+.1}%)"));
                }
            }
            _ => report.fail(format!("{key}: missing or non-positive in a snapshot")),
        }
    }

    // The sweep's own cross-mode agreement bit.
    match current.get("rows_agree") {
        Some(&Json::Bool(true)) => report.pass("rows_agree: true".to_string()),
        _ => report.fail("rows_agree: sequential and engine rows diverged".to_string()),
    }

    // Warm runs must stay warm: re-analyses or re-parses appearing where the
    // baseline had none means a cache key or invalidation regressed.
    for key in ["warm_new_analyses", "warm_new_parses"] {
        match (num(baseline, key), num(current, key)) {
            (Some(b), Some(c)) if c <= b => report.pass(format!("{key}: {b} → {c}")),
            (Some(b), Some(c)) => report.fail(format!("{key}: {b} → {c} (warm cache regressed)")),
            _ => report.fail(format!("{key}: missing in a snapshot")),
        }
    }

    // Hit rates, from the embedded engine stats: absolute floor.
    let rate = |doc: &Json, hits: &str, misses: &str| -> Option<f64> {
        let stats = doc.get("stats")?;
        let (h, m) = (num(stats, hits)?, num(stats, misses)?);
        if h + m == 0.0 {
            None
        } else {
            Some(h / (h + m))
        }
    };
    for (name, hits, misses) in [
        ("analysis_hit_rate", "analysis_hits", "analysis_misses"),
        ("spec_hit_rate", "spec_hits", "spec_misses"),
        ("exec_hit_rate", "exec_hits", "exec_misses"),
    ] {
        match (rate(baseline, hits, misses), rate(current, hits, misses)) {
            (Some(b), Some(c)) => {
                let drop = b - c;
                if drop > rate_tolerance {
                    report.fail(format!(
                        "{name}: {b:.3} → {c:.3} (dropped {drop:.3}, tolerance {rate_tolerance:.3})"
                    ));
                } else {
                    report.pass(format!("{name}: {b:.3} → {c:.3}"));
                }
            }
            (None, _) => report.pass(format!("{name}: unused in baseline, skipped")),
            (Some(b), None) => report.fail(format!("{name}: {b:.3} → cache unused in current")),
        }
    }

    // Decisions are deterministic at a fixed scale: exact match, any drift
    // is a behaviour change the walls can't see.
    match (baseline.get("decisions"), current.get("decisions")) {
        (Some(b), Some(c)) if b == c => report.pass("decisions: identical".to_string()),
        (Some(_), Some(_)) => {
            report.fail("decisions: totals drifted (optimizer behaviour changed)".to_string())
        }
        _ => report.fail("decisions: missing in a snapshot".to_string()),
    }
    report
}

/// The `fdi-profile --json` (v1) comparison.
fn diff_profile(baseline: &Json, current: &Json, wins_drop: i64) -> Result<DiffReport, String> {
    let mut report = DiffReport::new();
    fn rows<'a>(doc: &'a Json, who: &str) -> Result<&'a [Json], String> {
        doc.get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or(format!("{who} snapshot has no \"benchmarks\" array"))
    }
    let (b_rows, c_rows) = (rows(baseline, "baseline")?, rows(current, "current")?);
    let name = |row: &Json| row.get("name").and_then(Json::as_str).map(str::to_string);
    let b_names: Vec<_> = b_rows.iter().filter_map(name).collect();
    let c_names: Vec<_> = c_rows.iter().filter_map(name).collect();
    if b_names != c_names {
        return Err(
            "benchmark sets differ — snapshots are only comparable like-for-like".to_string(),
        );
    }

    let wins = |rows: &[Json]| -> i64 {
        rows.iter()
            .filter(|r| r.get("guided_win") == Some(&Json::Bool(true)))
            .count() as i64
    };
    let (bw, cw) = (wins(b_rows), wins(c_rows));
    if bw - cw > wins_drop {
        report.fail(format!(
            "guided wins: {bw} → {cw} of {} (allowed drop {wins_drop})",
            b_names.len()
        ));
    } else {
        report.pass(format!("guided wins: {bw} → {cw} of {}", b_names.len()));
    }

    // Inlining itself is deterministic: per-benchmark site counts must hold
    // exactly for both the static and the guided run.
    for (b_row, c_row) in b_rows.iter().zip(c_rows) {
        let bench = name(b_row).unwrap_or_default();
        for mode in ["static", "guided"] {
            let sites = |row: &Json| {
                row.get(mode)
                    .and_then(|m| m.get("sites_inlined"))
                    .and_then(Json::as_num)
            };
            match (sites(b_row), sites(c_row)) {
                (Some(b), Some(c)) if b == c => {
                    report.pass(format!("{bench}/{mode}: sites_inlined {b}"))
                }
                (Some(b), Some(c)) => report.fail(format!(
                    "{bench}/{mode}: sites_inlined {b} → {c} (deterministic count drifted)"
                )),
                _ => report.fail(format!("{bench}/{mode}: sites_inlined missing")),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(inline_ms: f64, spec_hits: u64, inlined: u64) -> Json {
        sweep_at("test", inline_ms, spec_hits, inlined)
    }

    fn sweep_at(scale: &str, inline_ms: f64, spec_hits: u64, inlined: u64) -> Json {
        json::parse(&format!(
            r#"{{"v":2,"scale":"{scale}","jobs":4,"rows_agree":true,
                "sequential_ms":1800.0,"cold_ms":1700.0,"warm_ms":500.0,
                "inline_pass_ms":{inline_ms},
                "warm_new_analyses":0,"warm_new_parses":0,
                "decisions":{{"inlined":{inlined},"loop_guard":4}},
                "stats":{{"analysis_hits":88,"analysis_misses":8,
                          "spec_hits":{spec_hits},"spec_misses":900,
                          "exec_hits":55,"exec_misses":41}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_sweeps_pass() {
        let a = sweep(2300.0, 5000, 9000);
        let r = diff(&a, &a, 50.0, 0.05, 1).unwrap();
        assert_eq!(r.regressions, 0, "{:?}", r.lines);
        assert!(r.checks >= 10);
    }

    #[test]
    fn wall_regression_past_tolerance_fails() {
        let r = diff(
            &sweep(2300.0, 5000, 9000),
            &sweep(4000.0, 5000, 9000),
            50.0,
            0.05,
            1,
        )
        .unwrap();
        assert_eq!(r.regressions, 1, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.contains("inline_pass_ms")));
        // The same degradation passes under a looser gate.
        let loose = diff(
            &sweep(2300.0, 5000, 9000),
            &sweep(3000.0, 5000, 9000),
            50.0,
            0.05,
            1,
        )
        .unwrap();
        assert_eq!(loose.regressions, 0, "{:?}", loose.lines);
    }

    #[test]
    fn hit_rate_collapse_fails() {
        let r = diff(
            &sweep(2300.0, 5000, 9000),
            &sweep(2300.0, 0, 9000),
            50.0,
            0.05,
            1,
        )
        .unwrap();
        assert_eq!(r.regressions, 1, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.contains("spec_hit_rate")));
    }

    #[test]
    fn decision_drift_fails() {
        let r = diff(
            &sweep(2300.0, 5000, 9000),
            &sweep(2300.0, 5000, 9001),
            50.0,
            0.05,
            1,
        )
        .unwrap();
        assert_eq!(r.regressions, 1, "{:?}", r.lines);
        assert!(r.lines.iter().any(|l| l.contains("decisions")));
    }

    #[test]
    fn schema_and_scale_mismatches_are_usage_errors_not_regressions() {
        let a = sweep(2300.0, 5000, 9000);
        let other_scale = sweep_at("small", 2300.0, 5000, 9000);
        assert!(diff(&a, &other_scale, 50.0, 0.05, 1).is_err());
        let v1 = json::parse(r#"{"v":1,"benchmarks":[]}"#).unwrap();
        assert!(diff(&a, &v1, 50.0, 0.05, 1).is_err());
    }

    fn profile(wins: [bool; 3], lattice_guided_sites: u64) -> Json {
        let row = |name: &str, win: bool, gsites: u64| {
            format!(
                r#"{{"name":"{name}","guided_win":{win},
                    "static":{{"sites_inlined":36}},
                    "guided":{{"sites_inlined":{gsites}}}}}"#
            )
        };
        json::parse(&format!(
            r#"{{"v":1,"scale":"test","benchmarks":[{},{},{}]}}"#,
            row("lattice", wins[0], lattice_guided_sites),
            row("boyer", wins[1], 45),
            row("graphs", wins[2], 45),
        ))
        .unwrap()
    }

    #[test]
    fn profile_win_drop_within_allowance_passes_past_it_fails() {
        let base = profile([true, true, true], 45);
        let one_flip = profile([true, true, false], 45);
        let two_flips = profile([true, false, false], 45);
        assert_eq!(
            diff(&base, &one_flip, 50.0, 0.05, 1).unwrap().regressions,
            0
        );
        assert_eq!(
            diff(&base, &two_flips, 50.0, 0.05, 1).unwrap().regressions,
            1
        );
    }

    #[test]
    fn profile_site_count_drift_fails() {
        let base = profile([true, true, true], 45);
        let drifted = profile([true, true, true], 46);
        let r = diff(&base, &drifted, 50.0, 0.05, 1).unwrap();
        assert_eq!(r.regressions, 1, "{:?}", r.lines);
    }
}
