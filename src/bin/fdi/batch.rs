//! `fdi batch` — run a manifest of jobs on the concurrent engine and emit
//! one JSON report.

use crate::opts::{parse_policy, parse_schedule, usage};
use crate::report::{health_json, json_escape, passes_json, write_chrome_trace};
use fdi_core::{FaultPlan, OracleConfig, PipelineConfig, Telemetry};
use fdi_telemetry::{DecisionTotals, RingSink};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Applies one manifest line's per-job flags to `config` (also the flag
/// grammar of serve-mode job requests).
pub fn apply_job_flags(config: &mut PipelineConfig, tokens: &[&str]) -> Result<(), String> {
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        tokens
            .get(*i)
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < tokens.len() {
        match tokens[i] {
            "-t" | "--threshold" => {
                config.threshold = next(&mut i, "-t")?
                    .parse()
                    .map_err(|e| format!("-t: {e}"))?;
            }
            "--unroll" => {
                config.unroll = next(&mut i, "--unroll")?
                    .parse()
                    .map_err(|e| format!("--unroll: {e}"))?;
            }
            "--clref" => config.mode = fdi_core::InlineMode::ClRef,
            "--policy" => {
                let spec = next(&mut i, "--policy")?;
                config.policy =
                    parse_policy(&spec).ok_or_else(|| format!("unknown policy {spec:?}"))?;
            }
            "--passes" => {
                let spec = next(&mut i, "--passes")?;
                config.schedule =
                    fdi_core::Schedule::parse(&spec).map_err(|e| format!("--passes: {e}"))?;
            }
            "--fuel" => {
                let fuel = next(&mut i, "--fuel")?
                    .parse()
                    .map_err(|e| format!("--fuel: {e}"))?;
                config.budget = config.budget.with_fuel(fuel);
            }
            "--deadline-ms" => {
                let ms: u64 = next(&mut i, "--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                config.budget = config.budget.with_deadline(Duration::from_millis(ms));
            }
            "--max-growth" => {
                let x = next(&mut i, "--max-growth")?
                    .parse()
                    .map_err(|e| format!("--max-growth: {e}"))?;
                config.budget = config.budget.with_max_growth(x);
            }
            "--size-budget" => {
                let b = next(&mut i, "--size-budget")?
                    .parse()
                    .map_err(|e| format!("--size-budget: {e}"))?;
                config.size_budget = Some(b);
            }
            "--validate" => config.oracle = OracleConfig::on(),
            "--oracle-fuel" => {
                config.oracle.fuel = next(&mut i, "--oracle-fuel")?
                    .parse()
                    .map_err(|e| format!("--oracle-fuel: {e}"))?;
            }
            "--faults" => {
                let seed = next(&mut i, "--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
                config.faults = FaultPlan::new(seed);
            }
            flag => return Err(format!("unknown job flag {flag:?}")),
        }
        i += 1;
    }
    Ok(())
}

/// Resolves a manifest source spec: `bench:<name>[@<scale>]` or a file path.
pub fn resolve_source(spec: &str) -> Result<String, String> {
    if let Some(bench) = spec.strip_prefix("bench:") {
        let (name, scale) = match bench.split_once('@') {
            Some((n, s)) => {
                let scale: u32 = s.parse().map_err(|e| format!("{spec}: bad scale: {e}"))?;
                (n, Some(scale))
            }
            None => (bench, None),
        };
        let b = fdi_benchsuite::by_name(name)
            .ok_or_else(|| format!("{spec}: no benchmark named {name:?}"))?;
        Ok(b.scaled(scale.unwrap_or(b.default_scale)))
    } else {
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))
    }
}

/// Loads a `--profile` artifact into the engine-wide form: the staleness
/// key, the content fingerprint for cache keys, and the benefit guide.
/// Per-job staleness is the *engine's* judgment — a batch mixes sources,
/// and only jobs whose source matches the profile run guided.
pub fn load_engine_profile(path: &str) -> Result<fdi_engine::EngineProfile, String> {
    let profile = fdi_profile::Profile::load(std::path::Path::new(path))
        .map_err(|e| format!("--profile {path}: {e}"))?;
    Ok(fdi_engine::EngineProfile {
        source_fp: profile.source_fp,
        fingerprint: profile.fingerprint(),
        guide: Arc::new(profile.guide()),
    })
}

/// `fdi batch <manifest> [--jobs N] [--out FILE] [--trace-out FILE]
/// [--passes SCHEDULE] [--profile FILE] [--size-budget N] [--cache-bytes N]
/// [--validate] [--oracle-fuel N] [--faults SEED] [--engine-faults SEED]`.
pub fn main(mut args: Vec<String>) -> ExitCode {
    let mut jobs = None;
    let mut out_file = None;
    let mut trace_out = None;
    let mut profile_path: Option<String> = None;
    let mut cache_bytes: Option<usize> = None;
    let mut default_config = PipelineConfig::default();
    let mut engine_faults = FaultPlan::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                jobs = Some(n);
                args.drain(i..=i + 1);
            }
            "--cache-bytes" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cache_bytes = Some(n);
                args.drain(i..=i + 1);
            }
            "--out" => {
                let Some(f) = args.get(i + 1) else {
                    return usage();
                };
                out_file = Some(f.clone());
                args.drain(i..=i + 1);
            }
            "--trace-out" => {
                let Some(f) = args.get(i + 1) else {
                    return usage();
                };
                trace_out = Some(f.clone());
                args.drain(i..=i + 1);
            }
            "--passes" => {
                let Some(schedule) = args.get(i + 1).and_then(|s| parse_schedule(s)) else {
                    return usage();
                };
                default_config.schedule = schedule;
                args.drain(i..=i + 1);
            }
            "--validate" => {
                default_config.oracle = OracleConfig::on();
                args.remove(i);
            }
            "--oracle-fuel" => {
                let Some(fuel) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                default_config.oracle.fuel = fuel;
                args.drain(i..=i + 1);
            }
            "--faults" => {
                let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                default_config.faults = FaultPlan::new(seed);
                args.drain(i..=i + 1);
            }
            "--engine-faults" => {
                let Some(seed) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                engine_faults = FaultPlan::new(seed);
                args.drain(i..=i + 1);
            }
            "--profile" => {
                let Some(f) = args.get(i + 1) else {
                    return usage();
                };
                profile_path = Some(f.clone());
                args.drain(i..=i + 1);
            }
            "--size-budget" => {
                let Some(b) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                default_config.size_budget = Some(b);
                args.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    let Some(manifest_path) = args.first() else {
        return usage();
    };
    let manifest = match std::fs::read_to_string(manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("fdi: cannot read {manifest_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse the manifest into (spec, config, source?) jobs. Source
    // resolution failures become per-job errors in the report, not a
    // manifest rejection — one bad path must not kill the batch.
    struct Line {
        spec: String,
        config: PipelineConfig,
        source: Result<String, String>,
    }
    let mut lines = Vec::new();
    for (lineno, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let spec = tokens[0].to_string();
        let mut config = default_config;
        if let Err(e) = apply_job_flags(&mut config, &tokens[1..]) {
            eprintln!("fdi: {manifest_path}:{}: {e}", lineno + 1);
            return ExitCode::FAILURE;
        }
        let source = resolve_source(&spec);
        lines.push(Line {
            spec,
            config,
            source,
        });
    }

    // Under `--trace-out`, every engine worker emits into one shared ring;
    // workers land on separate trace tracks via their thread ids.
    let (telemetry, sink) = match &trace_out {
        Some(_) => {
            let sink = Arc::new(RingSink::default());
            (Telemetry::with_collector(sink.clone()), Some(sink))
        }
        None => (Telemetry::off(), None),
    };
    let engine_profile = match &profile_path {
        None => None,
        Some(path) => match load_engine_profile(path) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("fdi: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let engine = fdi_engine::Engine::with_telemetry(
        fdi_engine::EngineConfig {
            faults: engine_faults,
            profile: engine_profile,
            cache_bytes,
            ..match jobs {
                Some(n) => fdi_engine::EngineConfig::with_workers(n),
                None => fdi_engine::EngineConfig::default(),
            }
        },
        &telemetry,
    );
    let handles: Vec<Option<fdi_engine::JobHandle>> = lines
        .iter()
        .map(|line| {
            line.source.as_ref().ok().map(|src| {
                let trace = fdi_core::trace_id(src, &line.config);
                engine.submit(fdi_engine::Job::new(src.as_str(), line.config).with_trace(trace))
            })
        })
        .collect();

    let mut entries = Vec::new();
    let mut failures = 0u32;
    for (line, handle) in lines.iter().zip(handles) {
        // The same deterministic trace id `fdi serve` answers with for this
        // (source, config) — the join key across batch reports, daemon
        // responses, and flight-recorder entries. Unresolvable sources have
        // no job, hence no id.
        let trace = line
            .source
            .as_deref()
            .ok()
            .map(|src| format!("\"{}\"", fdi_core::trace_id_hex(src, &line.config)))
            .unwrap_or_else(|| "null".to_string());
        let head = format!(
            "{{\"spec\":\"{}\",\"trace_id\":{},\"threshold\":{}",
            json_escape(&line.spec),
            trace,
            line.config.threshold
        );
        let entry = match handle.map(|h| h.wait()) {
            None => {
                failures += 1;
                format!(
                    "{head},\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(line.source.as_ref().unwrap_err())
                )
            }
            Some(Err(e)) => {
                failures += 1;
                format!(
                    "{head},\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(&e.to_string())
                )
            }
            Some(Ok(out)) => format!(
                concat!(
                    "{},\"ok\":true,\"degraded\":{},\"oracle_rejected\":{},",
                    "\"size_ratio\":{:.6},",
                    "\"baseline_size\":{},\"optimized_size\":{},\"sites_inlined\":{},",
                    "\"decisions\":{},",
                    "\"analysis_ms\":{:.3},\"fuel_used\":{},\"passes\":{},\"health\":{}}}"
                ),
                head,
                out.health.degraded(),
                out.health.oracle_rejected(),
                out.size_ratio(),
                out.baseline_size,
                out.optimized_size,
                out.report.sites_inlined,
                DecisionTotals::tally(&out.decisions).to_json(),
                out.flow_stats.duration.as_secs_f64() * 1e3,
                out.fuel_used,
                passes_json(&out.passes),
                health_json(&out.health),
            ),
        };
        entries.push(entry);
    }
    // The poison list: jobs the supervisor quarantined after exhausting
    // their retries. Map each back to its manifest spec by source text.
    let poisoned: Vec<String> = engine
        .poisoned()
        .iter()
        .map(|p| {
            let spec = lines
                .iter()
                .find(|l| l.source.as_deref().ok() == Some(&*p.source))
                .map(|l| l.spec.as_str())
                .unwrap_or("<unknown>");
            format!(
                "{{\"spec\":\"{}\",\"threshold\":{},\"attempts\":{},\"error\":\"{}\"}}",
                json_escape(spec),
                p.threshold,
                p.attempts,
                json_escape(&p.error.to_string())
            )
        })
        .collect();
    let report = format!(
        "{{\"jobs\":[{}],\"poisoned\":[{}],\"stats\":{}}}\n",
        entries.join(","),
        poisoned.join(","),
        engine.stats().to_json()
    );
    print!("{report}");
    if let (Some(path), Some(sink)) = (&trace_out, &sink) {
        write_chrome_trace(path, &sink.drain());
    }
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("fdi: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures > 0 {
        eprintln!("fdi: {failures} job(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
