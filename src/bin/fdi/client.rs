//! `fdi client` — a retrying JSON-lines client for `fdi serve`.
//!
//! ```text
//! fdi client (--port N | --port-file FILE) [--retries N] [--retry-seed S]
//!            ping | stats | health | flight | shutdown
//! fdi client (--port N | --port-file FILE) [--retries N] [--retry-seed S]
//!            metrics [--metrics-text]
//! fdi client (--port N | --port-file FILE) [--retries N] [--retry-seed S]
//!            job <spec> [job-flags…] [--request-deadline-ms N]
//! ```
//!
//! `metrics` fetches the daemon's live metrics registry as one JSON line;
//! with `--metrics-text` the client asks for (and prints, unwrapped) the
//! Prometheus text exposition format instead, ready to pipe to a scrape
//! file. `flight` dumps the daemon's flight recorder — the last requests
//! with their `trace_id`s and outcomes, plus notable incidents.
//!
//! `job` sends one request using the `fdi batch` per-job flag grammar
//! (`-t`, `--policy`, `--validate`, …) and prints the server's one-line
//! JSON response verbatim on stdout. `--request-deadline-ms` sets the
//! *serve-layer* deadline (typed `timeout` rejection) — distinct from the
//! `--deadline-ms` job flag, which budgets the pipeline itself. The exit
//! code mirrors the response's `"ok"`.
//!
//! ## Retries
//!
//! With `--retries N`, transient failures — a refused connection (daemon
//! restarting) or a typed `overloaded` rejection — are retried up to `N`
//! times with seeded, jittered exponential backoff
//! ([`fdi_core::jittered_backoff`]; `--retry-seed` pins the jitter for
//! reproduction). An `overloaded` response's `retry_after_ms` is the
//! first-attempt backoff hint. Every resubmission is the *same request
//! bytes*, so a retry can never ask a different question than the original.
//! Non-transient failures (`bad-request`, `failed`, `timeout`, `draining`)
//! are never retried.
//!
//! When `--request-deadline-ms` is set it also caps the retry loop's wall
//! clock: a backoff sleep that would cross the deadline is not taken — the
//! client fails fast with a typed `timeout` error instead of oversleeping.
//!
//! ## Protocol version
//!
//! Responses must carry `"proto"` equal to the client's
//! [`crate::serve::PROTO_VERSION`]; anything else (including a pre-`proto`
//! daemon) is rejected with a typed `proto-mismatch` error rather than
//! misparsed.

use crate::opts::usage;
use crate::report::json_escape;
use crate::serve::PROTO_VERSION;
use fdi_core::jittered_backoff;
use fdi_telemetry::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Ceiling for one backoff sleep; the exponential curve flattens here.
const BACKOFF_CAP_MS: u64 = 5_000;
/// Backoff hint when the failure carried none (connection refused).
const DEFAULT_HINT_MS: u64 = 100;

/// One attempt's outcome, as seen by the retry loop.
enum Attempt {
    /// A response arrived; print it verbatim. The flag is `"ok"`.
    Done(String, bool),
    /// Transient failure worth a retry, with a backoff hint in ms and a
    /// human reason (printed if retries run out).
    Transient(u64, String),
    /// Hard failure: report and stop, no retry.
    Fatal(String),
}

pub fn main(mut args: Vec<String>) -> ExitCode {
    let mut port: Option<u16> = None;
    let mut retries: u32 = 0;
    let mut retry_seed: u64 = std::process::id() as u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                let Some(p) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                port = Some(p);
                args.drain(i..=i + 1);
            }
            "--port-file" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(text) = std::fs::read_to_string(path) else {
                    eprintln!("fdi client: cannot read port file {path}");
                    return ExitCode::FAILURE;
                };
                let Ok(p) = text.trim().parse() else {
                    eprintln!("fdi client: malformed port file {path}");
                    return ExitCode::FAILURE;
                };
                port = Some(p);
                args.drain(i..=i + 1);
            }
            "--retries" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                retries = n;
                args.drain(i..=i + 1);
            }
            "--retry-seed" => {
                let Some(s) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                retry_seed = s;
                args.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    let Some(port) = port else {
        eprintln!("fdi client: need --port or --port-file");
        return ExitCode::FAILURE;
    };
    let mut deadline: Option<Duration> = None;
    let mut metrics_text = false;
    let request = match args.first().map(String::as_str) {
        Some(op @ ("ping" | "stats" | "health" | "flight" | "shutdown")) if args.len() == 1 => {
            format!("{{\"op\":\"{op}\"}}")
        }
        Some("metrics") if args.len() == 1 => "{\"op\":\"metrics\"}".to_string(),
        Some("metrics") if args.len() == 2 && args[1] == "--metrics-text" => {
            metrics_text = true;
            "{\"op\":\"metrics\",\"format\":\"text\"}".to_string()
        }
        Some("job") => {
            let mut deadline_ms: Option<u64> = None;
            let mut rest: Vec<String> = args.split_off(1);
            let mut i = 0;
            while i < rest.len() {
                if rest[i] == "--request-deadline-ms" {
                    let Some(ms) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                        return usage();
                    };
                    deadline_ms = Some(ms);
                    rest.drain(i..=i + 1);
                } else {
                    i += 1;
                }
            }
            let Some(spec) = rest.first() else {
                return usage();
            };
            let flags: Vec<String> = rest[1..]
                .iter()
                .map(|f| format!("\"{}\"", json_escape(f)))
                .collect();
            deadline = deadline_ms.map(Duration::from_millis);
            let deadline_field = deadline_ms
                .map(|ms| format!(",\"deadline_ms\":{ms}"))
                .unwrap_or_default();
            format!(
                "{{\"op\":\"job\",\"spec\":\"{}\",\"flags\":[{}]{}}}",
                json_escape(spec),
                flags.join(","),
                deadline_field
            )
        }
        _ => return usage(),
    };

    // The retry loop. `request` is built exactly once above — every attempt
    // writes the same bytes, so retries are provably identical resubmissions.
    let started = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        let (hint_ms, reason) = match try_once(port, &request) {
            Attempt::Done(response, ok) => {
                // --metrics-text: unwrap the exposition payload so stdout is
                // the scrapeable text itself, not a JSON envelope.
                let unwrapped = ok
                    .then(|| {
                        if !metrics_text {
                            return None;
                        }
                        json::parse(response.trim())
                            .ok()?
                            .get("text")
                            .and_then(Json::as_str)
                            .map(str::to_string)
                    })
                    .flatten();
                match unwrapped {
                    Some(text) => print!("{text}"),
                    None => print!("{response}"),
                }
                return if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            Attempt::Fatal(message) => {
                eprintln!("fdi client: {message}");
                return ExitCode::FAILURE;
            }
            Attempt::Transient(hint_ms, reason) => (hint_ms, reason),
        };
        if attempt >= retries {
            eprintln!("fdi client: {reason} (after {attempt} retries)");
            return ExitCode::FAILURE;
        }
        let sleep = Duration::from_millis(jittered_backoff(
            retry_seed,
            attempt,
            hint_ms,
            BACKOFF_CAP_MS,
        ));
        // Deadline cap: never sleep past --request-deadline-ms. Failing fast
        // here beats waking up with no budget left to ask the question.
        if let Some(deadline) = deadline {
            if started.elapsed() + sleep >= deadline {
                eprintln!(
                    "fdi client: timeout: next backoff ({} ms) would cross the \
                     {} ms request deadline; giving up after {attempt} retries",
                    sleep.as_millis(),
                    deadline.as_millis()
                );
                return ExitCode::FAILURE;
            }
        }
        std::thread::sleep(sleep);
        attempt += 1;
    }
}

/// One connect–send–receive round trip.
fn try_once(port: u16, request: &str) -> Attempt {
    let mut stream = match TcpStream::connect(("127.0.0.1", port)) {
        Ok(s) => s,
        Err(e) => {
            return Attempt::Transient(
                DEFAULT_HINT_MS,
                format!("cannot connect to 127.0.0.1:{port}: {e}"),
            )
        }
    };
    if writeln!(stream, "{request}")
        .and_then(|()| stream.flush())
        .is_err()
    {
        return Attempt::Transient(DEFAULT_HINT_MS, "connection lost while sending".to_string());
    }
    let mut response = String::new();
    match BufReader::new(&stream).read_line(&mut response) {
        Ok(n) if n > 0 => {}
        _ => {
            return Attempt::Transient(
                DEFAULT_HINT_MS,
                "server closed the connection without replying".to_string(),
            )
        }
    }
    let Ok(doc) = json::parse(response.trim()) else {
        return Attempt::Fatal(format!(
            "proto-mismatch: unparseable response: {}",
            response.trim()
        ));
    };
    // Version gate before any field is trusted: a daemon speaking another
    // protocol gets a typed rejection, not a misreading.
    match doc.get("proto").map(|p| p.as_num()) {
        Some(Some(v)) if v == PROTO_VERSION as f64 => {}
        got => {
            return Attempt::Fatal(format!(
                "proto-mismatch: client speaks proto {PROTO_VERSION}, server sent {}",
                match got {
                    Some(Some(v)) => format!("proto {v}"),
                    _ => "no proto field".to_string(),
                }
            ))
        }
    }
    if doc.get("ok") == Some(&Json::Bool(true)) {
        return Attempt::Done(response, true);
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some("overloaded") => {
            let hint = match doc.get("retry_after_ms").map(|h| h.as_num()) {
                Some(Some(ms)) if ms >= 0.0 => ms as u64,
                _ => DEFAULT_HINT_MS,
            };
            Attempt::Transient(hint, "server overloaded".to_string())
        }
        _ => Attempt::Done(response, false),
    }
}
