//! `fdi client` — a thin JSON-lines client for `fdi serve`.
//!
//! ```text
//! fdi client (--port N | --port-file FILE) ping
//! fdi client (--port N | --port-file FILE) stats
//! fdi client (--port N | --port-file FILE) shutdown
//! fdi client (--port N | --port-file FILE) job <spec> [job-flags…]
//!            [--request-deadline-ms N]
//! ```
//!
//! `job` sends one request using the `fdi batch` per-job flag grammar
//! (`-t`, `--policy`, `--validate`, …) and prints the server's one-line
//! JSON response verbatim on stdout. `--request-deadline-ms` sets the
//! *serve-layer* deadline (typed `timeout` rejection) — distinct from the
//! `--deadline-ms` job flag, which budgets the pipeline itself. The exit
//! code mirrors the response's `"ok"`.

use crate::opts::usage;
use crate::report::json_escape;
use fdi_telemetry::json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

pub fn main(mut args: Vec<String>) -> ExitCode {
    let mut port: Option<u16> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                let Some(p) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                port = Some(p);
                args.drain(i..=i + 1);
            }
            "--port-file" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(text) = std::fs::read_to_string(path) else {
                    eprintln!("fdi client: cannot read port file {path}");
                    return ExitCode::FAILURE;
                };
                let Ok(p) = text.trim().parse() else {
                    eprintln!("fdi client: malformed port file {path}");
                    return ExitCode::FAILURE;
                };
                port = Some(p);
                args.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    let Some(port) = port else {
        eprintln!("fdi client: need --port or --port-file");
        return ExitCode::FAILURE;
    };
    let request = match args.first().map(String::as_str) {
        Some(op @ ("ping" | "stats" | "shutdown")) if args.len() == 1 => {
            format!("{{\"op\":\"{op}\"}}")
        }
        Some("job") => {
            let mut deadline_ms: Option<u64> = None;
            let mut rest: Vec<String> = args.split_off(1);
            let mut i = 0;
            while i < rest.len() {
                if rest[i] == "--request-deadline-ms" {
                    let Some(ms) = rest.get(i + 1).and_then(|s| s.parse().ok()) else {
                        return usage();
                    };
                    deadline_ms = Some(ms);
                    rest.drain(i..=i + 1);
                } else {
                    i += 1;
                }
            }
            let Some(spec) = rest.first() else {
                return usage();
            };
            let flags: Vec<String> = rest[1..]
                .iter()
                .map(|f| format!("\"{}\"", json_escape(f)))
                .collect();
            let deadline = deadline_ms
                .map(|ms| format!(",\"deadline_ms\":{ms}"))
                .unwrap_or_default();
            format!(
                "{{\"op\":\"job\",\"spec\":\"{}\",\"flags\":[{}]{}}}",
                json_escape(spec),
                flags.join(","),
                deadline
            )
        }
        _ => return usage(),
    };

    let mut stream = match TcpStream::connect(("127.0.0.1", port)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fdi client: cannot connect to 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if writeln!(stream, "{request}")
        .and_then(|()| stream.flush())
        .is_err()
    {
        eprintln!("fdi client: connection lost while sending");
        return ExitCode::FAILURE;
    }
    let mut response = String::new();
    match BufReader::new(&stream).read_line(&mut response) {
        Ok(n) if n > 0 => {}
        _ => {
            eprintln!("fdi client: server closed the connection without replying");
            return ExitCode::FAILURE;
        }
    }
    print!("{response}");
    match json::parse(response.trim()) {
        Ok(doc) if doc.get("ok") == Some(&json::Json::Bool(true)) => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}
