//! Meta-crate for the Flow-directed Inlining reproduction.
//!
//! Re-exports the pipeline API from [`fdi_core`] and the component crates.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced tables and figures.

pub use fdi_benchsuite as benchsuite;
pub use fdi_cfa as cfa;
pub use fdi_core as core;
pub use fdi_inline as inline;
pub use fdi_lang as lang;
pub use fdi_sexpr as sexpr;
pub use fdi_simplify as simplify;
pub use fdi_vm as vm;
