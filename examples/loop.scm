;;; A letrec-bound loop. The loop map marks `go`'s self-call, so the
;;; inliner's loop guard suppresses unfolding it (unless `--unroll N`
;;; grants a budget), while the outer driver call still inlines.
;;;
;;;   fdi explain examples/loop.scm
;;;   fdi explain examples/loop.scm --unroll 2

(define (sum-to n)
  (letrec ((go (lambda (i acc)
                 (if (> i n) acc (go (+ i 1) (+ acc i))))))
    (go 1 0)))
(sum-to 10)
