//! Quickstart: run the flow-directed inlining pipeline on a small program
//! and inspect what happened.
//!
//! Run with: `cargo run --example quickstart`

use fdi_core::{optimize, PipelineConfig, RunConfig};

fn main() {
    // Both procedures are used twice, so a syntactic (single-use) inliner
    // cannot touch them; flow-directed inlining specializes each call site.
    let src = "
        (define (square n) (* n n))
        (define (cube n) (* n (* n n)))
        (define (sum-to n f)
          (letrec ((go (lambda (i acc)
                         (if (> i n) acc (go (+ i 1) (+ acc (f i)))))))
            (go 1 0)))
        (+ (sum-to 1000 square) (sum-to 1000 cube)
           (sum-to 10 square) (sum-to 10 cube))";

    println!("source:\n{src}\n");

    let out = optimize(src, &PipelineConfig::with_threshold(300)).expect("pipeline");

    println!("optimized (threshold 300):");
    println!(
        "{}\n",
        fdi_sexpr::pretty(&fdi_lang::unparse(&out.optimized))
    );

    println!(
        "inliner: {} sites inlined, {} branches pruned, {} loops tied",
        out.report.sites_inlined, out.report.branches_pruned, out.report.loops_tied
    );
    println!(
        "size: {} -> {} (ratio {:.2})",
        out.baseline_size,
        out.optimized_size,
        out.size_ratio()
    );

    let cfg = RunConfig::default();
    let before = fdi_vm::run(&out.baseline, &cfg).expect("baseline runs");
    let after = fdi_vm::run(&out.optimized, &cfg).expect("optimized runs");
    assert_eq!(before.value, after.value, "behaviour preserved");
    println!(
        "result {} — calls {} -> {}, mutator cost {} -> {}",
        after.value,
        before.counters.calls,
        after.counters.calls,
        before.counters.mutator,
        after.counters.mutator
    );
}
