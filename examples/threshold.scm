;;; A callee whose specialized body is moderately large. At a generous
;;; threshold it inlines; tighten `-t` and the same site reports
;;; threshold-exceeded with the measured size and the limit it tripped.
;;;
;;;   fdi explain examples/threshold.scm
;;;   fdi explain examples/threshold.scm -t 5

(define (poly x)
  (+ (* x (* x (* x x)))
     (+ (* 3 (* x x))
        (+ (* 7 x) 11))))
(poly 2)
