;;; Higher-order dispatch. `apply-to-five` is called with two different
;;; lambdas, so the abstract value set at its call site `(f 5)` holds two
;;; closures — Condition 1 (unique closure) fails under a monovariant
;;; analysis and the site is rejected as non-unique. Polyvariant analysis
;;; splits the contours and recovers both inlines.
;;;
;;;   fdi explain examples/compose.scm --policy 0cfa
;;;   fdi explain examples/compose.scm --policy poly

(define (apply-to-five f) (f 5))
(define (double x) (+ x x))
(define (triple x) (+ x (+ x x)))
(+ (apply-to-five double) (apply-to-five triple))
