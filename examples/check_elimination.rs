//! The §6 combination: flow-directed inlining makes run-time check
//! elimination stronger, because specialization replaces merged argument
//! types with per-call-site precise ones.
//!
//! Run with: `cargo run --example check_elimination`

use fdi_core::{optimize, PipelineConfig, RunConfig};
use fdi_vm::CostModel;

fn main() {
    // `norm` is used on numbers in one place and on pairs in another; the
    // union type defeats check elimination on the original program, but
    // after inlining each copy is monomorphic.
    let src = "
        (define (norm x)
          (if (pair? x)
              (+ (* (car x) (car x)) (* (cdr x) (cdr x)))
              (* x x)))
        (define (sum-norms n acc)
          (if (zero? n)
              acc
              (sum-norms (- n 1)
                         (+ acc (norm n) (norm (cons n n))))))
        (sum-norms 1000 0)";

    let out = optimize(src, &PipelineConfig::with_threshold(400)).expect("pipeline");

    // Safe execution model: every primitive argument pays a tag check
    // unless the analysis proves it redundant.
    let cfg = RunConfig {
        model: CostModel {
            type_check_cost: 2,
            ..CostModel::default()
        },
        ..RunConfig::default()
    };

    let measure = |program: &fdi_core::Program, eliminate: bool| {
        let safe = eliminate.then(|| {
            let flow = fdi_cfa::analyze(program, fdi_core::Polyvariance::PolymorphicSplitting);
            fdi_checks::eliminate_checks(program, &flow)
        });
        let r =
            fdi_vm::run_with_checks(program, &cfg, safe.as_ref().map(|e| &e.safe)).expect("runs");
        (r.counters.total(&cfg.model), r.counters.checks, r.value)
    };

    let (t0, c0, v0) = measure(&out.baseline, false);
    let (t1, c1, v1) = measure(&out.baseline, true);
    let (t2, c2, v2) = measure(&out.optimized, true);
    assert_eq!(v0, v1);
    assert_eq!(v0, v2);

    println!("value: {v0}");
    println!("safe, no optimization  : total {t0:>8}, {c0} dynamic tag checks");
    println!(
        "check elimination only : total {t1:>8}, {c1} dynamic tag checks ({:.0}% removed)",
        100.0 * (c0 - c1) as f64 / c0 as f64
    );
    println!(
        "inlining + elimination : total {t2:>8}, {c2} dynamic tag checks ({:.0}% removed)",
        100.0 * (c0 - c2) as f64 / c0 as f64
    );
    assert!(c2 <= c1, "inlining must not lose check precision");
}
