//! The paper's §2.1 object-oriented example: a "network" object is a
//! closure dispatching on message symbols. Flow-directed inlining tracks
//! the dispatcher through the `case`, so `((N 'open) addr)` inlines the
//! open-branch method — a virtual-dispatch devirtualization.
//!
//! Run with: `cargo run --example object_dispatch`

use fdi_core::{optimize, PipelineConfig, RunConfig};

fn main() {
    let src = "
        (define (make-network)
          (lambda (msg)
            (case msg
              ((open)    (lambda (addr) (cons 'opened addr)))
              ((close)   (lambda (port) (cons 'closed port)))
              ((send)    (lambda (m port) (cons 'sent (cons m port))))
              ((receive) (lambda (port) (cons 'received port)))
              (else (error \"unknown message\" msg)))))
        ;; Each network instance is used for one operation, so polymorphic
        ;; splitting keeps the message symbol precise per instance.
        (define opener (make-network))
        (define sender (make-network))
        (cons ((opener 'open) 8080)
              ((sender 'send) 'hello 8080))";

    println!("source:\n{src}\n");
    let out = optimize(src, &PipelineConfig::with_threshold(500)).expect("pipeline");
    let printed = fdi_sexpr::pretty(&fdi_lang::unparse(&out.optimized));
    println!("optimized:\n{printed}\n");

    assert!(
        out.report.sites_inlined >= 2,
        "both method dispatches should inline: {:?}",
        out.report
    );
    assert!(
        out.report.branches_pruned >= 2,
        "the case dispatch should prune: {:?}",
        out.report
    );
    assert!(
        !printed.contains("unknown message"),
        "dead dispatch arms (and the error call) should vanish"
    );

    let r = fdi_vm::run(&out.optimized, &RunConfig::default()).expect("runs");
    println!("value: {}", r.value);
    assert_eq!(r.value, "((opened . 8080) sent hello . 8080)");
}
