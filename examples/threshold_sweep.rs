//! Sweep the inline threshold over one benchmark and watch Table 1 / Fig. 6
//! form: code size grows slowly with the threshold while execution time
//! drops and then flattens.
//!
//! Run with: `cargo run --release --example threshold_sweep [benchmark] [scale]`

use fdi_core::{sweep, PipelineConfig, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("splay");
    let bench = fdi_benchsuite::by_name(name).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark '{name}'; have: {}",
            fdi_benchsuite::BENCHMARKS
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    });
    let scale: u32 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(bench.test_scale);

    println!("benchmark: {} (scale {scale})", bench.name);
    println!("{}", bench.description);
    println!();

    let rows = sweep(
        &bench.scaled(scale),
        &[50, 100, 200, 500, 1000],
        &PipelineConfig::default(),
        &RunConfig::default(),
    )
    .expect("sweep");

    println!(
        "{:>9} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "threshold", "size", "total", "mutator", "collector", "inlined"
    );
    for r in &rows {
        println!(
            "{:>9} {:>9.2} {:>8.3} {:>9.3} {:>9.3} {:>8}",
            r.threshold,
            r.size_ratio,
            r.norm_total,
            r.norm_mutator,
            r.norm_collector,
            r.report.sites_inlined
        );
    }
    println!();
    println!("value at every threshold: {}", rows[0].value);
}
