;;; The paper's running example shape: a small procedure with one call
;;; site. The flow analysis proves a unique closure flows to the operator,
;;; the specialized body fits the threshold, and the site inlines.
;;;
;;;   fdi explain examples/sq.scm

(define (sq x) (* x x))
(sq 7)
