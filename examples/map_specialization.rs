//! The paper's worked example (Figs. 1–3): inlining `(map car m)`.
//!
//! `map` (Fig. 1) dispatches on whether it got extra list arguments: `map1`
//! handles the unary case, `map*` the variable-arity case through the
//! expensive `apply`. Flow analysis determines that at this call site
//! `(null? args)` is exactly `{true}`, so the inliner specializes `map` to a
//! copy with the `map*` path pruned (Fig. 2), and local simplification
//! collapses the result to a direct `map1` loop over `car` (Fig. 3).
//!
//! Run with: `cargo run --example map_specialization`

use fdi_core::{optimize, PipelineConfig, RunConfig};

fn main() {
    // The prelude's `map` is the paper's own Fig. 1 implementation.
    let src = "
        (define m '((1 2) (3 4) (5 6)))
        (map car m)";

    println!("source (map is the paper's Fig. 1 implementation):\n{src}\n");

    let out = optimize(src, &PipelineConfig::with_threshold(500)).expect("pipeline");
    let printed = fdi_sexpr::pretty(&fdi_lang::unparse(&out.optimized));

    println!("after inlining + simplification (cf. the paper's Fig. 3):");
    println!("{printed}\n");

    assert!(
        out.report.sites_inlined >= 1,
        "map must inline: {:?}",
        out.report
    );
    assert!(
        out.report.branches_pruned >= 1,
        "the (null? args) conditional must prune: {:?}",
        out.report
    );
    assert!(
        !printed.contains("apply"),
        "the variable-arity map* path must be pruned"
    );

    let result = fdi_vm::run(&out.optimized, &RunConfig::default()).expect("runs");
    println!("value: {}", result.value);
    assert_eq!(result.value, "(1 3 5)");

    let before = fdi_vm::run(&out.baseline, &RunConfig::default()).expect("baseline");
    println!(
        "calls: {} -> {}; mutator cost {} -> {}",
        before.counters.calls,
        result.counters.calls,
        before.counters.mutator,
        result.counters.mutator
    );
}
