//! The CEK-style abstract machine.
//!
//! Tail calls consume no continuation space, so Scheme loops run in constant
//! control stack. Environments are per-activation frame chains behind `Rc`
//! (reclaimed when dead); pairs, vectors, closures, and strings live in
//! append-only heaps whose allocation volume feeds the simulated collector
//! cost (see [`crate::CostModel`]).

use crate::cost::{CostModel, Counters};
use crate::resolve::{resolve, Code, LambdaCode, Resolved, VarRef};
use crate::value::{ClosId, PairId, StrId, Value, VecId};
use fdi_lang::{Const, Label, Program, Sym};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Machine steps before aborting with "out of fuel".
    pub fuel: u64,
    /// Seed of the deterministic `random` primitive.
    pub seed: u64,
    /// Cost model.
    pub model: CostModel,
    /// Cap on bytes written by `display`/`write`.
    pub max_output: usize,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            fuel: 2_000_000_000,
            seed: 0x5eed_cafe,
            model: CostModel::default(),
            max_output: 1 << 20,
        }
    }
}

/// A successful run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// `write`-style rendering of the final value.
    pub value: String,
    /// Cost counters.
    pub counters: Counters,
    /// Text written by `display`/`write`/`newline`.
    pub output: String,
}

/// A failed run.
#[derive(Debug, Clone)]
pub struct VmError {
    /// What went wrong.
    pub message: String,
    /// Counters at the time of the error.
    pub counters: Counters,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for VmError {}

/// Resolves and runs `program`.
///
/// # Errors
///
/// Returns [`VmError`] for Scheme run-time errors (type errors, arity
/// mismatches, `(error …)`) and for fuel exhaustion.
///
/// # Examples
///
/// ```
/// let p = fdi_lang::parse_and_lower("(+ 1 2)").unwrap();
/// let out = fdi_vm::run(&p, &fdi_vm::RunConfig::default()).unwrap();
/// assert_eq!(out.value, "3");
/// ```
pub fn run(program: &Program, config: &RunConfig) -> Result<Outcome, VmError> {
    run_with_checks(program, config, None)
}

/// Like [`run`], with a set of `(primitive label, argument index)` tag
/// checks proven redundant by check elimination (`fdi-checks`); those
/// positions are exempt from the [`CostModel::type_check_cost`] charge.
pub fn run_with_checks(
    program: &Program,
    config: &RunConfig,
    safe_checks: Option<&HashSet<(Label, usize)>>,
) -> Result<Outcome, VmError> {
    let resolved = resolve(program);
    let mut m = Machine::new(program, &resolved, config);
    m.safe_checks = safe_checks;
    m.run()
}

/// One call site's dynamic execution totals, as gathered by [`run_profiled`].
///
/// `cost` is the mutator cost the machine charged to calls entered from this
/// site: `calls × (call_overhead + call_per_arg × argc)`, plus the
/// per-element spread cost at `apply` sites — exactly the per-call overhead
/// inlining the site would eliminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCost {
    /// The call expression's label in the executed program.
    pub site: Label,
    /// Dynamic calls entered from this site.
    pub calls: u64,
    /// Total mutator cost charged to those calls.
    pub cost: u64,
}

/// Like [`run`], additionally attributing dynamic call counts and per-call
/// mutator cost to each call site's [`Label`] — the profiler's data source.
///
/// The returned sites are sorted by label, so the output is deterministic.
/// Per-site `calls`/`cost` always sum to the run's [`Counters::calls`] and
/// its call-overhead share of [`Counters::mutator`].
///
/// # Errors
///
/// Exactly [`run`]'s contract; a failed run yields no profile.
pub fn run_profiled(
    program: &Program,
    config: &RunConfig,
) -> Result<(Outcome, Vec<SiteCost>), VmError> {
    let resolved = resolve(program);
    let mut m = Machine::new(program, &resolved, config);
    m.sites = Some(HashMap::new());
    let outcome = m.run()?;
    let mut sites: Vec<SiteCost> = m
        .sites
        .take()
        .expect("profiling map installed above")
        .into_iter()
        .map(|(site, (calls, cost))| SiteCost { site, calls, cost })
        .collect();
    sites.sort_unstable_by_key(|s| s.site);
    Ok((outcome, sites))
}

#[derive(Clone)]
pub(crate) struct Env(Option<Rc<Frame>>);

pub(crate) struct Frame {
    values: Box<[Cell<Value>]>,
    parent: Env,
}

impl Env {
    const EMPTY: Env = Env(None);

    fn push(&self, values: Vec<Value>) -> Env {
        Env(Some(Rc::new(Frame {
            values: values.into_iter().map(Cell::new).collect(),
            parent: self.clone(),
        })))
    }

    fn get(&self, depth: u16, slot: u16) -> Value {
        let mut frame = self.0.as_ref().expect("env deep enough");
        for _ in 0..depth {
            frame = frame.parent.0.as_ref().expect("env deep enough");
        }
        frame.values[slot as usize].get()
    }

    fn set(&self, depth: u16, slot: u16, v: Value) {
        let mut frame = self.0.as_ref().expect("env deep enough");
        for _ in 0..depth {
            frame = frame.parent.0.as_ref().expect("env deep enough");
        }
        frame.values[slot as usize].set(v);
    }
}

pub(crate) struct ClosureData {
    pub(crate) lambda: Label,
    pub(crate) captures: Box<[Cell<Value>]>,
}

enum Kont {
    Call {
        label: Label,
        next: usize,
        vals: Vec<Value>,
        env: Env,
        clo: Option<ClosId>,
    },
    Prim {
        label: Label,
        next: usize,
        vals: Vec<Value>,
        env: Env,
        clo: Option<ClosId>,
    },
    ApplyFun {
        label: Label,
        env: Env,
        clo: Option<ClosId>,
    },
    ApplyArg {
        label: Label,
        f: Value,
    },
    Begin {
        label: Label,
        next: usize,
        env: Env,
        clo: Option<ClosId>,
    },
    If {
        label: Label,
        env: Env,
        clo: Option<ClosId>,
    },
    Let {
        label: Label,
        next: usize,
        vals: Vec<Value>,
        env: Env,
        clo: Option<ClosId>,
    },
    ClRefK {
        index: u32,
    },
}

pub(crate) struct Machine<'p> {
    pub(crate) program: &'p Program,
    pub(crate) safe_checks: Option<&'p HashSet<(Label, usize)>>,
    res: &'p Resolved,
    pub(crate) pairs: Vec<(Cell<Value>, Cell<Value>)>,
    pub(crate) vectors: Vec<Vec<Cell<Value>>>,
    pub(crate) closures: Vec<ClosureData>,
    pub(crate) strings: Vec<String>,
    str_of_sym: HashMap<Sym, StrId>,
    pub(crate) counters: Counters,
    pub(crate) model: CostModel,
    fuel: u64,
    pub(crate) rng: u64,
    pub(crate) output: String,
    pub(crate) max_output: usize,
    /// Per-call-site `(calls, cost)` attribution; `Some` only under
    /// [`run_profiled`].
    sites: Option<HashMap<Label, (u64, u64)>>,
}

impl<'p> Machine<'p> {
    pub(crate) fn new(program: &'p Program, res: &'p Resolved, config: &RunConfig) -> Machine<'p> {
        Machine {
            program,
            safe_checks: None,
            res,
            pairs: Vec::new(),
            vectors: Vec::new(),
            closures: Vec::new(),
            strings: Vec::new(),
            str_of_sym: HashMap::new(),
            counters: Counters::default(),
            model: config.model,
            fuel: config.fuel,
            rng: config.seed,
            output: String::new(),
            max_output: config.max_output,
            sites: None,
        }
    }

    pub(crate) fn error<T>(&self, message: impl Into<String>) -> Result<T, VmError> {
        Err(VmError {
            message: message.into(),
            counters: self.counters,
        })
    }

    // --- heap ---------------------------------------------------------------

    pub(crate) fn alloc_pair(&mut self, car: Value, cdr: Value) -> Value {
        self.counters.words_allocated += self.model.pair_words;
        self.counters.pairs_made += 1;
        self.pairs.push((Cell::new(car), Cell::new(cdr)));
        Value::Pair(PairId((self.pairs.len() - 1) as u32))
    }

    pub(crate) fn alloc_vector(&mut self, elems: Vec<Value>) -> Value {
        self.counters.words_allocated += self.model.vector_base_words + elems.len() as u64;
        self.vectors
            .push(elems.into_iter().map(Cell::new).collect());
        Value::Vector(VecId((self.vectors.len() - 1) as u32))
    }

    pub(crate) fn alloc_string(&mut self, s: String) -> Value {
        self.counters.words_allocated += 1 + (s.len() as u64).div_ceil(8);
        self.strings.push(s);
        Value::Str(StrId((self.strings.len() - 1) as u32))
    }

    fn alloc_closure(&mut self, lambda: Label, captures: Vec<Value>) -> Value {
        self.counters.words_allocated += self.model.closure_base_words + captures.len() as u64;
        self.counters.closures_made += 1;
        self.closures.push(ClosureData {
            lambda,
            captures: captures.into_iter().map(Cell::new).collect(),
        });
        Value::Closure(ClosId((self.closures.len() - 1) as u32))
    }

    pub(crate) fn str_value(&mut self, sym: Sym) -> Value {
        if let Some(&id) = self.str_of_sym.get(&sym) {
            return Value::Str(id);
        }
        let s = self.program.interner().name(sym).to_string();
        self.strings.push(s);
        let id = StrId((self.strings.len() - 1) as u32);
        self.str_of_sym.insert(sym, id);
        Value::Str(id)
    }

    fn value_of_const(&mut self, c: Const) -> Value {
        match c {
            Const::Bool(b) => Value::Bool(b),
            Const::Int(n) => Value::Int(n),
            Const::Float(bits) => Value::Float(f64::from_bits(bits)),
            Const::Char(ch) => Value::Char(ch),
            Const::Str(s) => self.str_value(s),
            Const::Symbol(s) => Value::Sym(s),
            Const::Nil => Value::Nil,
            Const::Unspecified => Value::Unspec,
        }
    }

    fn lambda_code(&self, label: Label) -> &'p LambdaCode {
        match self.res.code(label) {
            Code::Lambda(lc) => lc,
            other => panic!("expected lambda code at {label}, found {other:?}"),
        }
    }

    fn capture_values(&self, plan: &[VarRef], env: &Env, clo: Option<ClosId>) -> Vec<Value> {
        plan.iter()
            .map(|&vr| match vr {
                VarRef::Env { depth, slot } => env.get(depth, slot),
                VarRef::Capture(i) => {
                    let c = clo.expect("capture read outside closure");
                    self.closures[c.0 as usize].captures[i as usize].get()
                }
            })
            .collect()
    }

    // --- the driver loop ----------------------------------------------------

    pub(crate) fn run(&mut self) -> Result<Outcome, VmError> {
        let mut kont: Vec<Kont> = Vec::new();
        let mut env = Env::EMPTY;
        let mut clo: Option<ClosId> = None;
        let mut control: Result<Label, Value> = Ok(self.res.root());
        loop {
            if self.fuel == 0 {
                return self.error("out of fuel");
            }
            self.fuel -= 1;
            self.counters.steps += 1;
            match control {
                Ok(label) => {
                    // Evaluate the expression at `label`.
                    match self.res.code(label) {
                        Code::Const(c) => control = Err(self.value_of_const(*c)),
                        Code::Var(vr) => {
                            let v = match *vr {
                                VarRef::Env { depth, slot } => env.get(depth, slot),
                                VarRef::Capture(i) => {
                                    let c = clo.expect("capture read outside closure");
                                    self.closures[c.0 as usize].captures[i as usize].get()
                                }
                            };
                            control = Err(v);
                        }
                        Code::Prim(_, args) => {
                            if args.is_empty() {
                                let v = self.apply_prim(label, &[])?;
                                control = Err(v);
                            } else {
                                let first = args[0];
                                kont.push(Kont::Prim {
                                    label,
                                    next: 1,
                                    vals: Vec::with_capacity(args.len()),
                                    env: env.clone(),
                                    clo,
                                });
                                control = Ok(first);
                            }
                        }
                        Code::Call(parts) => {
                            let first = parts[0];
                            kont.push(Kont::Call {
                                label,
                                next: 1,
                                vals: Vec::with_capacity(parts.len()),
                                env: env.clone(),
                                clo,
                            });
                            control = Ok(first);
                        }
                        Code::Apply(f, _) => {
                            kont.push(Kont::ApplyFun {
                                label,
                                env: env.clone(),
                                clo,
                            });
                            control = Ok(*f);
                        }
                        Code::Begin(parts) => {
                            if parts.len() == 1 {
                                control = Ok(parts[0]);
                            } else {
                                let first = parts[0];
                                kont.push(Kont::Begin {
                                    label,
                                    next: 1,
                                    env: env.clone(),
                                    clo,
                                });
                                control = Ok(first);
                            }
                        }
                        Code::If(c, _, _) => {
                            kont.push(Kont::If {
                                label,
                                env: env.clone(),
                                clo,
                            });
                            control = Ok(*c);
                        }
                        Code::Let(rhs, body) => {
                            if rhs.is_empty() {
                                env = env.push(Vec::new());
                                control = Ok(*body);
                            } else {
                                let first = rhs[0];
                                kont.push(Kont::Let {
                                    label,
                                    next: 1,
                                    vals: Vec::with_capacity(rhs.len()),
                                    env: env.clone(),
                                    clo,
                                });
                                control = Ok(first);
                            }
                        }
                        Code::Letrec(lambdas, body) => {
                            self.counters.mutator +=
                                self.model.let_per_binding * lambdas.len() as u64;
                            let n = lambdas.len();
                            env = env.push(vec![Value::Unspec; n]);
                            // First pass: create closures (sibling captures
                            // may still read Unspec).
                            let mut made = Vec::with_capacity(n);
                            for (i, &f) in lambdas.iter().enumerate() {
                                let lc = self.lambda_code(f);
                                let caps = self.capture_values(&lc.capture_plan, &env, clo);
                                let v = self.alloc_closure(f, caps);
                                env.set(0, i as u16, v);
                                made.push((f, v));
                            }
                            // Second pass: backpatch captures now that every
                            // sibling closure exists.
                            for &(f, v) in &made {
                                let lc = self.lambda_code(f);
                                let caps = self.capture_values(&lc.capture_plan, &env, clo);
                                let Value::Closure(cid) = v else {
                                    unreachable!()
                                };
                                for (cell, nv) in
                                    self.closures[cid.0 as usize].captures.iter().zip(caps)
                                {
                                    cell.set(nv);
                                }
                            }
                            control = Ok(*body);
                        }
                        Code::Lambda(lc) => {
                            let caps = self.capture_values(&lc.capture_plan, &env, clo);
                            let v = self.alloc_closure(label, caps);
                            control = Err(v);
                        }
                        Code::ClRef(e, n) => {
                            kont.push(Kont::ClRefK { index: *n });
                            control = Ok(*e);
                        }
                        Code::Dead => panic!("evaluating dead code at {label}"),
                    }
                }
                Err(value) => {
                    // Return `value` to the top continuation frame.
                    let Some(frame) = kont.pop() else {
                        return Ok(Outcome {
                            value: self.render(value, true),
                            counters: self.counters,
                            output: std::mem::take(&mut self.output),
                        });
                    };
                    match frame {
                        Kont::Call {
                            label,
                            next,
                            mut vals,
                            env: senv,
                            clo: sclo,
                        } => {
                            vals.push(value);
                            let Code::Call(parts) = self.res.code(label) else {
                                unreachable!()
                            };
                            if next < parts.len() {
                                let e = parts[next];
                                env = senv.clone();
                                clo = sclo;
                                kont.push(Kont::Call {
                                    label,
                                    next: next + 1,
                                    vals,
                                    env: senv,
                                    clo: sclo,
                                });
                                control = Ok(e);
                            } else {
                                let f = vals[0];
                                let args = &vals[1..];
                                let (nenv, nclo, body) = self.enter(label, f, args, 0)?;
                                env = nenv;
                                clo = Some(nclo);
                                control = Ok(body);
                            }
                        }
                        Kont::Prim {
                            label,
                            next,
                            mut vals,
                            env: senv,
                            clo: sclo,
                        } => {
                            vals.push(value);
                            let Code::Prim(_, args) = self.res.code(label) else {
                                unreachable!()
                            };
                            if next < args.len() {
                                let e = args[next];
                                env = senv.clone();
                                clo = sclo;
                                kont.push(Kont::Prim {
                                    label,
                                    next: next + 1,
                                    vals,
                                    env: senv,
                                    clo: sclo,
                                });
                                control = Ok(e);
                            } else {
                                let v = self.apply_prim(label, &vals)?;
                                control = Err(v);
                            }
                        }
                        Kont::ApplyFun {
                            label,
                            env: senv,
                            clo: sclo,
                        } => {
                            let Code::Apply(_, arg) = self.res.code(label) else {
                                unreachable!()
                            };
                            let e = *arg;
                            env = senv;
                            clo = sclo;
                            kont.push(Kont::ApplyArg { label, f: value });
                            control = Ok(e);
                        }
                        Kont::ApplyArg { label, f } => {
                            let args = self.list_to_vec(value)?;
                            let spread = self.model.apply_per_elem * args.len() as u64;
                            let (nenv, nclo, body) = self.enter(label, f, &args, spread)?;
                            env = nenv;
                            clo = Some(nclo);
                            control = Ok(body);
                        }
                        Kont::Begin {
                            label,
                            next,
                            env: senv,
                            clo: sclo,
                        } => {
                            let Code::Begin(parts) = self.res.code(label) else {
                                unreachable!()
                            };
                            env = senv.clone();
                            clo = sclo;
                            if next == parts.len() - 1 {
                                control = Ok(parts[next]);
                            } else {
                                let e = parts[next];
                                kont.push(Kont::Begin {
                                    label,
                                    next: next + 1,
                                    env: senv,
                                    clo: sclo,
                                });
                                control = Ok(e);
                            }
                        }
                        Kont::If {
                            label,
                            env: senv,
                            clo: sclo,
                        } => {
                            self.counters.mutator += self.model.if_cost;
                            let Code::If(_, t, e) = self.res.code(label) else {
                                unreachable!()
                            };
                            env = senv;
                            clo = sclo;
                            control = Ok(if value.is_truthy() { *t } else { *e });
                        }
                        Kont::Let {
                            label,
                            next,
                            mut vals,
                            env: senv,
                            clo: sclo,
                        } => {
                            vals.push(value);
                            let Code::Let(rhs, body) = self.res.code(label) else {
                                unreachable!()
                            };
                            if next < rhs.len() {
                                let e = rhs[next];
                                env = senv.clone();
                                clo = sclo;
                                kont.push(Kont::Let {
                                    label,
                                    next: next + 1,
                                    vals,
                                    env: senv,
                                    clo: sclo,
                                });
                                control = Ok(e);
                            } else {
                                self.counters.mutator +=
                                    self.model.let_per_binding * vals.len() as u64;
                                let body = *body;
                                env = senv.push(vals);
                                clo = sclo;
                                control = Ok(body);
                            }
                        }
                        Kont::ClRefK { index } => {
                            self.counters.mutator += self.model.cl_ref_cost;
                            let Value::Closure(cid) = value else {
                                return self.error(format!(
                                    "cl-ref: expected procedure, got {}",
                                    value.type_name()
                                ));
                            };
                            let caps = &self.closures[cid.0 as usize].captures;
                            let Some(cell) = caps.get(index as usize) else {
                                return self.error("cl-ref: index out of range");
                            };
                            control = Err(cell.get());
                        }
                    }
                }
            }
        }
    }

    /// Performs a procedure call: arity check, rest-list collection, cost
    /// accounting (attributed to the call expression at `site` when
    /// profiling). Returns the callee's activation.
    fn enter(
        &mut self,
        site: Label,
        f: Value,
        args: &[Value],
        extra_cost: u64,
    ) -> Result<(Env, ClosId, Label), VmError> {
        let Value::Closure(cid) = f else {
            return self.error(format!("call: expected procedure, got {}", f.type_name()));
        };
        let lambda = self.closures[cid.0 as usize].lambda;
        let lc = self.lambda_code(lambda);
        if args.len() < lc.params || (!lc.rest && args.len() != lc.params) {
            return self.error(format!(
                "call: procedure expects {}{} arguments, got {}",
                lc.params,
                if lc.rest { "+" } else { "" },
                args.len()
            ));
        }
        let cost =
            self.model.call_overhead + self.model.call_per_arg * args.len() as u64 + extra_cost;
        self.counters.calls += 1;
        self.counters.mutator += cost;
        if let Some(sites) = self.sites.as_mut() {
            let entry = sites.entry(site).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += cost;
        }
        let mut frame: Vec<Value> = args[..lc.params].to_vec();
        if lc.rest {
            let mut rest = Value::Nil;
            for &v in args[lc.params..].iter().rev() {
                rest = self.alloc_pair(v, rest);
            }
            frame.push(rest);
        }
        Ok((Env::EMPTY.push(frame), cid, lc.body))
    }

    /// The primitive operator at a `Prim` code label.
    pub(crate) fn prim_op(&self, label: Label) -> fdi_lang::PrimOp {
        match self.res.code(label) {
            Code::Prim(p, _) => *p,
            other => panic!("expected prim at {label}, found {other:?}"),
        }
    }

    /// Spreads a list value into a vector (for `apply`).
    pub(crate) fn list_to_vec(&self, mut v: Value) -> Result<Vec<Value>, VmError> {
        let mut out = Vec::new();
        loop {
            match v {
                Value::Nil => return Ok(out),
                Value::Pair(p) => {
                    let (car, cdr) = &self.pairs[p.0 as usize];
                    out.push(car.get());
                    v = cdr.get();
                }
                other => {
                    return self.error(format!(
                        "apply: expected a proper list, got {}",
                        other.type_name()
                    ))
                }
            }
            if out.len() > 1_000_000 {
                return self.error("apply: argument list too long (or cyclic)");
            }
        }
    }
}
