//! Additional machine-level tests: closure representation, environment
//! behaviour, primitive edge cases, and check accounting.

use crate::{run, run_with_checks, CostModel, RunConfig};
use fdi_lang::parse_and_lower;
use std::collections::HashSet;

fn eval(src: &str) -> String {
    let p = parse_and_lower(src).unwrap();
    run(&p, &RunConfig::default()).unwrap().value
}

fn eval_err(src: &str) -> String {
    let p = parse_and_lower(src).unwrap();
    run(&p, &RunConfig::default()).unwrap_err().message
}

// --- closures and environments -------------------------------------------

#[test]
fn letrec_closures_see_their_siblings_through_captures() {
    // The closures escape the letrec, so mutual references go through the
    // backpatched capture records, not the letrec frame.
    let src = "
        (define (make)
          (letrec ((even2? (lambda (n) (if (zero? n) #t (odd2? (- n 1)))))
                   (odd2? (lambda (n) (if (zero? n) #f (even2? (- n 1))))))
            (cons even2? odd2?)))
        (let ((pair (make)))
          (cons ((car pair) 10) ((cdr pair) 10)))";
    assert_eq!(eval(src), "(#t . #f)");
}

#[test]
fn self_recursive_escaping_closure() {
    let src = "
        (define (mk) (letrec ((f (lambda (n) (if (zero? n) 'done (f (- n 1)))))) f))
        ((mk) 100)";
    assert_eq!(eval(src), "done");
}

#[test]
fn closures_capture_values_not_locations() {
    // Flat closures copy values at creation; later rebinding of the source
    // frame (impossible in the language — no set! — but shadowing is) does
    // not affect the capture.
    let src = "
        (let ((x 1))
          (let ((f (lambda () x)))
            (let ((x 2))
              (cons (f) x))))";
    assert_eq!(eval(src), "(1 . 2)");
}

#[test]
fn deep_non_tail_recursion_uses_heap_continuations() {
    // 100k non-tail frames: fine on the machine's Vec continuation.
    let src = "
        (define (sum n) (if (zero? n) 0 (+ n (sum (- n 1)))))
        (sum 100000)";
    assert_eq!(eval(src), "5000050000");
}

#[test]
fn shadowing_across_let_depths() {
    let src = "(let ((x 1)) (cons (let ((x 2)) (let ((x 3)) x)) x))";
    assert_eq!(eval(src), "(3 . 1)");
}

#[test]
fn variadic_rest_is_fresh_per_call() {
    let src = "
        (define (grab . xs) xs)
        (let ((a (grab 1 2)) (b (grab 3)))
          (begin (set-car! a 9) (cons a b)))";
    assert_eq!(eval(src), "((9 2) 3)");
}

// --- primitive edge cases --------------------------------------------------

#[test]
fn numeric_edges() {
    assert_eq!(eval("(min 1.5 2)"), "1.5");
    assert_eq!(eval("(max 1 2.5)"), "2.5");
    assert_eq!(eval("(quotient -7 2)"), "-3");
    assert_eq!(eval("(remainder -7 2)"), "-1");
    assert_eq!(eval("(modulo -7 -2)"), "-1");
    assert_eq!(
        eval("(atan 1.0 1.0)"),
        format!("{}", std::f64::consts::FRAC_PI_4)
    );
    assert_eq!(eval("(expt 2.0 0.5)"), format!("{}", 2f64.powf(0.5)));
    assert_eq!(eval("(round 2.5)"), "2.0");
    assert_eq!(eval("(round 3.5)"), "4.0");
    assert_eq!(eval("(gcd 0 5)"), "5");
    assert!(eval_err("(expt 10 30)").contains("overflow"));
    // Above the checked-exponent range, expt falls back to floats (R4RS
    // permits inexact results for large exponents).
    assert_eq!(eval("(expt 2 63)"), format!("{}", 2f64.powi(63)));
    assert!(eval_err("(+ 9223372036854775807 1)").contains("overflow"));
}

#[test]
fn division_semantics() {
    assert_eq!(eval("(/ 8 2 2)"), "2");
    assert_eq!(eval("(/ 7 2)"), "3.5");
    assert_eq!(eval("(/ 2.0)"), "0.5");
    assert!(eval_err("(/ 1 0)").contains("zero"));
}

#[test]
fn string_edges() {
    assert!(eval_err("(substring \"abc\" 2 1)").contains("range"));
    assert!(eval_err("(string-ref \"abc\" 9)").contains("range"));
    assert_eq!(eval("(string<? \"abc\" \"abd\")"), "#t");
    assert_eq!(eval("(string-append)"), "\"\"");
    assert_eq!(eval("(substring \"hello\" 0 0)"), "\"\"");
}

#[test]
fn char_edges() {
    assert!(eval_err("(integer->char -1)").contains("code point"));
    assert_eq!(eval("(integer->char 955)"), "#\\λ");
    assert_eq!(eval("(char=? #\\a #\\a)"), "#t");
}

#[test]
fn apply_edge_cases() {
    assert_eq!(eval("(apply (lambda () 7) '())"), "7");
    assert!(eval_err("(apply (lambda (x) x) 5)").contains("proper list"));
    assert!(eval_err("(apply (lambda (x) x) '(1 . 2))").contains("proper list"));
    assert_eq!(
        eval("(apply (lambda (a . r) (cons a r)) '(1 2 3))"),
        "(1 2 3)"
    );
}

#[test]
fn inexact_exact_conversions() {
    assert!(eval_err("(inexact->exact 2.5)").contains("representable"));
    assert_eq!(eval("(exact->inexact 3)"), "3.0");
    assert_eq!(eval("(integer? 2.0)"), "#t");
    assert_eq!(eval("(integer? 2.5)"), "#f");
    assert_eq!(eval("(number? 2.5)"), "#t");
}

#[test]
fn equality_on_floats_and_vectors() {
    assert_eq!(eval("(eqv? 1.5 1.5)"), "#t");
    assert_eq!(eval("(eqv? 1 1.0)"), "#f");
    assert_eq!(
        eval("(equal? (vector (cons 1 2)) (vector (cons 1 2)))"),
        "#t"
    );
    assert_eq!(eval("(let ((v (vector 1))) (eq? v v))"), "#t");
    assert_eq!(eval("(eq? (vector 1) (vector 1))"), "#f");
}

#[test]
fn render_improper_and_nested() {
    assert_eq!(eval("(cons 1 (cons 2 3))"), "(1 2 . 3)");
    assert_eq!(eval("(cons '() '())"), "(())");
    assert_eq!(eval("(vector (vector))"), "#(#())");
}

// --- check accounting --------------------------------------------------------

#[test]
fn checks_counted_and_charged() {
    let p = parse_and_lower("(+ 1 (car (cons 2 '())))").unwrap();
    let cfg = RunConfig {
        model: CostModel {
            type_check_cost: 5,
            ..CostModel::default()
        },
        ..RunConfig::default()
    };
    let unchecked_model = RunConfig::default();
    let plain = run(&p, &unchecked_model).unwrap();
    assert!(plain.counters.checks > 0, "checks counted even at cost 0");
    let safe = run(&p, &cfg).unwrap();
    assert_eq!(safe.counters.checks, plain.counters.checks);
    assert_eq!(
        safe.counters.mutator,
        plain.counters.mutator + 5 * plain.counters.checks
    );
}

#[test]
fn safe_set_exempts_positions() {
    let p = parse_and_lower("(car (cons 1 2))").unwrap();
    let cfg = RunConfig {
        model: CostModel {
            type_check_cost: 7,
            ..CostModel::default()
        },
        ..RunConfig::default()
    };
    // Find the car label.
    let car_label = p
        .labels()
        .find(|&l| {
            matches!(
                p.expr(l),
                fdi_lang::ExprKind::Prim(fdi_lang::PrimOp::Car, _)
            )
        })
        .unwrap();
    let mut safe = HashSet::new();
    safe.insert((car_label, 0usize));
    let with = run_with_checks(&p, &cfg, Some(&safe)).unwrap();
    let without = run_with_checks(&p, &cfg, None).unwrap();
    assert_eq!(without.counters.checks, with.counters.checks + 1);
    assert_eq!(without.counters.mutator, with.counters.mutator + 7);
}

#[test]
fn variadic_prims_check_each_argument() {
    let p = parse_and_lower("(+ 1 2 3 4)").unwrap();
    let out = run(&p, &RunConfig::default()).unwrap();
    assert_eq!(out.counters.checks, 4);
}

// --- determinism and cost stability ----------------------------------------

#[test]
fn identical_runs_have_identical_counters() {
    let p = parse_and_lower(
        "(define (go n acc) (if (zero? n) acc (go (- n 1) (cons (random 10) acc))))
         (go 100 '())",
    )
    .unwrap();
    let a = run(&p, &RunConfig::default()).unwrap();
    let b = run(&p, &RunConfig::default()).unwrap();
    assert_eq!(a.value, b.value);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn seed_changes_random_stream() {
    let p = parse_and_lower("(cons (random 1000000) (random 1000000))").unwrap();
    let a = run(&p, &RunConfig::default()).unwrap();
    let b = run(
        &p,
        &RunConfig {
            seed: 12345,
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_ne!(a.value, b.value);
}

#[test]
fn output_cap_truncates() {
    let p = parse_and_lower(
        "(define (spam n) (if (zero? n) 'done (begin (display \"xxxxxxxxxx\") (spam (- n 1)))))
         (spam 100)",
    )
    .unwrap();
    let cfg = RunConfig {
        max_output: 55,
        ..RunConfig::default()
    };
    let out = run(&p, &cfg).unwrap();
    assert!(out.output.len() <= 55);
}
