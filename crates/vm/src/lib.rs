//! Execution substrate: a flat-closure abstract machine with a cost model.
//!
//! The paper evaluates inlined programs under Chez Scheme 5.0a on a MIPS
//! R4400, reporting execution time split into mutator and collector time
//! (Fig. 6). That substrate is not available, so this crate provides a
//! deterministic stand-in: a CEK-style machine over resolved code
//! ([`resolve`]) that charges unit costs per operation (procedure-call
//! overhead, primitive, binding, branch) and words per allocation, with
//! collector time proportional to allocation volume ([`CostModel`]).
//!
//! Inlining + simplification turn closure calls into `let` bindings and
//! prune branches; the machine's counters make that visible exactly the way
//! Fig. 6 does — mutator time falls, collector time moves only when closure
//! allocation changes.
//!
//! # Examples
//!
//! ```
//! use fdi_vm::{run, RunConfig};
//!
//! let p = fdi_lang::parse_and_lower(
//!     "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)",
//! ).unwrap();
//! let out = run(&p, &RunConfig::default()).unwrap();
//! assert_eq!(out.value, "3628800");
//! assert_eq!(out.counters.calls, 11);
//! ```

mod cost;
mod machine;
mod prims;
mod resolve;
mod value;

pub use cost::{CostModel, Counters};
pub use machine::{run, run_profiled, run_with_checks, Outcome, RunConfig, SiteCost, VmError};
pub use resolve::{resolve, Code, LambdaCode, Resolved, VarRef};
pub use value::{ClosId, PairId, StrId, Value, VecId};

#[cfg(test)]
mod more_tests;

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_lang::parse_and_lower;

    fn eval(src: &str) -> String {
        let p = parse_and_lower(src).unwrap();
        run(&p, &RunConfig::default()).unwrap().value
    }

    fn eval_out(src: &str) -> Outcome {
        let p = parse_and_lower(src).unwrap();
        run(&p, &RunConfig::default()).unwrap()
    }

    fn eval_err(src: &str) -> VmError {
        let p = parse_and_lower(src).unwrap();
        run(&p, &RunConfig::default()).unwrap_err()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("(+ 1 2 3)"), "6");
        assert_eq!(eval("(- 10 4 1)"), "5");
        assert_eq!(eval("(- 7)"), "-7");
        assert_eq!(eval("(* 2 3 4)"), "24");
        assert_eq!(eval("(/ 12 4)"), "3");
        assert_eq!(eval("(/ 1 2)"), "0.5");
        assert_eq!(eval("(quotient 7 2)"), "3");
        assert_eq!(eval("(remainder 7 -2)"), "1");
        assert_eq!(eval("(modulo 7 -2)"), "-1");
        assert_eq!(eval("(modulo -7 2)"), "1");
        assert_eq!(eval("(expt 2 10)"), "1024");
        assert_eq!(eval("(max 1 5 3)"), "5");
        assert_eq!(eval("(min 1 5 3)"), "1");
        assert_eq!(eval("(abs -9)"), "9");
        assert_eq!(eval("(gcd 12 18)"), "6");
    }

    #[test]
    fn floats_and_rounding() {
        assert_eq!(eval("(+ 1.5 2)"), "3.5");
        assert_eq!(eval("(sqrt 9.0)"), "3.0");
        assert_eq!(eval("(floor 2.7)"), "2.0");
        assert_eq!(eval("(ceiling 2.2)"), "3.0");
        assert_eq!(eval("(truncate -2.7)"), "-2.0");
        assert_eq!(eval("(exact->inexact 2)"), "2.0");
        assert_eq!(eval("(inexact->exact 2.0)"), "2");
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("(< 1 2 3)"), "#t");
        assert_eq!(eval("(< 1 3 2)"), "#f");
        assert_eq!(eval("(= 2 2 2)"), "#t");
        assert_eq!(eval("(>= 3 3 1)"), "#t");
        assert_eq!(eval("(zero? 0)"), "#t");
        assert_eq!(eval("(even? 4)"), "#t");
        assert_eq!(eval("(odd? 4)"), "#f");
    }

    #[test]
    fn pairs_and_mutation() {
        assert_eq!(eval("(car (cons 1 2))"), "1");
        assert_eq!(eval("(cdr (cons 1 2))"), "2");
        assert_eq!(
            eval("(let ((p (cons 1 2))) (begin (set-car! p 9) (car p)))"),
            "9"
        );
        assert_eq!(
            eval("(let ((p (cons 1 2))) (begin (set-cdr! p 9) (cdr p)))"),
            "9"
        );
        assert_eq!(eval("'(1 2 3)"), "(1 2 3)");
        assert_eq!(eval("'(1 . 2)"), "(1 . 2)");
    }

    #[test]
    fn vectors() {
        assert_eq!(eval("(vector-ref (vector 'a 'b) 1)"), "b");
        assert_eq!(eval("(vector-length (make-vector 5 0))"), "5");
        assert_eq!(
            eval("(let ((v (make-vector 3 0))) (begin (vector-set! v 1 9) (vector-ref v 1)))"),
            "9"
        );
        assert_eq!(eval("(vector 1 2)"), "#(1 2)");
    }

    #[test]
    fn strings_chars_symbols() {
        assert_eq!(eval("(string-length \"hello\")"), "5");
        assert_eq!(eval("(string-append \"a\" \"b\" \"c\")"), "\"abc\"");
        assert_eq!(eval("(substring \"hello\" 1 3)"), "\"el\"");
        assert_eq!(eval("(string=? \"x\" \"x\")"), "#t");
        assert_eq!(eval("(symbol->string 'foo)"), "\"foo\"");
        assert_eq!(eval("(string->symbol \"foo\")"), "foo");
        assert_eq!(eval("(char->integer #\\a)"), "97");
        assert_eq!(eval("(integer->char 98)"), "#\\b");
        assert_eq!(eval("(char<? #\\a #\\b)"), "#t");
        assert_eq!(eval("(number->string 42)"), "\"42\"");
    }

    #[test]
    fn equality() {
        assert_eq!(eval("(eq? 'a 'a)"), "#t");
        assert_eq!(eval("(eqv? 1 1)"), "#t");
        assert_eq!(eval("(eq? (cons 1 2) (cons 1 2))"), "#f");
        assert_eq!(eval("(let ((p (cons 1 2))) (eq? p p))"), "#t");
        assert_eq!(eval("(equal? '(1 (2 3)) '(1 (2 3)))"), "#t");
        assert_eq!(eval("(equal? '(1 2) '(1 3))"), "#f");
        assert_eq!(eval("(equal? \"ab\" \"ab\")"), "#t");
        assert_eq!(eval("(equal? (vector 1 2) (vector 1 2))"), "#t");
    }

    #[test]
    fn closures_and_capture() {
        assert_eq!(eval("((lambda (x) x) 41)"), "41");
        assert_eq!(
            eval("(define (adder n) (lambda (x) (+ x n))) ((adder 10) 5)"),
            "15"
        );
        // Flat-closure capture of a capture.
        assert_eq!(
            eval("(define (f a) (lambda () (lambda () a))) (((f 7)))"),
            "7"
        );
    }

    #[test]
    fn letrec_mutual_recursion() {
        assert_eq!(
            eval(
                "(letrec ((even2? (lambda (n) (if (zero? n) #t (odd2? (- n 1)))))
                          (odd2? (lambda (n) (if (zero? n) #f (even2? (- n 1))))))
                   (even2? 101))"
            ),
            "#f"
        );
    }

    #[test]
    fn deep_tail_recursion_is_constant_stack() {
        // One million tail calls — would overflow any recursive evaluator.
        assert_eq!(
            eval(
                "(letrec ((loop (lambda (n acc) (if (zero? n) acc (loop (- n 1) (+ acc 1))))))
                   (loop 1000000 0))"
            ),
            "1000000"
        );
    }

    #[test]
    fn variadic_and_apply() {
        assert_eq!(eval("((lambda args args) 1 2 3)"), "(1 2 3)");
        assert_eq!(eval("((lambda (a . r) (cons a r)) 1 2)"), "(1 2)");
        assert_eq!(eval("(apply + '(1 2 3))"), "6");
        assert_eq!(eval("(apply + 1 2 '(3 4))"), "10");
        assert_eq!(eval("(list 1 2 3)"), "(1 2 3)");
    }

    #[test]
    fn prelude_procedures_execute() {
        assert_eq!(eval("(length '(a b c))"), "3");
        assert_eq!(eval("(append '(1 2) '(3) '(4 5))"), "(1 2 3 4 5)");
        assert_eq!(eval("(reverse '(1 2 3))"), "(3 2 1)");
        assert_eq!(eval("(map car '((1 2) (3 4)))"), "(1 3)");
        assert_eq!(eval("(map + '(1 2) '(10 20))"), "(11 22)");
        assert_eq!(eval("(assq 'b '((a 1) (b 2)))"), "(b 2)");
        assert_eq!(eval("(memv 2 '(1 2 3))"), "(2 3)");
        assert_eq!(eval("(filter even? '(1 2 3 4))"), "(2 4)");
        assert_eq!(eval("(foldl + 0 '(1 2 3 4))"), "10");
        assert_eq!(eval("(sort '(3 1 2) <)"), "(1 2 3)");
        assert_eq!(eval("(list->vector '(1 2))"), "#(1 2)");
        assert_eq!(eval("(vector->list (vector 1 2))"), "(1 2)");
        assert_eq!(eval("(iota 4)"), "(0 1 2 3)");
    }

    #[test]
    fn cl_ref_reads_captures() {
        assert_eq!(
            eval("(let ((k 9)) (let ((f (lambda (x) k))) (cl-ref f 0)))"),
            "9"
        );
    }

    #[test]
    fn output_is_captured() {
        let out = eval_out("(begin (display \"x=\") (write \"y\") (newline) 0)");
        assert_eq!(out.output, "x=\"y\"\n");
    }

    #[test]
    fn runtime_errors() {
        assert!(eval_err("(car '())").message.contains("car"));
        assert!(eval_err("(vector-ref (vector 1) 5)")
            .message
            .contains("out of range"));
        assert!(eval_err("(+ 1 'a)").message.contains("number"));
        assert!(eval_err("((lambda (x) x) 1 2)")
            .message
            .contains("arguments"));
        assert!(eval_err("((lambda (x y) x) 1)")
            .message
            .contains("arguments"));
        assert!(eval_err("(error \"boom\" 42)").message.contains("boom"));
        assert!(eval_err("(quotient 1 0)").message.contains("zero"));
        assert!(eval_err("(1 2)").message.contains("procedure"));
    }

    #[test]
    fn fuel_exhaustion() {
        let p = parse_and_lower("(letrec ((f (lambda () (f)))) (f))").unwrap();
        let cfg = RunConfig {
            fuel: 10_000,
            ..RunConfig::default()
        };
        let err = run(&p, &cfg).unwrap_err();
        assert!(err.message.contains("fuel"));
    }

    #[test]
    fn random_is_deterministic() {
        let a = eval_out("(cons (random 100) (random 100))");
        let b = eval_out("(cons (random 100) (random 100))");
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn call_counters_track_calls() {
        let out = eval_out("(define (f x) x) (begin (f 1) (f 2) (f 3))");
        assert_eq!(out.counters.calls, 3);
        assert!(out.counters.mutator >= 3 * CostModel::default().call_overhead);
    }

    #[test]
    fn profiled_run_attributes_every_call() {
        let src = "(define (f x) x)
                   (define (g x) (f (f x)))
                   (begin (g 1) (g 2) (apply f '(3)))";
        let p = parse_and_lower(src).unwrap();
        let plain = run(&p, &RunConfig::default()).unwrap();
        let (out, sites) = run_profiled(&p, &RunConfig::default()).unwrap();
        // Profiling changes no observable behaviour or counter.
        assert_eq!(out.value, plain.value);
        assert_eq!(out.counters, plain.counters);
        // Per-site attribution is exhaustive: calls sum to the global call
        // counter and every cost is at least the fixed overhead per call.
        let m = CostModel::default();
        assert_eq!(
            sites.iter().map(|s| s.calls).sum::<u64>(),
            out.counters.calls
        );
        assert!(sites.iter().all(|s| s.cost >= s.calls * m.call_overhead));
        assert!(sites.iter().map(|s| s.cost).sum::<u64>() <= out.counters.mutator);
        // Sorted by label, no duplicates.
        assert!(sites.windows(2).all(|w| w[0].site < w[1].site));
        // g is called twice from one site; f four times across three sites.
        assert!(sites.iter().any(|s| s.calls == 2));
    }

    #[test]
    fn profiled_run_is_deterministic() {
        let src = "(define (add a b) (+ a b))
                   (letrec ((loop (lambda (n acc)
                                    (if (zero? n) acc (loop (- n 1) (add acc n))))))
                     (loop 50 0))";
        let p = parse_and_lower(src).unwrap();
        let (a, sa) = run_profiled(&p, &RunConfig::default()).unwrap();
        let (b, sb) = run_profiled(&p, &RunConfig::default()).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(sa, sb);
    }

    #[test]
    fn allocation_counters_track_words() {
        let m = CostModel::default();
        let out = eval_out("(cons 1 2)");
        assert_eq!(out.counters.pairs_made, 1);
        assert_eq!(out.counters.words_allocated, m.pair_words);
        let out2 = eval_out("(lambda (x) x)");
        assert_eq!(out2.counters.closures_made, 1);
        assert_eq!(out2.counters.words_allocated, m.closure_base_words);
        // A closure with one capture costs one more word.
        let out3 = eval_out("(let ((k 1)) (lambda (x) k))");
        assert_eq!(out3.counters.words_allocated, m.closure_base_words + 1);
    }

    #[test]
    fn collector_cost_proportional_to_allocation() {
        let m = CostModel::default();
        let out = eval_out("(cons 1 (cons 2 '()))");
        assert_eq!(
            out.counters.collector(&m),
            2 * m.pair_words * m.gc_cost_per_word
        );
    }

    #[test]
    fn inlined_program_is_cheaper_but_equal() {
        // End-to-end: inlining + simplification must preserve the value and
        // reduce mutator cost on a call-heavy program.
        let src = "(define (add a b) (+ a b))
                   (letrec ((loop (lambda (n acc)
                                    (if (zero? n) acc (loop (- n 1) (add acc n))))))
                     (loop 2000 0))";
        let p = parse_and_lower(src).unwrap();
        let before = run(&p, &RunConfig::default()).unwrap();
        let flow = fdi_cfa::analyze(&p, fdi_cfa::Polyvariance::PolymorphicSplitting);
        let (inlined, _) =
            fdi_inline::inline_program(&p, &flow, &fdi_inline::InlineConfig::with_threshold(200));
        let (simple, _) = fdi_simplify::simplify(&inlined);
        let after = run(&simple, &RunConfig::default()).unwrap();
        assert_eq!(before.value, after.value);
        assert!(
            after.counters.mutator < before.counters.mutator,
            "inlining should reduce mutator cost: {} -> {}",
            before.counters.mutator,
            after.counters.mutator
        );
        assert!(after.counters.calls < before.counters.calls);
    }

    #[test]
    fn case_and_cond_execute() {
        assert_eq!(eval("(case 2 ((1) 'one) ((2) 'two) (else 'many))"), "two");
        assert_eq!(eval("(cond ((= 1 2) 'a) ((= 1 1) 'b) (else 'c))"), "b");
        assert_eq!(eval("(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 5) s))"), "10");
    }

    #[test]
    fn quasiquote_executes() {
        assert_eq!(eval("(let ((x 2)) `(1 ,x ,@(list 3 4)))"), "(1 2 3 4)");
    }
}
