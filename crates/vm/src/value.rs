//! Runtime values of the abstract machine.

use fdi_lang::Sym;

/// Index into the machine's string heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub u32);

/// Index into the machine's pair heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairId(pub u32);

/// Index into the machine's vector heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecId(pub u32);

/// Index into the machine's closure heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClosId(pub u32);

/// A first-class value. All variants are word-sized handles, matching the
/// uniform representation of a dynamically-typed Scheme implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Exact integer.
    Int(i64),
    /// Inexact real.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Character.
    Char(char),
    /// Symbol (interned in the program's interner).
    Sym(Sym),
    /// String (heap).
    Str(StrId),
    /// The empty list.
    Nil,
    /// The unspecified value.
    Unspec,
    /// A mutable pair.
    Pair(PairId),
    /// A mutable vector.
    Vector(VecId),
    /// A flat closure.
    Closure(ClosId),
}

impl Value {
    /// Scheme truthiness: everything except `#f` is true.
    pub fn is_truthy(self) -> bool {
        self != Value::Bool(false)
    }

    /// The type name used in error messages.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Int(_) | Value::Float(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Char(_) => "char",
            Value::Sym(_) => "symbol",
            Value::Str(_) => "string",
            Value::Nil => "()",
            Value::Unspec => "unspecified",
            Value::Pair(_) => "pair",
            Value::Vector(_) => "vector",
            Value::Closure(_) => "procedure",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Nil.is_truthy());
        assert!(Value::Int(0).is_truthy());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(1).type_name(), "number");
        assert_eq!(Value::Pair(PairId(0)).type_name(), "pair");
    }
}
