//! Concrete primitive semantics for the machine.

use crate::machine::{Machine, VmError};
use crate::value::Value;
use fdi_lang::{Label, PrimOp};

macro_rules! numeric_fold {
    ($self:ident, $vals:expr, $int_op:expr, $float_op:expr) => {{
        let mut acc = $vals[0];
        for &v in &$vals[1..] {
            acc = match (acc, v) {
                (Value::Int(a), Value::Int(b)) => match $int_op(a, b) {
                    Some(n) => Value::Int(n),
                    None => return $self.error("integer overflow"),
                },
                (a, b) => {
                    let (x, y) = ($self.as_f64(a)?, $self.as_f64(b)?);
                    Value::Float($float_op(x, y))
                }
            };
        }
        Ok(acc)
    }};
}

macro_rules! numeric_cmp {
    ($self:ident, $vals:expr, $cmp:expr) => {{
        for w in $vals.windows(2) {
            let (a, b) = ($self.as_f64(w[0])?, $self.as_f64(w[1])?);
            if !$cmp(a, b) {
                return Ok(Value::Bool(false));
            }
        }
        Ok(Value::Bool(true))
    }};
}

impl Machine<'_> {
    /// Applies the primitive at `label` to `vals`, charging its cost —
    /// including one tag check per checked argument position that check
    /// elimination has not proven safe.
    pub(crate) fn apply_prim(&mut self, label: Label, vals: &[Value]) -> Result<Value, VmError> {
        let p = self.prim_op(label);
        self.counters.prims += 1;
        self.counters.mutator += self.model.prim_cost;
        let spec = p.checked_args();
        if !spec.is_empty() {
            let mut performed = 0u64;
            for &(idx, _) in spec {
                if idx == u8::MAX {
                    for pos in 0..vals.len() {
                        if self.safe_checks.is_none_or(|s| !s.contains(&(label, pos))) {
                            performed += 1;
                        }
                    }
                } else if (idx as usize) < vals.len()
                    && self
                        .safe_checks
                        .is_none_or(|s| !s.contains(&(label, idx as usize)))
                {
                    performed += 1;
                }
            }
            self.counters.checks += performed;
            self.counters.mutator += self.model.type_check_cost * performed;
        }
        self.prim(p, vals)
    }

    fn as_f64(&self, v: Value) -> Result<f64, VmError> {
        match v {
            Value::Int(n) => Ok(n as f64),
            Value::Float(x) => Ok(x),
            other => self.error(format!("expected number, got {}", other.type_name())),
        }
    }

    fn as_int(&self, v: Value, who: &str) -> Result<i64, VmError> {
        match v {
            Value::Int(n) => Ok(n),
            other => self.error(format!(
                "{who}: expected integer, got {}",
                other.type_name()
            )),
        }
    }

    fn float1(&self, vals: &[Value], f: impl Fn(f64) -> f64) -> Result<Value, VmError> {
        Ok(Value::Float(f(self.as_f64(vals[0])?)))
    }

    pub(crate) fn prim(&mut self, p: PrimOp, vals: &[Value]) -> Result<Value, VmError> {
        use PrimOp::*;
        match p {
            Cons => Ok(self.alloc_pair(vals[0], vals[1])),
            Car => match vals[0] {
                Value::Pair(id) => Ok(self.pairs[id.0 as usize].0.get()),
                other => self.error(format!("car: expected pair, got {}", other.type_name())),
            },
            Cdr => match vals[0] {
                Value::Pair(id) => Ok(self.pairs[id.0 as usize].1.get()),
                other => self.error(format!("cdr: expected pair, got {}", other.type_name())),
            },
            SetCar => match vals[0] {
                Value::Pair(id) => {
                    self.pairs[id.0 as usize].0.set(vals[1]);
                    Ok(Value::Unspec)
                }
                other => self.error(format!(
                    "set-car!: expected pair, got {}",
                    other.type_name()
                )),
            },
            SetCdr => match vals[0] {
                Value::Pair(id) => {
                    self.pairs[id.0 as usize].1.set(vals[1]);
                    Ok(Value::Unspec)
                }
                other => self.error(format!(
                    "set-cdr!: expected pair, got {}",
                    other.type_name()
                )),
            },
            MakeVector => {
                let n = self.as_int(vals[0], "make-vector")?;
                if !(0..=16_000_000).contains(&n) {
                    return self.error("make-vector: bad length");
                }
                let fill = vals.get(1).copied().unwrap_or(Value::Unspec);
                Ok(self.alloc_vector(vec![fill; n as usize]))
            }
            Vector => Ok(self.alloc_vector(vals.to_vec())),
            VectorRef => match vals[0] {
                Value::Vector(id) => {
                    let i = self.as_int(vals[1], "vector-ref")?;
                    let v = &self.vectors[id.0 as usize];
                    match usize::try_from(i).ok().and_then(|i| v.get(i)) {
                        Some(cell) => Ok(cell.get()),
                        None => self.error(format!("vector-ref: index {i} out of range")),
                    }
                }
                other => self.error(format!(
                    "vector-ref: expected vector, got {}",
                    other.type_name()
                )),
            },
            VectorSet => match vals[0] {
                Value::Vector(id) => {
                    let i = self.as_int(vals[1], "vector-set!")?;
                    let v = &self.vectors[id.0 as usize];
                    match usize::try_from(i).ok().and_then(|i| v.get(i)) {
                        Some(cell) => {
                            cell.set(vals[2]);
                            Ok(Value::Unspec)
                        }
                        None => self.error(format!("vector-set!: index {i} out of range")),
                    }
                }
                other => self.error(format!(
                    "vector-set!: expected vector, got {}",
                    other.type_name()
                )),
            },
            VectorLength => match vals[0] {
                Value::Vector(id) => Ok(Value::Int(self.vectors[id.0 as usize].len() as i64)),
                other => self.error(format!(
                    "vector-length: expected vector, got {}",
                    other.type_name()
                )),
            },
            Add => {
                if vals.is_empty() {
                    return Ok(Value::Int(0));
                }
                numeric_fold!(self, vals, |a: i64, b: i64| a.checked_add(b), |a, b| a + b)
            }
            Mul => {
                if vals.is_empty() {
                    return Ok(Value::Int(1));
                }
                numeric_fold!(self, vals, |a: i64, b: i64| a.checked_mul(b), |a, b| a * b)
            }
            Sub => {
                if vals.len() == 1 {
                    return match vals[0] {
                        Value::Int(n) => Ok(Value::Int(-n)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => {
                            self.error(format!("-: expected number, got {}", other.type_name()))
                        }
                    };
                }
                numeric_fold!(self, vals, |a: i64, b: i64| a.checked_sub(b), |a, b| a - b)
            }
            Div => {
                if vals.iter().skip(1).any(|&v| matches!(v, Value::Int(0))) {
                    return self.error("/: division by zero");
                }
                if vals.len() == 1 {
                    return Ok(Value::Float(1.0 / self.as_f64(vals[0])?));
                }
                // Exact division only when it stays integral.
                let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
                if all_int {
                    let mut acc = self.as_int(vals[0], "/")?;
                    let mut exact = true;
                    for &v in &vals[1..] {
                        let b = self.as_int(v, "/")?;
                        if acc % b != 0 {
                            exact = false;
                            break;
                        }
                        acc /= b;
                    }
                    if exact {
                        return Ok(Value::Int(acc));
                    }
                }
                let mut acc = self.as_f64(vals[0])?;
                for &v in &vals[1..] {
                    acc /= self.as_f64(v)?;
                }
                Ok(Value::Float(acc))
            }
            Quotient => {
                let (a, b) = (
                    self.as_int(vals[0], "quotient")?,
                    self.as_int(vals[1], "quotient")?,
                );
                if b == 0 {
                    return self.error("quotient: division by zero");
                }
                Ok(Value::Int(a.wrapping_div(b)))
            }
            Remainder => {
                let (a, b) = (
                    self.as_int(vals[0], "remainder")?,
                    self.as_int(vals[1], "remainder")?,
                );
                if b == 0 {
                    return self.error("remainder: division by zero");
                }
                Ok(Value::Int(a.wrapping_rem(b)))
            }
            Modulo => {
                let (a, b) = (
                    self.as_int(vals[0], "modulo")?,
                    self.as_int(vals[1], "modulo")?,
                );
                if b == 0 {
                    return self.error("modulo: division by zero");
                }
                if a == i64::MIN && b == -1 {
                    return Ok(Value::Int(0));
                }
                let m = a % b;
                Ok(Value::Int(if m != 0 && (m < 0) != (b < 0) {
                    m + b
                } else {
                    m
                }))
            }
            Abs => match vals[0] {
                Value::Int(n) => Ok(Value::Int(n.abs())),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                other => self.error(format!("abs: expected number, got {}", other.type_name())),
            },
            Min => {
                let mut acc = vals[0];
                for &v in &vals[1..] {
                    if self.as_f64(v)? < self.as_f64(acc)? {
                        acc = v;
                    }
                }
                Ok(acc)
            }
            Max => {
                let mut acc = vals[0];
                for &v in &vals[1..] {
                    if self.as_f64(v)? > self.as_f64(acc)? {
                        acc = v;
                    }
                }
                Ok(acc)
            }
            Gcd => {
                let (mut a, mut b) = (
                    self.as_int(vals[0], "gcd")?.unsigned_abs(),
                    self.as_int(vals[1], "gcd")?.unsigned_abs(),
                );
                while b != 0 {
                    (a, b) = (b, a % b);
                }
                Ok(Value::Int(a as i64))
            }
            Sqrt => self.float1(vals, f64::sqrt),
            Exp => self.float1(vals, f64::exp),
            Log => self.float1(vals, f64::ln),
            Sin => self.float1(vals, f64::sin),
            Cos => self.float1(vals, f64::cos),
            Atan => {
                if vals.len() == 2 {
                    let (y, x) = (self.as_f64(vals[0])?, self.as_f64(vals[1])?);
                    Ok(Value::Float(y.atan2(x)))
                } else {
                    self.float1(vals, f64::atan)
                }
            }
            Expt => match (vals[0], vals[1]) {
                (Value::Int(a), Value::Int(b)) if (0..=62).contains(&b) => {
                    match a.checked_pow(b as u32) {
                        Some(n) => Ok(Value::Int(n)),
                        None => self.error("expt: integer overflow"),
                    }
                }
                _ => {
                    let (a, b) = (self.as_f64(vals[0])?, self.as_f64(vals[1])?);
                    Ok(Value::Float(a.powf(b)))
                }
            },
            Floor => self.round_like(vals[0], f64::floor),
            Ceiling => self.round_like(vals[0], f64::ceil),
            Truncate => self.round_like(vals[0], f64::trunc),
            Round => self.round_like(vals[0], |x| {
                // R4RS round-to-even.
                let r = x.round();
                if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                    r - (x.signum())
                } else {
                    r
                }
            }),
            ExactToInexact => Ok(Value::Float(self.as_f64(vals[0])?)),
            InexactToExact => match vals[0] {
                Value::Int(n) => Ok(Value::Int(n)),
                Value::Float(x) if x.fract() == 0.0 && x.abs() < 9e18 => Ok(Value::Int(x as i64)),
                _ => self.error("inexact->exact: not representable"),
            },
            NumEq => numeric_cmp!(self, vals, |a, b| a == b),
            Lt => numeric_cmp!(self, vals, |a, b| a < b),
            Gt => numeric_cmp!(self, vals, |a, b| a > b),
            Le => numeric_cmp!(self, vals, |a, b| a <= b),
            Ge => numeric_cmp!(self, vals, |a, b| a >= b),
            ZeroP => Ok(Value::Bool(self.as_f64(vals[0])? == 0.0)),
            PositiveP => Ok(Value::Bool(self.as_f64(vals[0])? > 0.0)),
            NegativeP => Ok(Value::Bool(self.as_f64(vals[0])? < 0.0)),
            EvenP => Ok(Value::Bool(self.as_int(vals[0], "even?")? % 2 == 0)),
            OddP => Ok(Value::Bool(self.as_int(vals[0], "odd?")? % 2 != 0)),
            Not => Ok(Value::Bool(!vals[0].is_truthy())),
            NullP => Ok(Value::Bool(vals[0] == Value::Nil)),
            PairP => Ok(Value::Bool(matches!(vals[0], Value::Pair(_)))),
            VectorP => Ok(Value::Bool(matches!(vals[0], Value::Vector(_)))),
            NumberP => Ok(Value::Bool(matches!(
                vals[0],
                Value::Int(_) | Value::Float(_)
            ))),
            IntegerP => Ok(Value::Bool(match vals[0] {
                Value::Int(_) => true,
                Value::Float(x) => x.fract() == 0.0,
                _ => false,
            })),
            BooleanP => Ok(Value::Bool(matches!(vals[0], Value::Bool(_)))),
            SymbolP => Ok(Value::Bool(matches!(vals[0], Value::Sym(_)))),
            StringP => Ok(Value::Bool(matches!(vals[0], Value::Str(_)))),
            CharP => Ok(Value::Bool(matches!(vals[0], Value::Char(_)))),
            ProcedureP => Ok(Value::Bool(matches!(vals[0], Value::Closure(_)))),
            EqP | EqvP => Ok(Value::Bool(self.eqv(vals[0], vals[1]))),
            EqualP => Ok(Value::Bool(self.equal(vals[0], vals[1], 0)?)),
            StringLength => match vals[0] {
                Value::Str(id) => Ok(Value::Int(
                    self.strings[id.0 as usize].chars().count() as i64
                )),
                other => self.error(format!(
                    "string-length: expected string, got {}",
                    other.type_name()
                )),
            },
            StringRef => match vals[0] {
                Value::Str(id) => {
                    let i = self.as_int(vals[1], "string-ref")?;
                    match self.strings[id.0 as usize].chars().nth(i.max(0) as usize) {
                        Some(c) if i >= 0 => Ok(Value::Char(c)),
                        _ => self.error("string-ref: index out of range"),
                    }
                }
                other => self.error(format!(
                    "string-ref: expected string, got {}",
                    other.type_name()
                )),
            },
            StringAppend => {
                let mut out = String::new();
                for &v in vals {
                    match v {
                        Value::Str(id) => out.push_str(&self.strings[id.0 as usize]),
                        other => {
                            return self.error(format!(
                                "string-append: expected string, got {}",
                                other.type_name()
                            ))
                        }
                    }
                }
                Ok(self.alloc_string(out))
            }
            SubstringOp => match vals[0] {
                Value::Str(id) => {
                    let s: Vec<char> = self.strings[id.0 as usize].chars().collect();
                    let a = self.as_int(vals[1], "substring")?;
                    let b = self.as_int(vals[2], "substring")?;
                    if a < 0 || b < a || b as usize > s.len() {
                        return self.error("substring: bad range");
                    }
                    let out: String = s[a as usize..b as usize].iter().collect();
                    Ok(self.alloc_string(out))
                }
                other => self.error(format!(
                    "substring: expected string, got {}",
                    other.type_name()
                )),
            },
            StringEqP | StringLtP => match (vals[0], vals[1]) {
                (Value::Str(a), Value::Str(b)) => {
                    let (a, b) = (&self.strings[a.0 as usize], &self.strings[b.0 as usize]);
                    Ok(Value::Bool(if p == StringEqP { a == b } else { a < b }))
                }
                _ => self.error("string comparison: expected strings"),
            },
            SymbolToString => match vals[0] {
                Value::Sym(s) => Ok(self.str_value(s)),
                other => self.error(format!(
                    "symbol->string: expected symbol, got {}",
                    other.type_name()
                )),
            },
            StringToSymbol => match vals[0] {
                Value::Str(id) => {
                    let name = self.strings[id.0 as usize].clone();
                    let sym = self.intern_symbol(&name);
                    Ok(Value::Sym(sym))
                }
                other => self.error(format!(
                    "string->symbol: expected string, got {}",
                    other.type_name()
                )),
            },
            NumberToString => {
                let s = match vals[0] {
                    Value::Int(n) => n.to_string(),
                    Value::Float(x) => format_float(x),
                    other => {
                        return self.error(format!(
                            "number->string: expected number, got {}",
                            other.type_name()
                        ))
                    }
                };
                Ok(self.alloc_string(s))
            }
            CharToInteger => match vals[0] {
                Value::Char(c) => Ok(Value::Int(c as i64)),
                other => self.error(format!(
                    "char->integer: expected char, got {}",
                    other.type_name()
                )),
            },
            IntegerToChar => {
                let n = self.as_int(vals[0], "integer->char")?;
                match u32::try_from(n).ok().and_then(char::from_u32) {
                    Some(c) => Ok(Value::Char(c)),
                    None => self.error("integer->char: bad code point"),
                }
            }
            CharEqP | CharLtP => match (vals[0], vals[1]) {
                (Value::Char(a), Value::Char(b)) => {
                    Ok(Value::Bool(if p == CharEqP { a == b } else { a < b }))
                }
                _ => self.error("char comparison: expected chars"),
            },
            Display => {
                let s = self.render(vals[0], false);
                self.emit(&s);
                Ok(Value::Unspec)
            }
            Write => {
                let s = self.render(vals[0], true);
                self.emit(&s);
                Ok(Value::Unspec)
            }
            Newline => {
                self.emit("\n");
                Ok(Value::Unspec)
            }
            ErrorOp => {
                let mut msg = String::from("error:");
                for &v in vals {
                    msg.push(' ');
                    msg.push_str(&self.render(v, false));
                }
                self.error(msg)
            }
            Random => {
                let n = self.as_int(vals[0], "random")?;
                if n <= 0 {
                    return self.error("random: bound must be positive");
                }
                self.rng = self
                    .rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Ok(Value::Int(((self.rng >> 33) % n as u64) as i64))
            }
        }
    }

    fn round_like(&self, v: Value, f: impl Fn(f64) -> f64) -> Result<Value, VmError> {
        match v {
            Value::Int(n) => Ok(Value::Int(n)),
            Value::Float(x) => Ok(Value::Float(f(x))),
            other => self.error(format!("expected number, got {}", other.type_name())),
        }
    }

    fn emit(&mut self, s: &str) {
        if self.output.len() + s.len() <= self.max_output {
            self.output.push_str(s);
        }
    }

    /// `eqv?`: identity on heap objects, value equality on immediates.
    pub(crate) fn eqv(&self, a: Value, b: Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x == y,
            _ => a == b,
        }
    }

    /// `equal?`: structural, with a depth guard against cycles.
    pub(crate) fn equal(&self, a: Value, b: Value, depth: usize) -> Result<bool, VmError> {
        if depth > 10_000 {
            return self.error("equal?: structure too deep (or cyclic)");
        }
        Ok(match (a, b) {
            (Value::Pair(x), Value::Pair(y)) => {
                let (xa, xd) = (&self.pairs[x.0 as usize].0, &self.pairs[x.0 as usize].1);
                let (ya, yd) = (&self.pairs[y.0 as usize].0, &self.pairs[y.0 as usize].1);
                self.equal(xa.get(), ya.get(), depth + 1)?
                    && self.equal(xd.get(), yd.get(), depth + 1)?
            }
            (Value::Vector(x), Value::Vector(y)) => {
                let (xs, ys) = (&self.vectors[x.0 as usize], &self.vectors[y.0 as usize]);
                if xs.len() != ys.len() {
                    return Ok(false);
                }
                for (xe, ye) in xs.iter().zip(ys) {
                    if !self.equal(xe.get(), ye.get(), depth + 1)? {
                        return Ok(false);
                    }
                }
                true
            }
            (Value::Str(x), Value::Str(y)) => {
                self.strings[x.0 as usize] == self.strings[y.0 as usize]
            }
            _ => self.eqv(a, b),
        })
    }

    /// Renders a value; `write_style` quotes strings and characters.
    pub(crate) fn render(&self, v: Value, write_style: bool) -> String {
        let mut out = String::new();
        self.render_into(v, write_style, &mut out, 0);
        out
    }

    fn render_into(&self, v: Value, w: bool, out: &mut String, depth: usize) {
        if depth > 64 || out.len() > 65_536 {
            out.push_str("...");
            return;
        }
        match v {
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => out.push_str(&format_float(x)),
            Value::Bool(true) => out.push_str("#t"),
            Value::Bool(false) => out.push_str("#f"),
            Value::Char(c) if w => out.push_str(&format!("#\\{c}")),
            Value::Char(c) => out.push(c),
            Value::Sym(s) => out.push_str(self.program.interner().name(s)),
            Value::Str(id) if w => out.push_str(&format!("{:?}", self.strings[id.0 as usize])),
            Value::Str(id) => out.push_str(&self.strings[id.0 as usize]),
            Value::Nil => out.push_str("()"),
            Value::Unspec => out.push_str("#!unspecified"),
            Value::Closure(_) => out.push_str("#<procedure>"),
            Value::Vector(id) => {
                out.push_str("#(");
                for (i, e) in self.vectors[id.0 as usize].iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    if i > 256 {
                        out.push_str("...");
                        break;
                    }
                    self.render_into(e.get(), w, out, depth + 1);
                }
                out.push(')');
            }
            Value::Pair(_) => {
                out.push('(');
                let mut cur = v;
                let mut count = 0;
                loop {
                    match cur {
                        Value::Pair(id) => {
                            if count > 0 {
                                out.push(' ');
                            }
                            if count > 4096 {
                                out.push_str("...");
                                break;
                            }
                            let (car, cdr) = &self.pairs[id.0 as usize];
                            self.render_into(car.get(), w, out, depth + 1);
                            cur = cdr.get();
                            count += 1;
                        }
                        Value::Nil => break,
                        other => {
                            out.push_str(" . ");
                            self.render_into(other, w, out, depth + 1);
                            break;
                        }
                    }
                }
                out.push(')');
            }
        }
    }

    fn intern_symbol(&mut self, _name: &str) -> fdi_lang::Sym {
        // The program interner is immutable at run time; dynamic symbols get
        // a reserved bucket. string->symbol of statically-known names works;
        // novel names map to a fresh synthetic symbol.
        // (No benchmark creates novel symbols dynamically.)
        match self.program.interner().get(_name) {
            Some(s) => s,
            None => fdi_lang::Sym(u32::MAX),
        }
    }
}

fn format_float(x: f64) -> String {
    if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}
