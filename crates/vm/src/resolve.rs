//! The resolver: compiles a [`Program`] into directly-executable code with
//! flat-closure variable addressing.
//!
//! Every variable reference becomes either an environment access
//! (`frame depth` + `slot`) within the current procedure activation, or an
//! indexed read of the current closure's capture record. Capture records are
//! laid out in first-occurrence free-variable order — the same order the
//! inliner's `cl-ref` indices use (§3.5), so `(cl-ref w i)` is a real indexed
//! load.

use fdi_lang::{ExprKind, FreeVars, Label, PrimOp, Program, VarId};
use std::collections::HashMap;

/// A resolved variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRef {
    /// `slot` of the frame `depth` levels up within the current activation.
    Env {
        /// Frames to walk up.
        depth: u16,
        /// Slot within that frame.
        slot: u16,
    },
    /// Indexed read of the current closure's capture record.
    Capture(u16),
}

/// Resolved code, indexed by the same [`Label`] space as the program.
#[derive(Debug, Clone, PartialEq)]
pub enum Code {
    /// A literal constant.
    Const(fdi_lang::Const),
    /// A resolved variable reference.
    Var(VarRef),
    /// A primitive application.
    Prim(PrimOp, Vec<Label>),
    /// A procedure call.
    Call(Vec<Label>),
    /// `(apply f lst)`.
    Apply(Label, Label),
    /// A sequence.
    Begin(Vec<Label>),
    /// A conditional.
    If(Label, Label, Label),
    /// `let`: evaluate right-hand sides, push one frame.
    Let(Vec<Label>, Label),
    /// `letrec`: push a frame of closures (created with backpatching).
    Letrec(Vec<Label>, Label),
    /// Closure creation.
    Lambda(LambdaCode),
    /// `(cl-ref e n)`.
    ClRef(Label, u32),
    /// Placeholder for unreachable arena slots.
    Dead,
}

/// Compilation of one λ-expression.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaCode {
    /// Number of required parameters.
    pub params: usize,
    /// Whether a rest list is collected.
    pub rest: bool,
    /// Body label.
    pub body: Label,
    /// How to fill each capture slot at creation time, in free-variable
    /// order.
    pub capture_plan: Vec<VarRef>,
    /// Source label (diagnostics).
    pub label: Label,
}

/// A whole resolved program.
#[derive(Debug, Clone)]
pub struct Resolved {
    code: Vec<Code>,
    root: Label,
}

impl Resolved {
    /// The code at `label`.
    pub fn code(&self, label: Label) -> &Code {
        &self.code[label.0 as usize]
    }

    /// The root label.
    pub fn root(&self) -> Label {
        self.root
    }
}

/// Lexical address book during resolution: the frames of the current
/// procedure activation (innermost last).
struct Scope {
    /// Frames: each a list of variables (slot order).
    frames: Vec<Vec<VarId>>,
    /// The λ's own free variables, in capture order.
    captures: HashMap<VarId, u16>,
}

impl Scope {
    fn resolve(&self, v: VarId) -> Option<VarRef> {
        for (up, frame) in self.frames.iter().rev().enumerate() {
            if let Some(slot) = frame.iter().position(|&w| w == v) {
                return Some(VarRef::Env {
                    depth: up as u16,
                    slot: slot as u16,
                });
            }
        }
        self.captures.get(&v).map(|&i| VarRef::Capture(i))
    }
}

/// Compiles `program` to [`Resolved`] code.
///
/// # Panics
///
/// Panics on ill-formed programs (unbound variables); run
/// [`fdi_lang::validate`] first if the input is untrusted.
pub fn resolve(program: &Program) -> Resolved {
    let fv = FreeVars::compute(program);
    let mut code = vec![Code::Dead; program.expr_count()];
    let mut scope = Scope {
        frames: vec![Vec::new()],
        captures: HashMap::new(),
    };
    walk(program, &fv, program.root(), &mut scope, &mut code);
    Resolved {
        code,
        root: program.root(),
    }
}

fn walk(program: &Program, fv: &FreeVars, label: Label, scope: &mut Scope, code: &mut Vec<Code>) {
    let out = match program.expr(label) {
        ExprKind::Const(c) => Code::Const(*c),
        ExprKind::Var(v) => Code::Var(
            scope
                .resolve(*v)
                .unwrap_or_else(|| panic!("unresolved variable {v} at {label}")),
        ),
        ExprKind::Prim(p, args) => {
            for &a in args {
                walk(program, fv, a, scope, code);
            }
            Code::Prim(*p, args.clone())
        }
        ExprKind::Call(parts) => {
            for &e in parts {
                walk(program, fv, e, scope, code);
            }
            Code::Call(parts.clone())
        }
        ExprKind::Apply(f, arg) => {
            walk(program, fv, *f, scope, code);
            walk(program, fv, *arg, scope, code);
            Code::Apply(*f, *arg)
        }
        ExprKind::Begin(parts) => {
            for &e in parts {
                walk(program, fv, e, scope, code);
            }
            Code::Begin(parts.clone())
        }
        ExprKind::If(c, t, e) => {
            walk(program, fv, *c, scope, code);
            walk(program, fv, *t, scope, code);
            walk(program, fv, *e, scope, code);
            Code::If(*c, *t, *e)
        }
        ExprKind::Let(bindings, body) => {
            for &(_, e) in bindings {
                walk(program, fv, e, scope, code);
            }
            scope
                .frames
                .push(bindings.iter().map(|&(x, _)| x).collect());
            walk(program, fv, *body, scope, code);
            scope.frames.pop();
            Code::Let(bindings.iter().map(|&(_, e)| e).collect(), *body)
        }
        ExprKind::Letrec(bindings, body) => {
            scope
                .frames
                .push(bindings.iter().map(|&(y, _)| y).collect());
            for &(_, f) in bindings {
                walk(program, fv, f, scope, code);
            }
            walk(program, fv, *body, scope, code);
            scope.frames.pop();
            Code::Letrec(bindings.iter().map(|&(_, f)| f).collect(), *body)
        }
        ExprKind::Lambda(lam) => {
            let computed = fv.get(label).expect("free vars computed for reachable λ");
            // Pinned layouts come first (cl-ref indices point into them);
            // any remaining free variables are appended.
            let free: Vec<fdi_lang::VarId> = match program.pinned_captures(label) {
                Some(pins) => {
                    let mut out = pins.to_vec();
                    out.extend(computed.iter().copied().filter(|v| !pins.contains(v)));
                    out
                }
                None => computed.to_vec(),
            };
            let free = &free[..];
            // The capture plan addresses the *enclosing* scope.
            let capture_plan: Vec<VarRef> = free
                .iter()
                .map(|&z| {
                    scope
                        .resolve(z)
                        .unwrap_or_else(|| panic!("unresolved capture {z} at {label}"))
                })
                .collect();
            // Inside the λ: fresh activation; frame 0 holds params (+ rest).
            let mut inner_frame: Vec<VarId> = lam.params.clone();
            inner_frame.extend(lam.rest);
            let mut inner = Scope {
                frames: vec![inner_frame],
                captures: free
                    .iter()
                    .enumerate()
                    .map(|(i, &z)| (z, i as u16))
                    .collect(),
            };
            walk(program, fv, lam.body, &mut inner, code);
            Code::Lambda(LambdaCode {
                params: lam.params.len(),
                rest: lam.rest.is_some(),
                body: lam.body,
                capture_plan,
                label,
            })
        }
        ExprKind::ClRef(e, n) => {
            walk(program, fv, *e, scope, code);
            Code::ClRef(*e, *n)
        }
    };
    code[label.0 as usize] = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_lang::parse_and_lower;

    #[test]
    fn resolves_params_to_frame_zero() {
        let p = parse_and_lower("(lambda (a b) b)").unwrap();
        let r = resolve(&p);
        let Code::Lambda(lam) = r.code(r.root()) else {
            panic!()
        };
        let Code::Var(v) = r.code(lam.body) else {
            panic!()
        };
        assert_eq!(*v, VarRef::Env { depth: 0, slot: 1 });
    }

    #[test]
    fn resolves_let_frames_by_depth() {
        let p = parse_and_lower("(lambda (a) (let ((x 1)) (cons a x)))").unwrap();
        let r = resolve(&p);
        let Code::Lambda(lam) = r.code(r.root()) else {
            panic!()
        };
        let Code::Let(_, body) = r.code(lam.body) else {
            panic!()
        };
        let Code::Prim(_, args) = r.code(*body) else {
            panic!()
        };
        assert_eq!(
            *r.code(args[0]),
            Code::Var(VarRef::Env { depth: 1, slot: 0 })
        );
        assert_eq!(
            *r.code(args[1]),
            Code::Var(VarRef::Env { depth: 0, slot: 0 })
        );
    }

    #[test]
    fn free_variables_become_captures_in_fv_order() {
        let p = parse_and_lower("(lambda (a b) (lambda () (cons b a)))").unwrap();
        let r = resolve(&p);
        let Code::Lambda(outer) = r.code(r.root()) else {
            panic!()
        };
        let Code::Lambda(inner) = r.code(outer.body) else {
            panic!()
        };
        // b occurs first in the inner body → capture 0 reads slot 1.
        assert_eq!(
            inner.capture_plan,
            vec![
                VarRef::Env { depth: 0, slot: 1 },
                VarRef::Env { depth: 0, slot: 0 },
            ]
        );
        let Code::Prim(_, args) = r.code(inner.body) else {
            panic!()
        };
        assert_eq!(*r.code(args[0]), Code::Var(VarRef::Capture(0)));
        assert_eq!(*r.code(args[1]), Code::Var(VarRef::Capture(1)));
    }

    #[test]
    fn transitive_captures_chain() {
        // The middle λ captures `a` only to hand it to the innermost one.
        let p = parse_and_lower("(lambda (a) (lambda () (lambda () a)))").unwrap();
        let r = resolve(&p);
        let Code::Lambda(l1) = r.code(r.root()) else {
            panic!()
        };
        let Code::Lambda(l2) = r.code(l1.body) else {
            panic!()
        };
        let Code::Lambda(l3) = r.code(l2.body) else {
            panic!()
        };
        assert_eq!(l2.capture_plan, vec![VarRef::Env { depth: 0, slot: 0 }]);
        assert_eq!(l3.capture_plan, vec![VarRef::Capture(0)]);
    }

    #[test]
    fn variadic_rest_occupies_last_slot() {
        let p = parse_and_lower("(lambda (a . r) r)").unwrap();
        let r = resolve(&p);
        let Code::Lambda(lam) = r.code(r.root()) else {
            panic!()
        };
        assert_eq!(lam.params, 1);
        assert!(lam.rest);
        let Code::Var(v) = r.code(lam.body) else {
            panic!()
        };
        assert_eq!(*v, VarRef::Env { depth: 0, slot: 1 });
    }
}
