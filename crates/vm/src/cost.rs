//! The cost model: the stand-in for Chez Scheme 5.0a on a MIPS R4400.
//!
//! The paper measures execution time split into *mutator* and *collector*
//! time (Fig. 6). Our abstract machine charges unit costs per operation and
//! words per allocation; collector time is charged in proportion to
//! allocation volume, which models a young-generation copying collector —
//! and reproduces Fig. 6's observation that inlining moves mutator time
//! while collector time stays roughly flat (unless inlining changes closure
//! allocation, the paper's Graphs anomaly).

/// Tunable cost constants (arbitrary units ≈ cycles).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed overhead of a procedure call: argument shuffling, saving and
    /// restoring registers, building return linkage, and the indirect branch.
    /// This is the cost flow-directed inlining eliminates.
    pub call_overhead: u64,
    /// Additional per-argument cost of a call.
    pub call_per_arg: u64,
    /// `apply` pays the call price plus this per spread list element.
    pub apply_per_elem: u64,
    /// Cost of one primitive operation.
    pub prim_cost: u64,
    /// Cost per binding of a `let`/`letrec` (a register move).
    pub let_per_binding: u64,
    /// Cost of a conditional test-and-branch.
    pub if_cost: u64,
    /// Cost of a `cl-ref` (an indexed load from the closure record).
    pub cl_ref_cost: u64,
    /// Words per pair (two slots plus header).
    pub pair_words: u64,
    /// Base words per closure record (code pointer + header); each captured
    /// free variable adds one word (flat closures, §3.5).
    pub closure_base_words: u64,
    /// Base words per vector (header + length).
    pub vector_base_words: u64,
    /// Collector cost charged per allocated word.
    pub gc_cost_per_word: u64,
    /// Cost of one run-time tag check on a primitive argument. The paper's
    /// measurements use Chez's unsafe mode ("inlined primitives do not
    /// perform any type or bounds checking"), so the default is 0; the
    /// check-elimination experiment raises it to model a safe system.
    pub type_check_cost: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            call_overhead: 10,
            call_per_arg: 1,
            apply_per_elem: 2,
            prim_cost: 1,
            let_per_binding: 1,
            if_cost: 1,
            cl_ref_cost: 1,
            pair_words: 3,
            closure_base_words: 2,
            vector_base_words: 2,
            gc_cost_per_word: 1,
            type_check_cost: 0,
        }
    }
}

/// Execution counters gathered by the machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Mutator cost units (everything except collection).
    pub mutator: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// Procedure calls executed (closure calls, not primitives).
    pub calls: u64,
    /// Primitive operations executed.
    pub prims: u64,
    /// Closures created.
    pub closures_made: u64,
    /// Pairs created.
    pub pairs_made: u64,
    /// Machine steps (fuel consumed).
    pub steps: u64,
    /// Run-time tag checks performed (those not eliminated).
    pub checks: u64,
}

impl Counters {
    /// Collector cost under `model`.
    pub fn collector(&self, model: &CostModel) -> u64 {
        self.words_allocated * model.gc_cost_per_word
    }

    /// Total execution cost (mutator + collector).
    pub fn total(&self, model: &CostModel) -> u64 {
        self.mutator + self.collector(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let m = CostModel::default();
        assert!(m.call_overhead > 0);
        assert!(m.gc_cost_per_word > 0);
    }

    #[test]
    fn totals_compose() {
        let m = CostModel::default();
        let c = Counters {
            mutator: 100,
            words_allocated: 10,
            ..Counters::default()
        };
        assert_eq!(c.collector(&m), 10 * m.gc_cost_per_word);
        assert_eq!(c.total(&m), 100 + 10 * m.gc_cost_per_word);
    }
}
