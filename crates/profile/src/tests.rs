use super::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

fn tmp_path(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "fdi-profile-{tag}-{}-{}.profile",
        std::process::id(),
        NONCE.fetch_add(1, Relaxed)
    ))
}

fn sample() -> Profile {
    Profile {
        source_fp: 0xabcd_ef01_2345_6789,
        entry: Some("(main 4)".to_string()),
        call_overhead: 10,
        call_per_arg: 1,
        total_calls: 42,
        total_cost: 500,
        sites: vec![
            SiteProfile {
                site: "l17".to_string(),
                calls: 30,
                cost: 360,
            },
            SiteProfile {
                site: "l9".to_string(),
                calls: 12,
                cost: 140,
            },
        ],
    }
}

#[test]
fn json_codec_round_trips() {
    let p = sample();
    assert_eq!(Profile::from_json(&p.to_json()).unwrap(), p);
    // Null entry survives too.
    let anon = Profile {
        entry: None,
        ..sample()
    };
    assert_eq!(Profile::from_json(&anon.to_json()).unwrap(), anon);
    // The fingerprint is a pure function of the content.
    assert_eq!(p.fingerprint(), sample().fingerprint());
    assert_ne!(p.fingerprint(), anon.fingerprint());
}

#[test]
fn save_load_round_trips() {
    let path = tmp_path("roundtrip");
    let p = sample();
    p.save(&path).unwrap();
    assert_eq!(Profile::load(&path).unwrap(), p);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_frames_are_corrupt() {
    let path = tmp_path("trunc");
    sample().save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0, 3, fdi_core::framing::HEADER, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert_eq!(
            Profile::load(&path),
            Err(ProfileError::Corrupt),
            "cut {cut}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flips_are_corrupt() {
    let path = tmp_path("flip");
    sample().save(&path).unwrap();
    let clean = std::fs::read(&path).unwrap();
    for i in [0, 5, fdi_core::framing::HEADER + 7, clean.len() - 1] {
        let mut bytes = clean.clone();
        bytes[i] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(Profile::load(&path), Err(ProfileError::Corrupt), "byte {i}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn version_mismatch_is_typed() {
    let payload = sample().to_json().replacen("{\"v\":1,", "{\"v\":9,", 1);
    assert_eq!(Profile::from_json(&payload), Err(ProfileError::Version(9)));
    // A well-framed foreign payload is malformed, not corrupt.
    let path = tmp_path("foreign");
    std::fs::write(&path, fdi_core::framing::encode_frame("{\"v\":1}")).unwrap();
    assert!(matches!(
        Profile::load(&path),
        Err(ProfileError::Malformed(_))
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_is_io() {
    let path = tmp_path("missing");
    assert!(matches!(Profile::load(&path), Err(ProfileError::Io(_))));
}

#[test]
fn collect_attributes_the_hot_site() {
    let src = "(define (hot x) (* x x))
               (define (cold x) (+ x 1))
               (letrec ((loop (lambda (n acc)
                                (if (zero? n) acc (loop (- n 1) (+ acc (hot n)))))))
                 (cons (loop 50 0) (cold 1)))";
    let p = Profile::collect(src, None, &RunConfig::default()).unwrap();
    assert_eq!(p.source_fp, fdi_core::source_fingerprint(src));
    assert!(p.total_calls >= 100, "{}", p.total_calls);
    assert_eq!(p.total_cost, p.sites.iter().map(|s| s.cost).sum::<u64>());
    assert!(!p.stale(src));
    assert!(p.stale("(+ 1 2)"));
    // The guide ranks the loop-body sites above the one-shot cold call.
    let guide = p.guide();
    let hottest = p.sites.iter().max_by_key(|s| s.cost).unwrap();
    assert!(hottest.calls >= 50);
    assert_eq!(guide.benefit(&hottest.site), hottest.cost);
    assert_eq!(guide.benefit("no-such-site"), 0);
}

#[test]
fn entry_drives_collection_but_not_the_key() {
    let src = "(define (f x) (* x x))";
    // Without a driver the library alone performs no calls.
    let bare = Profile::collect(src, None, &RunConfig::default()).unwrap();
    let driven = Profile::collect(src, Some("(f (f 3))"), &RunConfig::default()).unwrap();
    assert!(driven.total_calls >= bare.total_calls + 2);
    assert_eq!(driven.source_fp, bare.source_fp, "entry must not key");
    assert_eq!(driven.entry.as_deref(), Some("(f (f 3))"));
    assert!(!driven.stale(src));
}

#[test]
fn collect_surfaces_typed_failures() {
    assert!(matches!(
        Profile::collect("(((", None, &RunConfig::default()),
        Err(ProfileError::Frontend(_))
    ));
    let starved = RunConfig {
        fuel: 1,
        ..Default::default()
    };
    assert!(matches!(
        Profile::collect("(define (f x) x) (f (f (f 1)))", None, &starved),
        Err(ProfileError::Vm(_))
    ));
}
