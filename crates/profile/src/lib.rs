//! The call-site profiler and its persistent artifact.
//!
//! Flow-directed inlining decides *which* sites to specialize from static
//! flow information; this crate supplies the *ordering* evidence a size
//! budget needs: how hot each call site actually is. A [`Profile`] is
//! collected by running the **original lowered program** on the cost-model
//! VM with per-site attribution ([`fdi_vm::run_profiled`]) — the same
//! program the inliner's decision provenance labels its sites against, so
//! the profile's site labels (`l17`, …) and a
//! [`fdi_telemetry::DecisionRecord::site_label`] name the same call sites.
//!
//! # The artifact
//!
//! A profile persists as one [`fdi_core::framing`] frame (magic · length ·
//! FNV-1a checksum · JSON payload) — the same torn-write/bit-flip discipline
//! the engine's disk store uses. The payload is versioned
//! ([`PROFILE_VERSION`]) and keyed by the [`source_fingerprint`] of the
//! profiled source text; [`Profile::stale`] is the staleness gate callers
//! must apply before trusting it against a (possibly edited) source.
//!
//! # From profile to guide
//!
//! [`Profile::guide`] turns the per-site measurements into an
//! [`InlineGuide`]: each site's benefit is the total mutator cost the VM
//! attributed to it — dynamic call count × per-call linkage cost
//! (`call_overhead + call_per_arg × argc`, plus the argument-spread cost at
//! `apply` sites). That is exactly the cost a committed specialization
//! eliminates, so allocating the inliner's size budget in descending benefit
//! order is hot-first allocation.

use fdi_core::framing::{decode_frame, encode_frame};
use fdi_core::source_fingerprint;
use fdi_inline::InlineGuide;
use fdi_telemetry::json::{parse, Json};
use fdi_telemetry::trace::json_string;
use fdi_vm::RunConfig;
use std::fmt;
use std::fs;
use std::path::Path;

/// Version of the artifact payload this crate writes and accepts.
pub const PROFILE_VERSION: u64 = 1;

/// One call site's measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteProfile {
    /// The site's label in the lowered program (`l17`), identical to the
    /// [`fdi_telemetry::DecisionRecord::site_label`] the inliner records.
    pub site: String,
    /// Dynamic calls dispatched from this site.
    pub calls: u64,
    /// Total mutator cost the VM attributed to this site's call linkage.
    pub cost: u64,
}

/// A persistent, checksummed call-site profile of one source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// [`source_fingerprint`] of the profiled source — the staleness key.
    pub source_fp: u64,
    /// The `--entry` expression appended for collection, if any (provenance
    /// only; it does not key anything).
    pub entry: Option<String>,
    /// The cost model's per-call overhead at collection time.
    pub call_overhead: u64,
    /// The cost model's per-argument cost at collection time.
    pub call_per_arg: u64,
    /// Total dynamic calls over the run.
    pub total_calls: u64,
    /// Total mutator cost attributed to call linkage over the run.
    pub total_cost: u64,
    /// Per-site rows, sorted by label (the VM's deterministic order).
    pub sites: Vec<SiteProfile>,
}

/// Why a profile could not be collected, loaded, or saved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// Filesystem failure (path and cause).
    Io(String),
    /// The frame failed verification: bad magic, truncation, extension,
    /// checksum mismatch, or invalid UTF-8. Never trust a partial read.
    Corrupt,
    /// A verified frame carrying a payload version this crate does not
    /// speak.
    Version(u64),
    /// A verified frame whose payload is not a profile (shape mismatch).
    Malformed(String),
    /// The source under profiling did not lower.
    Frontend(String),
    /// The profiled run failed on the VM.
    Vm(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "io: {e}"),
            ProfileError::Corrupt => write!(f, "corrupt profile artifact"),
            ProfileError::Version(v) => write!(f, "unsupported profile version {v}"),
            ProfileError::Malformed(e) => write!(f, "malformed profile payload: {e}"),
            ProfileError::Frontend(e) => write!(f, "frontend: {e}"),
            ProfileError::Vm(e) => write!(f, "vm: {e}"),
        }
    }
}

impl Profile {
    /// Collects a profile by running `src` (with `entry` appended, when
    /// given) on the cost-model VM with per-site attribution.
    ///
    /// The profile is keyed by `src` alone: the entry expression is a
    /// driver, not part of the program the profile will later guide.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Frontend`] when the combined source does not lower,
    /// [`ProfileError::Vm`] when the run fails (out of fuel, type error, …).
    pub fn collect(
        src: &str,
        entry: Option<&str>,
        config: &RunConfig,
    ) -> Result<Profile, ProfileError> {
        let combined = match entry {
            Some(e) => format!("{src}\n{e}"),
            None => src.to_string(),
        };
        let program = fdi_lang::parse_and_lower(&combined)
            .map_err(|e| ProfileError::Frontend(e.to_string()))?;
        let (outcome, sites) =
            fdi_vm::run_profiled(&program, config).map_err(|e| ProfileError::Vm(e.message))?;
        let sites: Vec<SiteProfile> = sites
            .into_iter()
            .map(|s| SiteProfile {
                site: s.site.to_string(),
                calls: s.calls,
                cost: s.cost,
            })
            .collect();
        Ok(Profile {
            source_fp: source_fingerprint(src),
            entry: entry.map(str::to_string),
            call_overhead: config.model.call_overhead,
            call_per_arg: config.model.call_per_arg,
            total_calls: outcome.counters.calls,
            total_cost: sites.iter().map(|s| s.cost).sum(),
            sites,
        })
    }

    /// True when this profile was not collected from `src` — the caller must
    /// fall back to static order (and say so in telemetry).
    pub fn stale(&self, src: &str) -> bool {
        self.source_fp != source_fingerprint(src)
    }

    /// Stable identity of this profile's *content* — the fingerprint of its
    /// canonical payload. Fold this into the pipeline cache key
    /// ([`fdi_core`'s `PipelineConfig::profile_fp`]) so runs guided by
    /// different profiles never collide.
    pub fn fingerprint(&self) -> u64 {
        source_fingerprint(&self.to_json())
    }

    /// The benefit-ordered inline guide: each site's benefit is the total
    /// dynamic linkage cost the VM attributed to it.
    pub fn guide(&self) -> InlineGuide {
        let mut g = InlineGuide::new();
        for s in &self.sites {
            g.set(s.site.clone(), s.cost);
        }
        g
    }

    /// The payload codec: one JSON object, stable key order. Fingerprints
    /// are 16-hex-digit strings (JSON numbers are doubles and cannot carry a
    /// full `u64`).
    pub fn to_json(&self) -> String {
        let sites: Vec<String> = self
            .sites
            .iter()
            .map(|s| {
                format!(
                    "{{\"site\":{},\"calls\":{},\"cost\":{}}}",
                    json_string(&s.site),
                    s.calls,
                    s.cost
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"v\":{},\"source_fp\":\"{:016x}\",\"entry\":{},",
                "\"call_overhead\":{},\"call_per_arg\":{},",
                "\"total_calls\":{},\"total_cost\":{},\"sites\":[{}]}}"
            ),
            PROFILE_VERSION,
            self.source_fp,
            match &self.entry {
                Some(e) => json_string(e),
                None => "null".to_string(),
            },
            self.call_overhead,
            self.call_per_arg,
            self.total_calls,
            self.total_cost,
            sites.join(",")
        )
    }

    /// Decodes [`Profile::to_json`].
    ///
    /// # Errors
    ///
    /// [`ProfileError::Version`] for a well-formed payload of another
    /// version; [`ProfileError::Malformed`] for any shape mismatch.
    pub fn from_json(text: &str) -> Result<Profile, ProfileError> {
        let doc = parse(text).map_err(ProfileError::Malformed)?;
        let num = |j: &Json, key: &str| -> Result<u64, ProfileError> {
            j.get(key)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| ProfileError::Malformed(format!("missing numeric field {key:?}")))
        };
        let v = num(&doc, "v")?;
        if v != PROFILE_VERSION {
            return Err(ProfileError::Version(v));
        }
        let source_fp = doc
            .get("source_fp")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| ProfileError::Malformed("missing hex field \"source_fp\"".into()))?;
        let entry = match doc.get("entry") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_str()
                    .ok_or_else(|| ProfileError::Malformed("non-string \"entry\"".into()))?
                    .to_string(),
            ),
        };
        let mut sites = Vec::new();
        for row in doc
            .get("sites")
            .and_then(Json::as_arr)
            .ok_or_else(|| ProfileError::Malformed("missing array \"sites\"".into()))?
        {
            sites.push(SiteProfile {
                site: row
                    .get("site")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProfileError::Malformed("site row without label".into()))?
                    .to_string(),
                calls: num(row, "calls")?,
                cost: num(row, "cost")?,
            });
        }
        Ok(Profile {
            source_fp,
            entry,
            call_overhead: num(&doc, "call_overhead")?,
            call_per_arg: num(&doc, "call_per_arg")?,
            total_calls: num(&doc, "total_calls")?,
            total_cost: num(&doc, "total_cost")?,
            sites,
        })
    }

    /// Writes the framed artifact atomically (tmp sibling + rename), so a
    /// kill mid-write never leaves a half-frame at the final path.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ProfileError> {
        let frame = encode_frame(&self.to_json());
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &frame).map_err(|e| ProfileError::Io(format!("write {tmp:?}: {e}")))?;
        fs::rename(&tmp, path).map_err(|e| ProfileError::Io(format!("rename to {path:?}: {e}")))
    }

    /// Loads and verifies a framed artifact.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] when the file cannot be read,
    /// [`ProfileError::Corrupt`] when the frame fails verification
    /// (truncation, bit flips, foreign bytes), and [`Profile::from_json`]'s
    /// errors for a verified frame with the wrong payload.
    pub fn load(path: &Path) -> Result<Profile, ProfileError> {
        let bytes = fs::read(path).map_err(|e| ProfileError::Io(format!("read {path:?}: {e}")))?;
        let payload = decode_frame(&bytes).ok_or(ProfileError::Corrupt)?;
        Profile::from_json(payload)
    }
}

#[cfg(test)]
mod tests;
