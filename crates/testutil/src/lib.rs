//! Self-contained test utilities: a deterministic PRNG and a lightweight
//! property-test driver.
//!
//! The workspace builds in hermetic environments with no access to crates.io,
//! so the property tests, fuzzer, and benches cannot depend on `rand`,
//! `proptest`, or `criterion`. This crate supplies the small slice of that
//! functionality they actually use:
//!
//! * [`Rng`] — an xorshift64* generator with range/choice helpers, seeded
//!   explicitly so every failure is reproducible from its seed;
//! * [`check`] — run a seeded closure over `n` cases and panic with the
//!   failing seed on the first counterexample;
//! * [`Bench`] — a wall-clock micro-benchmark harness for `harness = false`
//!   bench targets;
//! * [`timed`] — a one-shot wall-clock timer for workloads too expensive to
//!   iterate.
//!
//! # Examples
//!
//! ```
//! use fdi_testutil::Rng;
//!
//! let mut rng = Rng::new(42);
//! let x = rng.range(0, 10);
//! assert!((0..10).contains(&x));
//! assert_eq!(Rng::new(7).next_u64(), Rng::new(7).next_u64());
//! ```

use std::time::{Duration, Instant};

/// A small, fast, deterministic PRNG (xorshift64* with splitmix64 seeding).
///
/// Not cryptographically secure; intended for test-case generation only.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from `seed`. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Rng {
        // splitmix64 scrambles the seed so that nearby seeds (0, 1, 2, …)
        // yield uncorrelated streams.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Rng((z ^ (z >> 31)) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform integer in the half-open range `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::index: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// Uniformly chosen element of `xs`. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Index drawn according to `weights` (proptest's `prop_oneof!` weights).
    /// Panics if all weights are zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "Rng::weighted: zero total weight");
        let mut pick = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w as u64 {
                return i;
            }
            pick -= w as u64;
        }
        unreachable!("weighted pick exceeded total")
    }

    /// A random lowercase identifier of length `1..=max_len`.
    pub fn ident(&mut self, max_len: usize) -> String {
        let len = 1 + self.index(max_len.max(1));
        (0..len)
            .map(|_| (b'a' + self.index(26) as u8) as char)
            .collect()
    }
}

/// Runs `body` over `cases` seeds; panics with the reproducing seed attached
/// on the first failure.
///
/// The environment variable `FDI_TEST_SEED` pins a single seed for replaying
/// a reported failure; `FDI_TEST_CASES` overrides the case count.
pub fn check(name: &str, cases: u64, mut body: impl FnMut(&mut Rng)) {
    if let Ok(s) = std::env::var("FDI_TEST_SEED") {
        let seed: u64 = s.parse().expect("FDI_TEST_SEED must be an integer");
        let mut rng = Rng::new(seed);
        body(&mut rng);
        return;
    }
    let cases = std::env::var("FDI_TEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cases);
    for seed in 0..cases {
        let mut rng = Rng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = outcome {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property '{name}' failed at seed {seed} (set FDI_TEST_SEED={seed} to replay):\n{msg}");
        }
    }
}

/// One measured micro-benchmark: median/min wall time over `iters` runs.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
}

/// Minimal stand-in for the `criterion` harness: fixed iteration counts,
/// wall-clock timing, one summary line per benchmark.
#[derive(Debug, Default)]
pub struct Bench {
    results: Vec<Measurement>,
}

impl Bench {
    /// Creates an empty harness.
    pub fn new() -> Bench {
        Bench::default()
    }

    /// Times `f` for `iters` iterations after one warm-up call.
    pub fn bench<R>(&mut self, name: &str, iters: u32, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..iters.max(1))
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let m = Measurement {
            name: name.to_string(),
            iters: iters.max(1),
            min: times[0],
            median: times[times.len() / 2],
        };
        println!(
            "{:<40} {:>12.3?} median {:>12.3?} min  ({} iters)",
            m.name, m.median, m.min, m.iters
        );
        self.results.push(m);
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// Times a single call of `f` — for one-shot wall-clock comparisons where
/// repeating the workload is too expensive (whole-suite sweeps, engine
/// versus sequential runs).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let started = Instant::now();
    let result = f();
    (result, started.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(9);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(9);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn range_is_in_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let x = r.range(-5, 5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(2);
        for _ in 0..100 {
            let i = r.weighted(&[0, 3, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn check_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            check("always-fails", 3, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("seed 0"), "{msg}");
    }

    #[test]
    fn bench_runs() {
        let mut b = Bench::new();
        b.bench("noop", 3, || 1 + 1);
        assert_eq!(b.results().len(), 1);
    }
}
