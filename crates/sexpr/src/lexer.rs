//! Tokenizer for the S-expression reader.

use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(` or `[`.
    LParen,
    /// `)` or `]`.
    RParen,
    /// `'`.
    Quote,
    /// `` ` ``.
    Quasiquote,
    /// `,`.
    Unquote,
    /// `,@`.
    UnquoteSplicing,
    /// `.` separating a dotted tail.
    Dot,
    /// `#(` opening a vector literal.
    VecOpen,
    /// `#t` / `#f`.
    Bool(bool),
    /// An exact integer literal.
    Int(i64),
    /// An inexact real literal.
    Float(f64),
    /// A character literal.
    Char(char),
    /// A string literal (already unescaped).
    Str(String),
    /// A symbol.
    Sym(String),
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A streaming tokenizer over source text.
///
/// # Examples
///
/// ```
/// use fdi_sexpr::{Lexer, TokenKind};
///
/// let toks: Vec<_> = Lexer::new("(+ 1 2)").map(|t| t.unwrap().kind).collect();
/// assert_eq!(toks.len(), 5);
/// assert_eq!(toks[1], TokenKind::Sym("+".to_string()));
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    failed: bool,
}

/// A lexical error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_delimiter(b: u8) -> bool {
    matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';') || b.is_ascii_whitespace()
}

fn is_symbol_byte(b: u8) -> bool {
    !is_delimiter(b) && !matches!(b, b'\'' | b'`' | b',')
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            failed: false,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn skip_atmosphere(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'#') if self.peek2() == Some(b'|') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'|'), Some(b'#')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                            }
                            (Some(b'#'), Some(b'|')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn read_string(&mut self) -> Result<TokenKind, LexError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(other) => {
                        return Err(
                            self.error(format!("unknown string escape '\\{}'", other as char))
                        )
                    }
                    None => return Err(self.error("unterminated string escape")),
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    fn read_char_literal(&mut self) -> Result<TokenKind, LexError> {
        // The leading `#\` has been consumed. A named character is a run of
        // symbol bytes; a single punctuation character stands for itself.
        let start = self.pos;
        let first = self
            .bump()
            .ok_or_else(|| self.error("unterminated character literal"))?;
        if (first as char).is_ascii_alphabetic() {
            while let Some(b) = self.peek() {
                if is_symbol_byte(b) {
                    self.bump();
                } else {
                    break;
                }
            }
        } else if first >= 0x80 {
            // A non-ASCII character stands for itself; consume the rest of
            // its UTF-8 sequence so the slice below stays on a boundary.
            while let Some(b) = self.peek() {
                if b & 0xC0 == 0x80 {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.error("malformed character literal"))?;
        let c = match text {
            "space" => ' ',
            "newline" => '\n',
            "tab" => '\t',
            t if t.chars().count() == 1 => t.chars().next().unwrap(),
            t => return Err(self.error(format!("unknown character name '#\\{t}'"))),
        };
        Ok(TokenKind::Char(c))
    }

    fn read_atom(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_symbol_byte(b) {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.error("non-UTF8 atom"))?;
        if text == "." {
            return Ok(TokenKind::Dot);
        }
        // Numbers: optional sign, digits, optional fraction/exponent.
        let looks_numeric = {
            let t = text.strip_prefix(['+', '-']).unwrap_or(text);
            !t.is_empty() && t.starts_with(|c: char| c.is_ascii_digit() || c == '.')
        };
        if looks_numeric {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(TokenKind::Int(n));
            }
            if let Ok(x) = text.parse::<f64>() {
                return Ok(TokenKind::Float(x));
            }
        }
        Ok(TokenKind::Sym(text.to_string()))
    }

    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_atmosphere()?;
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let kind = match b {
            b'(' | b'[' => {
                self.bump();
                TokenKind::LParen
            }
            b')' | b']' => {
                self.bump();
                TokenKind::RParen
            }
            b'\'' => {
                self.bump();
                TokenKind::Quote
            }
            b'`' => {
                self.bump();
                TokenKind::Quasiquote
            }
            b',' => {
                self.bump();
                if self.peek() == Some(b'@') {
                    self.bump();
                    TokenKind::UnquoteSplicing
                } else {
                    TokenKind::Unquote
                }
            }
            b'"' => {
                self.bump();
                self.read_string()?
            }
            b'#' => match self.peek2() {
                Some(b'(') => {
                    self.bump();
                    self.bump();
                    TokenKind::VecOpen
                }
                Some(b't') | Some(b'f') => {
                    self.bump();
                    let v = self.bump() == Some(b't');
                    if self.peek().is_some_and(is_symbol_byte) {
                        return Err(self.error("junk after boolean literal"));
                    }
                    TokenKind::Bool(v)
                }
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                    self.read_char_literal()?
                }
                other => {
                    let e = self.error(format!(
                        "unknown '#' syntax: #{}",
                        other.map(|b| (b as char).to_string()).unwrap_or_default()
                    ));
                    self.bump();
                    return Err(e);
                }
            },
            _ => self.read_atom()?,
        };
        Ok(Some(Token { kind, line, col }))
    }
}

impl Iterator for Lexer<'_> {
    type Item = Result<Token, LexError>;

    /// The iterator fuses after yielding an error, so looping over a lexer
    /// always terminates even on malformed input.
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let out = self.next_token().transpose();
        if matches!(out, Some(Err(_))) {
            self.failed = true;
        }
        out
    }
}
