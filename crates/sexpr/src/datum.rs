//! The [`Datum`] tree: the external representation of Scheme data.

use std::fmt;

/// A parsed S-expression.
///
/// `Datum` is the output of the reader and the input to the `fdi-lang`
/// expander. Proper lists are represented as [`Datum::List`]; a dotted tail
/// uses [`Datum::Improper`], whose head vector is always non-empty and whose
/// tail is never itself a list (the reader normalizes `(a . (b c))` to
/// `(a b c)`).
///
/// # Examples
///
/// ```
/// use fdi_sexpr::Datum;
///
/// let d = Datum::list(vec![Datum::sym("+"), Datum::Int(1), Datum::Int(2)]);
/// assert_eq!(d.to_string(), "(+ 1 2)");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// `#t` or `#f`.
    Bool(bool),
    /// An exact integer.
    Int(i64),
    /// An inexact real.
    Float(f64),
    /// A character literal such as `#\a`, `#\space`, `#\newline`.
    Char(char),
    /// A string literal.
    Str(String),
    /// A symbol.
    Sym(String),
    /// The empty list `()`.
    Nil,
    /// A proper list `(d ...)` with at least one element.
    List(Vec<Datum>),
    /// A dotted list `(d ... . tail)`. The head is non-empty and the tail is
    /// neither `Nil` nor a list.
    Improper(Vec<Datum>, Box<Datum>),
    /// A vector literal `#(d ...)`.
    Vector(Vec<Datum>),
}

impl Datum {
    /// Builds a symbol datum.
    ///
    /// ```
    /// # use fdi_sexpr::Datum;
    /// assert_eq!(Datum::sym("car"), Datum::Sym("car".to_string()));
    /// ```
    pub fn sym(name: impl Into<String>) -> Datum {
        Datum::Sym(name.into())
    }

    /// Builds a list datum, normalizing the empty case to [`Datum::Nil`].
    ///
    /// ```
    /// # use fdi_sexpr::Datum;
    /// assert_eq!(Datum::list(vec![]), Datum::Nil);
    /// ```
    pub fn list(items: Vec<Datum>) -> Datum {
        if items.is_empty() {
            Datum::Nil
        } else {
            Datum::List(items)
        }
    }

    /// Returns the symbol name if this datum is a symbol.
    ///
    /// ```
    /// # use fdi_sexpr::Datum;
    /// assert_eq!(Datum::sym("x").as_sym(), Some("x"));
    /// assert_eq!(Datum::Int(3).as_sym(), None);
    /// ```
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Datum::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this datum is a proper list (or `Nil`).
    ///
    /// ```
    /// # use fdi_sexpr::Datum;
    /// assert_eq!(Datum::Nil.as_list(), Some(&[][..]));
    /// ```
    pub fn as_list(&self) -> Option<&[Datum]> {
        match self {
            Datum::Nil => Some(&[]),
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// True when this datum is a proper list starting with the given symbol.
    ///
    /// ```
    /// # use fdi_sexpr::{parse_one, Datum};
    /// let d = parse_one("(define x 1)").unwrap();
    /// assert!(d.is_form("define"));
    /// assert!(!d.is_form("lambda"));
    /// ```
    pub fn is_form(&self, head: &str) -> bool {
        matches!(self, Datum::List(items) if items[0].as_sym() == Some(head))
    }

    /// Total number of atoms and collection nodes in the tree — a crude size
    /// measure used by reader tests.
    pub fn node_count(&self) -> usize {
        match self {
            Datum::List(items) | Datum::Vector(items) => {
                1 + items.iter().map(Datum::node_count).sum::<usize>()
            }
            Datum::Improper(items, tail) => {
                1 + items.iter().map(Datum::node_count).sum::<usize>() + tail.node_count()
            }
            _ => 1,
        }
    }
}

fn write_char(c: char, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match c {
        ' ' => write!(f, "#\\space"),
        '\n' => write!(f, "#\\newline"),
        '\t' => write!(f, "#\\tab"),
        c => write!(f, "#\\{c}"),
    }
}

fn write_str_escaped(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Bool(true) => write!(f, "#t"),
            Datum::Bool(false) => write!(f, "#f"),
            Datum::Int(n) => write!(f, "{n}"),
            Datum::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Datum::Char(c) => write_char(*c, f),
            Datum::Str(s) => write_str_escaped(s, f),
            Datum::Sym(s) => write!(f, "{s}"),
            Datum::Nil => write!(f, "()"),
            Datum::List(items) => {
                write!(f, "(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, ")")
            }
            Datum::Improper(items, tail) => {
                write!(f, "(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, " . {tail})")
            }
            Datum::Vector(items) => {
                write!(f, "#(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, ")")
            }
        }
    }
}
