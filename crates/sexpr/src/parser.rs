//! Recursive-descent parser from tokens to [`Datum`] trees.

use std::fmt;

use crate::datum::Datum;
use crate::lexer::{LexError, Lexer, Token, TokenKind};

/// An error produced while reading S-expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line of the offending token (0 when at end of input).
    pub line: u32,
    /// 1-based column of the offending token (0 when at end of input).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Maximum nesting depth the reader accepts.
///
/// The parser is recursive-descent, so unbounded nesting (`"(".repeat(100_000)`)
/// would overflow the stack; past this depth it returns a [`ParseError`]
/// instead. The bound must leave the full descent (about three frames per
/// level) inside a 2 MiB test-thread stack, and is still far beyond any
/// program the toolchain produces.
pub const MAX_DEPTH: usize = 400;

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            lexer: Lexer::new(src),
            lookahead: None,
            depth: 0,
        }
    }

    /// Guards one level of recursive descent around `body`.
    fn nested<T>(
        &mut self,
        at: &Token,
        body: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(Self::error_at(
                Some(at),
                format!("nesting deeper than {MAX_DEPTH} levels"),
            ));
        }
        self.depth += 1;
        let result = body(self);
        self.depth -= 1;
        result
    }

    fn peek(&mut self) -> Result<Option<&Token>, ParseError> {
        if self.lookahead.is_none() {
            self.lookahead = self.lexer.next().transpose()?;
        }
        Ok(self.lookahead.as_ref())
    }

    fn bump(&mut self) -> Result<Option<Token>, ParseError> {
        self.peek()?;
        Ok(self.lookahead.take())
    }

    fn error_at(tok: Option<&Token>, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: tok.map_or(0, |t| t.line),
            col: tok.map_or(0, |t| t.col),
        }
    }

    fn parse_datum(&mut self) -> Result<Option<Datum>, ParseError> {
        let Some(tok) = self.bump()? else {
            return Ok(None);
        };
        let d = match tok.kind {
            TokenKind::Bool(b) => Datum::Bool(b),
            TokenKind::Int(n) => Datum::Int(n),
            TokenKind::Float(x) => Datum::Float(x),
            TokenKind::Char(c) => Datum::Char(c),
            TokenKind::Str(s) => Datum::Str(s),
            TokenKind::Sym(s) => Datum::Sym(s),
            TokenKind::Quote => self.nested(&tok, |p| p.parse_abbrev("quote", &tok))?,
            TokenKind::Quasiquote => self.nested(&tok, |p| p.parse_abbrev("quasiquote", &tok))?,
            TokenKind::Unquote => self.nested(&tok, |p| p.parse_abbrev("unquote", &tok))?,
            TokenKind::UnquoteSplicing => {
                self.nested(&tok, |p| p.parse_abbrev("unquote-splicing", &tok))?
            }
            TokenKind::LParen => self.nested(&tok, |p| p.parse_list(&tok))?,
            TokenKind::VecOpen => self.nested(&tok, |p| p.parse_vector(&tok))?,
            TokenKind::RParen => {
                return Err(Self::error_at(Some(&tok), "unexpected ')'"));
            }
            TokenKind::Dot => {
                return Err(Self::error_at(Some(&tok), "unexpected '.'"));
            }
        };
        Ok(Some(d))
    }

    fn parse_abbrev(&mut self, head: &str, at: &Token) -> Result<Datum, ParseError> {
        let inner = self
            .parse_datum()?
            .ok_or_else(|| Self::error_at(Some(at), format!("'{head}' at end of input")))?;
        Ok(Datum::List(vec![Datum::sym(head), inner]))
    }

    fn parse_list(&mut self, open: &Token) -> Result<Datum, ParseError> {
        let mut items = Vec::new();
        loop {
            match self.peek()? {
                None => return Err(Self::error_at(Some(open), "unterminated list")),
                Some(t) if t.kind == TokenKind::RParen => {
                    self.bump()?;
                    return Ok(Datum::list(items));
                }
                Some(t) if t.kind == TokenKind::Dot => {
                    let dot = self.bump()?.unwrap();
                    if items.is_empty() {
                        return Err(Self::error_at(Some(&dot), "dot with no preceding datum"));
                    }
                    let tail = self
                        .parse_datum()?
                        .ok_or_else(|| Self::error_at(Some(&dot), "missing datum after '.'"))?;
                    match self.bump()? {
                        Some(t) if t.kind == TokenKind::RParen => {}
                        t => {
                            return Err(Self::error_at(
                                t.as_ref(),
                                "expected ')' after dotted tail",
                            ))
                        }
                    }
                    // Normalize a list tail into a longer proper/improper list.
                    return Ok(match tail {
                        Datum::Nil => Datum::list(items),
                        Datum::List(rest) => {
                            items.extend(rest);
                            Datum::List(items)
                        }
                        Datum::Improper(rest, t2) => {
                            items.extend(rest);
                            Datum::Improper(items, t2)
                        }
                        other => Datum::Improper(items, Box::new(other)),
                    });
                }
                Some(_) => {
                    let d = self.parse_datum()?.expect("peeked token");
                    items.push(d);
                }
            }
        }
    }

    fn parse_vector(&mut self, open: &Token) -> Result<Datum, ParseError> {
        let mut items = Vec::new();
        loop {
            match self.peek()? {
                None => return Err(Self::error_at(Some(open), "unterminated vector")),
                Some(t) if t.kind == TokenKind::RParen => {
                    self.bump()?;
                    return Ok(Datum::Vector(items));
                }
                Some(t) if t.kind == TokenKind::Dot => {
                    return Err(Self::error_at(Some(t), "'.' not allowed in vector"));
                }
                Some(_) => {
                    let d = self.parse_datum()?.expect("peeked token");
                    items.push(d);
                }
            }
        }
    }
}

/// Reads every datum in `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input (unbalanced parentheses, bad
/// literals, stray dots).
///
/// # Examples
///
/// ```
/// let data = fdi_sexpr::parse("1 (2 . 3) #(x)").unwrap();
/// assert_eq!(data.len(), 3);
/// ```
pub fn parse(src: &str) -> Result<Vec<Datum>, ParseError> {
    let mut parser = Parser::new(src);
    let mut out = Vec::new();
    while let Some(d) = parser.parse_datum()? {
        out.push(d);
    }
    Ok(out)
}

/// Reads exactly one datum from `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] if `src` is empty, malformed, or contains more
/// than one datum.
///
/// # Examples
///
/// ```
/// let d = fdi_sexpr::parse_one("(lambda (x) x)").unwrap();
/// assert!(d.is_form("lambda"));
/// ```
pub fn parse_one(src: &str) -> Result<Datum, ParseError> {
    let mut data = parse(src)?;
    match data.len() {
        1 => Ok(data.pop().unwrap()),
        0 => Err(ParseError {
            message: "expected one datum, found none".to_string(),
            line: 0,
            col: 0,
        }),
        n => Err(ParseError {
            message: format!("expected one datum, found {n}"),
            line: 0,
            col: 0,
        }),
    }
}
