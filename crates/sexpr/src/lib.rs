//! S-expression reader and printer for the flow-directed-inlining toolchain.
//!
//! This crate implements the concrete-syntax layer of the system described in
//! *Flow-directed Inlining* (Jagannathan & Wright, PLDI 1996): a reader for a
//! Scheme-like surface language producing [`Datum`] trees, and printers that
//! render data back to text (both compactly and indented).
//!
//! # Examples
//!
//! ```
//! use fdi_sexpr::{parse, Datum};
//!
//! let data = parse("(let ((x 1)) (+ x 2)) ; a program").unwrap();
//! assert_eq!(data.len(), 1);
//! assert_eq!(data[0].to_string(), "(let ((x 1)) (+ x 2))");
//! ```

mod datum;
mod lexer;
mod parser;
mod printer;

pub use datum::Datum;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse, parse_one, ParseError, MAX_DEPTH};
pub use printer::pretty;

#[cfg(test)]
mod tests;
