use crate::{parse, parse_one, pretty, Datum, Lexer, TokenKind};
use fdi_testutil::{check, Rng};

fn sym(s: &str) -> Datum {
    Datum::sym(s)
}

#[test]
fn lexes_simple_tokens() {
    let kinds: Vec<_> = Lexer::new("( ) ' ` , ,@ . #(")
        .map(|t| t.unwrap().kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::LParen,
            TokenKind::RParen,
            TokenKind::Quote,
            TokenKind::Quasiquote,
            TokenKind::Unquote,
            TokenKind::UnquoteSplicing,
            TokenKind::Dot,
            TokenKind::VecOpen,
        ]
    );
}

#[test]
fn lexes_numbers() {
    let kinds: Vec<_> = Lexer::new("1 -2 +3 4.5 -0.25 1e3")
        .map(|t| t.unwrap().kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::Int(1),
            TokenKind::Int(-2),
            TokenKind::Int(3),
            TokenKind::Float(4.5),
            TokenKind::Float(-0.25),
            TokenKind::Float(1000.0),
        ]
    );
}

#[test]
fn signs_alone_are_symbols() {
    let kinds: Vec<_> = Lexer::new("+ - -foo 1+").map(|t| t.unwrap().kind).collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::Sym("+".into()),
            TokenKind::Sym("-".into()),
            TokenKind::Sym("-foo".into()),
            TokenKind::Sym("1+".into()),
        ]
    );
}

#[test]
fn lexes_characters() {
    let kinds: Vec<_> = Lexer::new(r"#\a #\space #\newline #\( ")
        .map(|t| t.unwrap().kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::Char('a'),
            TokenKind::Char(' '),
            TokenKind::Char('\n'),
            TokenKind::Char('('),
        ]
    );
}

#[test]
fn lexes_strings_with_escapes() {
    let kinds: Vec<_> = Lexer::new(r#""hi" "a\nb" "q\"q""#)
        .map(|t| t.unwrap().kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::Str("hi".into()),
            TokenKind::Str("a\nb".into()),
            TokenKind::Str("q\"q".into()),
        ]
    );
}

#[test]
fn skips_comments() {
    let data = parse("; line comment\n 1 #| block #| nested |# |# 2").unwrap();
    assert_eq!(data, vec![Datum::Int(1), Datum::Int(2)]);
}

#[test]
fn unterminated_block_comment_errors() {
    assert!(parse("#| oops").is_err());
}

#[test]
fn parses_nested_lists() {
    let d = parse_one("(a (b c) ())").unwrap();
    assert_eq!(
        d,
        Datum::List(vec![
            sym("a"),
            Datum::List(vec![sym("b"), sym("c")]),
            Datum::Nil,
        ])
    );
}

#[test]
fn parses_dotted_pairs() {
    let d = parse_one("(1 . 2)").unwrap();
    assert_eq!(
        d,
        Datum::Improper(vec![Datum::Int(1)], Box::new(Datum::Int(2)))
    );
}

#[test]
fn normalizes_dotted_list_tail() {
    // (a . (b c)) reads as (a b c)
    let d = parse_one("(a . (b c))").unwrap();
    assert_eq!(d, parse_one("(a b c)").unwrap());
    // (a . ()) reads as (a)
    let d = parse_one("(a . ())").unwrap();
    assert_eq!(d, parse_one("(a)").unwrap());
    // (a . (b . c)) reads as (a b . c)
    let d = parse_one("(a . (b . c))").unwrap();
    assert_eq!(d, parse_one("(a b . c)").unwrap());
}

#[test]
fn parses_quote_abbreviations() {
    assert_eq!(parse_one("'x").unwrap(), parse_one("(quote x)").unwrap());
    assert_eq!(
        parse_one("`x").unwrap(),
        parse_one("(quasiquote x)").unwrap()
    );
    assert_eq!(parse_one(",x").unwrap(), parse_one("(unquote x)").unwrap());
    assert_eq!(
        parse_one(",@x").unwrap(),
        parse_one("(unquote-splicing x)").unwrap()
    );
}

#[test]
fn parses_vectors() {
    let d = parse_one("#(1 x #(2))").unwrap();
    assert_eq!(
        d,
        Datum::Vector(vec![
            Datum::Int(1),
            sym("x"),
            Datum::Vector(vec![Datum::Int(2)]),
        ])
    );
}

#[test]
fn brackets_match_parens() {
    assert_eq!(
        parse_one("[let ([x 1]) x]").unwrap(),
        parse_one("(let ((x 1)) x)").unwrap()
    );
}

#[test]
fn parse_errors_carry_position() {
    let e = parse("(a\n b").unwrap_err();
    assert_eq!((e.line, e.col), (1, 1));
    let e = parse(")").unwrap_err();
    assert_eq!((e.line, e.col), (1, 1));
    let e = parse("(. 2)").unwrap_err();
    assert!(e.message.contains("dot"));
}

#[test]
fn parse_one_rejects_extra_data() {
    assert!(parse_one("1 2").is_err());
    assert!(parse_one("").is_err());
}

#[test]
fn vector_rejects_dot() {
    assert!(parse("#(1 . 2)").is_err());
}

#[test]
fn pathological_nesting_is_an_error_not_a_stack_overflow() {
    // 100k open parens must come back as a ParseError, never a crash.
    let deep = "(".repeat(100_000);
    let e = parse(&deep).unwrap_err();
    assert!(e.message.contains("nesting"), "{e}");
    let quotes = "'".repeat(100_000);
    assert!(parse(&quotes).is_err());
    let vecs = "#(".repeat(100_000);
    assert!(parse(&vecs).is_err());
}

#[test]
fn max_depth_boundary_is_exact() {
    let ok = format!(
        "{}{}{}",
        "(".repeat(crate::MAX_DEPTH),
        "x",
        ")".repeat(crate::MAX_DEPTH)
    );
    assert!(parse(&ok).is_ok());
    let over = format!(
        "{}{}{}",
        "(".repeat(crate::MAX_DEPTH + 1),
        "x",
        ")".repeat(crate::MAX_DEPTH + 1)
    );
    assert!(parse(&over).is_err());
}

#[test]
fn non_ascii_char_literal_lexes_without_panicking() {
    // `#\é` starts mid-way into a multi-byte UTF-8 sequence; the lexer must
    // consume the whole sequence instead of slicing it in half.
    assert_eq!(parse_one("#\\é").unwrap(), Datum::Char('é'));
}

#[test]
fn display_roundtrips_basic_forms() {
    for src in [
        "(a b c)",
        "(1 . 2)",
        "(a b . c)",
        "#t",
        "#f",
        "()",
        "#(1 2)",
        "\"a\\nb\"",
        "#\\space",
        "(quote x)",
    ] {
        let d = parse_one(src).unwrap();
        let printed = d.to_string();
        assert_eq!(parse_one(&printed).unwrap(), d, "roundtrip of {src}");
    }
}

#[test]
fn pretty_prints_small_forms_on_one_line() {
    let d = parse_one("(if a b c)").unwrap();
    assert_eq!(pretty(&d), "(if a b c)");
}

#[test]
fn pretty_breaks_long_forms() {
    let src = format!("(begin {})", "xxxxxxxxxx ".repeat(12));
    let d = parse_one(&src).unwrap();
    let printed = pretty(&d);
    assert!(printed.contains('\n'));
    assert_eq!(parse_one(&printed).unwrap(), d);
}

#[test]
fn is_form_and_accessors() {
    let d = parse_one("(define x 1)").unwrap();
    assert!(d.is_form("define"));
    assert_eq!(d.as_list().unwrap().len(), 3);
    assert_eq!(Datum::Nil.as_list(), Some(&[][..]));
    assert_eq!(sym("y").as_sym(), Some("y"));
    assert!(Datum::Int(1).as_list().is_none());
}

#[test]
fn node_count_counts_tree_nodes() {
    let d = parse_one("(a (b) . c)").unwrap();
    // Improper node + a + (b) list + b + c
    assert_eq!(d.node_count(), 5);
}

// --- property tests ------------------------------------------------------

fn arb_leaf(rng: &mut Rng) -> Datum {
    match rng.index(6) {
        0 => Datum::Bool(rng.chance(0.5)),
        1 => Datum::Int(rng.range(-1_000_000, 1_000_000)),
        2 => {
            let mut s = rng.ident(1);
            let tail = b"abcdefghijklmnopqrstuvwxyz0123456789!?*+-";
            for _ in 0..rng.index(7) {
                s.push(tail[rng.index(tail.len())] as char);
            }
            Datum::Sym(s)
        }
        3 => {
            let chars = b" abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
            let s: String = (0..rng.index(9))
                .map(|_| chars[rng.index(chars.len())] as char)
                .collect();
            Datum::Str(s)
        }
        4 => Datum::Nil,
        _ => Datum::Char((b'a' + rng.index(26) as u8) as char),
    }
}

fn arb_datum(rng: &mut Rng, depth: u32) -> Datum {
    if depth == 0 || rng.chance(0.3) {
        return arb_leaf(rng);
    }
    let kids = |rng: &mut Rng, lo: usize, hi: usize, depth: u32| -> Vec<Datum> {
        let n = lo + rng.index(hi - lo);
        (0..n).map(|_| arb_datum(rng, depth - 1)).collect()
    };
    match rng.index(3) {
        0 => Datum::List(kids(rng, 1, 5, depth)),
        1 => Datum::Vector(kids(rng, 0, 4, depth)),
        _ => {
            let mut items = kids(rng, 1, 4, depth);
            match arb_datum(rng, depth - 1) {
                // Keep the improper-list invariant: tail is never a list.
                Datum::Nil => Datum::list(items),
                Datum::List(rest) => {
                    items.extend(rest);
                    Datum::List(items)
                }
                Datum::Improper(rest, t) => {
                    items.extend(rest);
                    Datum::Improper(items, t)
                }
                t => Datum::Improper(items, Box::new(t)),
            }
        }
    }
}

#[test]
fn display_parse_roundtrip() {
    check("display_parse_roundtrip", 256, |rng| {
        let d = arb_datum(rng, 4);
        let printed = d.to_string();
        let reparsed = parse_one(&printed).unwrap();
        assert_eq!(reparsed, d);
    });
}

#[test]
fn pretty_parse_roundtrip() {
    check("pretty_parse_roundtrip", 256, |rng| {
        let d = arb_datum(rng, 4);
        let printed = pretty(&d);
        let reparsed = parse_one(&printed).unwrap();
        assert_eq!(reparsed, d);
    });
}

#[test]
fn lexer_never_panics() {
    check("lexer_never_panics", 256, |rng| {
        let s: String = (0..rng.index(65))
            .map(|_| char::from_u32(32 + rng.index(0x250) as u32).unwrap_or('x'))
            .collect();
        for tok in Lexer::new(&s) {
            let _ = tok;
        }
    });
}

#[test]
fn parser_never_panics() {
    check("parser_never_panics", 512, |rng| {
        let alphabet = br#" ()'`,.#abcxyz0189"\"#;
        let s: String = (0..rng.index(65))
            .map(|_| alphabet[rng.index(alphabet.len())] as char)
            .collect();
        let _ = parse(&s);
    });
}
