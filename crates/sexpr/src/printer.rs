//! Indenting pretty-printer for [`Datum`] trees.

use crate::datum::Datum;

const WIDTH: usize = 78;

/// Renders `d` with indentation, breaking lists that exceed the line width.
///
/// The printer keeps binding forms readable: `let`/`letrec` binding lists and
/// `lambda` parameter lists stay on the head line when they fit, and body
/// forms are indented by two spaces.
///
/// # Examples
///
/// ```
/// let d = fdi_sexpr::parse_one("(if a b c)").unwrap();
/// assert_eq!(fdi_sexpr::pretty(&d), "(if a b c)");
/// ```
pub fn pretty(d: &Datum) -> String {
    let mut out = String::new();
    emit(d, 0, &mut out);
    out
}

fn flat(d: &Datum) -> String {
    d.to_string()
}

fn emit(d: &Datum, indent: usize, out: &mut String) {
    let one_line = flat(d);
    if indent + one_line.len() <= WIDTH {
        out.push_str(&one_line);
        return;
    }
    match d {
        Datum::List(items) => emit_list(items, indent, out),
        Datum::Vector(items) => {
            out.push_str("#(");
            emit_items(items, indent + 2, out);
            out.push(')');
        }
        Datum::Improper(items, tail) => {
            out.push('(');
            emit_items(items, indent + 1, out);
            out.push_str(&format!("\n{} . ", " ".repeat(indent + 1)));
            emit(tail, indent + 4, out);
            out.push(')');
        }
        _ => out.push_str(&one_line),
    }
}

/// Number of head subforms kept on the first line for each special form.
fn head_args(head: &str) -> usize {
    match head {
        "lambda" | "let" | "letrec" | "let*" | "define" | "named-lambda" => 1,
        "if" | "set-car!" | "set-cdr!" | "case" => 1,
        _ => 0,
    }
}

fn emit_list(items: &[Datum], indent: usize, out: &mut String) {
    let Some(head) = items.first() else {
        out.push_str("()");
        return;
    };
    out.push('(');
    let head_is_sym = head.as_sym().is_some();
    let keep = match head.as_sym() {
        Some(s) => head_args(s),
        None => 0,
    };
    emit(&items[0], indent + 1, out);
    let head_len = flat(&items[0]).len();
    let mut body_indent = indent + 2;
    let mut i = 1;
    // Keep `keep` arguments on the head line when they fit.
    while i < items.len() && i <= keep {
        let arg = flat(&items[i]);
        if indent + 1 + head_len + 1 + arg.len() <= WIDTH {
            out.push(' ');
            out.push_str(&arg);
            i += 1;
        } else {
            break;
        }
    }
    if !head_is_sym {
        // Application of a computed head: align under the head.
        body_indent = indent + 1;
    }
    for item in &items[i..] {
        out.push('\n');
        out.push_str(&" ".repeat(body_indent));
        emit(item, body_indent, out);
    }
    out.push(')');
}

fn emit_items(items: &[Datum], indent: usize, out: &mut String) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(&" ".repeat(indent));
        }
        emit(item, indent, out);
    }
}
