//! The acceptance invariant: a warm-cache sweep over the benchmark suite
//! performs **exactly one control-flow analysis per (program, CFA policy)**,
//! regardless of how many thresholds the sweep spans — asserted through the
//! engine's own counters ([`fdi_engine::EngineStats::analysis_misses`] is
//! the number of CFAs actually run).

use fdi_core::{PipelineConfig, RunConfig};
use fdi_engine::Engine;

#[test]
fn six_threshold_suite_sweep_analyzes_each_program_once() {
    let sources: Vec<String> = fdi_benchsuite::BENCHMARKS
        .iter()
        .map(|b| b.scaled(b.test_scale))
        .collect();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let programs = refs.len() as u64;
    // 0 is implicit; six thresholds per program in total.
    let thresholds = [100, 200, 400, 600, 800];
    let rows_per_program = thresholds.len() as u64 + 1;
    let config = PipelineConfig::default();
    let run_config = RunConfig::default();

    let engine = Engine::with_jobs(4);
    let results = engine.sweep_many(&refs, &thresholds, &config, &run_config);
    assert!(results.iter().all(|r| r.is_ok()), "suite sweep is healthy");

    let stats = engine.stats();
    assert_eq!(
        stats.analysis_misses, programs,
        "exactly one CFA per (program, policy) across a {rows_per_program}-threshold sweep"
    );
    assert_eq!(
        stats.parse_misses, programs,
        "one front-end run per program"
    );
    assert_eq!(
        stats.analysis_hits,
        programs * (rows_per_program - 1),
        "every other threshold reused a cached analysis"
    );
    assert_eq!(stats.jobs_completed, programs * rows_per_program);

    // Resweeping the warm engine performs no new analysis at all.
    let again = engine.sweep_many(&refs, &thresholds, &config, &run_config);
    assert!(again.iter().all(|r| r.is_ok()));
    let stats = engine.stats();
    assert_eq!(
        stats.analysis_misses, programs,
        "warm resweep: zero new CFAs"
    );
    assert_eq!(
        stats.parse_misses, programs,
        "warm resweep: zero new parses"
    );
}

#[test]
fn distinct_policies_get_distinct_analyses() {
    let bench = &fdi_benchsuite::BENCHMARKS[0];
    let src = bench.scaled(bench.test_scale);
    let engine = Engine::with_jobs(2);
    for policy in [
        fdi_core::Polyvariance::PolymorphicSplitting,
        fdi_core::Polyvariance::Monovariant,
        fdi_core::Polyvariance::CallStrings(1),
    ] {
        let config = PipelineConfig {
            policy,
            ..PipelineConfig::default()
        };
        engine
            .sweep(&src, &[200], &config, &RunConfig::default())
            .unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.parse_misses, 1, "one program, one parse");
    assert_eq!(
        stats.analysis_misses, 3,
        "three policies are three analysis-cache keys"
    );
}
