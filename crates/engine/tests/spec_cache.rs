//! The specialization- and execution-cache contracts: the caches are pure
//! memoization, so a cached sweep is byte-identical to the cache-free
//! sequential path (asserted in `determinism.rs`) *and* the counters prove
//! the caches actually worked — a threshold sweep re-specializes nothing it
//! has already specialized, and a warm resweep re-executes nothing at all.

use fdi_core::{PipelineConfig, RunConfig, SweepRow};
use fdi_engine::Engine;

fn render(rows: &[SweepRow]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "t={} size={:016x} tot={:016x} val={:?} ctr={:?}",
                r.threshold,
                r.size_ratio.to_bits(),
                r.norm_total.to_bits(),
                r.value,
                r.counters,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn threshold_sweep_reuses_specializations_across_the_batch() {
    let bench = &fdi_benchsuite::BENCHMARKS[0];
    let src = bench.scaled(bench.test_scale);
    let thresholds = [50, 100, 200, 500, 1000];
    let config = PipelineConfig::default();

    let engine = Engine::with_jobs(4);
    engine
        .sweep(&src, &thresholds, &config, &RunConfig::default())
        .expect("sweep succeeds");

    let stats = engine.stats();
    assert!(
        stats.spec_misses > 0,
        "the first threshold populates the specialization cache"
    );
    assert!(
        stats.spec_hits > 0,
        "later thresholds re-evaluate the gate on cached specializations \
         instead of re-specializing (hits={} misses={})",
        stats.spec_hits,
        stats.spec_misses
    );
}

#[test]
fn warm_resweep_is_byte_identical_and_skips_execution() {
    let sources: Vec<String> = fdi_benchsuite::BENCHMARKS
        .iter()
        .take(3)
        .map(|b| b.scaled(b.test_scale))
        .collect();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let thresholds = [100, 500];
    let config = PipelineConfig::default();
    let run_config = RunConfig::default();

    let engine = Engine::with_jobs(4);
    let cold: Vec<String> = engine
        .sweep_many(&refs, &thresholds, &config, &run_config)
        .into_iter()
        .map(|r| render(&r.expect("cold sweep succeeds")))
        .collect();
    let cold_exec_misses = engine.stats().exec_misses;
    assert!(cold_exec_misses > 0, "cold sweep actually executed");

    let warm: Vec<String> = engine
        .sweep_many(&refs, &thresholds, &config, &run_config)
        .into_iter()
        .map(|r| render(&r.expect("warm sweep succeeds")))
        .collect();
    assert_eq!(cold, warm, "warm rows must be byte-identical to cold rows");

    let stats = engine.stats();
    assert_eq!(
        stats.exec_misses, cold_exec_misses,
        "warm resweep: zero new VM executions"
    );
    assert!(
        stats.exec_hits >= cold_exec_misses,
        "every warm execution was served from the cell cache"
    );
}
