//! The engine's determinism contract: a sweep run on the pool is
//! **byte-identical** to the sequential sweep, at any worker count.
//!
//! Rows are rendered with exact float bit patterns so "close enough"
//! cannot pass: the engine shares the sequential path's analysis, its
//! transform tail, its VM execution, and its assembly, so every derived
//! number must match to the last bit.

use fdi_core::{PipelineConfig, RunConfig, SweepRow};
use fdi_engine::Engine;

/// A row as an exact byte string: floats by bit pattern, everything else by
/// `Debug`.
fn render(rows: &[SweepRow]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "t={} size={:016x} mut={:016x} col={:016x} tot={:016x} val={:?} ctr={:?} rep={:?} deg={}",
                r.threshold,
                r.size_ratio.to_bits(),
                r.norm_mutator.to_bits(),
                r.norm_collector.to_bits(),
                r.norm_total.to_bits(),
                r.value,
                r.counters,
                r.report,
                r.health.degraded(),
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn engine_sweep_is_byte_identical_to_sequential_at_any_job_count() {
    let benches: Vec<&fdi_benchsuite::Benchmark> =
        fdi_benchsuite::BENCHMARKS.iter().take(2).collect();
    let thresholds = [100, 500];
    let config = PipelineConfig::default();
    let run_config = RunConfig::default();

    for bench in benches {
        let src = bench.scaled(bench.test_scale);
        let expected = render(
            &fdi_core::sweep(&src, &thresholds, &config, &run_config)
                .expect("sequential sweep succeeds"),
        );
        for jobs in [1, 4, 8] {
            let engine = Engine::with_jobs(jobs);
            let rows = engine
                .sweep(&src, &thresholds, &config, &run_config)
                .expect("engine sweep succeeds");
            assert_eq!(
                render(&rows),
                expected,
                "{} at --jobs {jobs} diverged from the sequential sweep",
                bench.name
            );
        }
    }
}

#[test]
fn sweep_many_matches_per_source_sweeps() {
    let sources: Vec<String> = fdi_benchsuite::BENCHMARKS
        .iter()
        .take(3)
        .map(|b| b.scaled(b.test_scale))
        .collect();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let thresholds = [200];
    let config = PipelineConfig::default();
    let run_config = RunConfig::default();

    let engine = Engine::with_jobs(4);
    let batched = engine.sweep_many(&refs, &thresholds, &config, &run_config);
    for (src, rows) in refs.iter().zip(batched) {
        let alone = fdi_core::sweep(src, &thresholds, &config, &run_config).unwrap();
        assert_eq!(render(&rows.unwrap()), render(&alone));
    }
}
