//! The sharded worker pool.
//!
//! Plain `std::thread` workers, one bounded [`sync_channel`] queue per
//! worker. Submission picks a shard from the task's key and **blocks** when
//! that shard's queue is full — bounded queues are the engine's
//! backpressure: a caller enqueuing a ten-thousand-job batch is throttled to
//! roughly `workers × queue_cap` outstanding tasks instead of materializing
//! every closure up front.
//!
//! Deadlock-freedom rests on two rules the engine upholds:
//!
//! 1. only *caller* threads submit — a worker never enqueues onto the pool,
//!    so a full queue cannot block the thread that would drain it;
//! 2. a worker only ever blocks on a [`cache::Gate`](crate::cache) whose
//!    owner is *running* on another worker (gates are created by the task
//!    that fills them, never by queued work), so waits are bounded by one
//!    computation, not by queue position.
//!
//! Workers run each task under `catch_unwind`: a panicking task must not
//! take its whole shard down with it. (Engine tasks additionally contain
//! panics themselves and report them as typed errors; the pool-level catch
//! is the backstop.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

pub(crate) type Task = Box<dyn FnOnce() + Send>;

/// A fixed set of worker threads, each owning one bounded task queue.
pub(crate) struct Pool {
    senders: Vec<SyncSender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads, each with a `queue_cap`-slot queue.
    pub(crate) fn new(workers: usize, queue_cap: usize) -> Pool {
        let workers = workers.max(1);
        let queue_cap = queue_cap.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = sync_channel::<Task>(queue_cap);
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("fdi-engine-{i}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        let _ = catch_unwind(AssertUnwindSafe(task));
                    }
                })
                .expect("spawn engine worker");
            handles.push(handle);
        }
        Pool { senders, handles }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues `task` on the shard chosen by `shard_key`, blocking while
    /// that shard's queue is full.
    pub(crate) fn submit(&self, shard_key: u64, task: Task) {
        let shard = (shard_key % self.senders.len() as u64) as usize;
        self.senders[shard]
            .send(task)
            .expect("engine worker exited");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channels lets each worker drain its remaining queue
        // and exit; queued tasks still run, so gates handed out for
        // already-submitted work are always filled.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Arc;

    #[test]
    fn runs_every_task_across_shards() {
        let pool = Pool::new(4, 2);
        let ran = Arc::new(AtomicU64::new(0));
        for key in 0..64u64 {
            let ran = ran.clone();
            pool.submit(
                key,
                Box::new(move || {
                    ran.fetch_add(1, Relaxed);
                }),
            );
        }
        drop(pool); // joins: every queued task has run
        assert_eq!(ran.load(Relaxed), 64);
    }

    #[test]
    fn panicking_task_does_not_kill_its_shard() {
        let pool = Pool::new(1, 4);
        pool.submit(0, Box::new(|| panic!("task exploded")));
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        pool.submit(
            0,
            Box::new(move || {
                ran2.fetch_add(1, Relaxed);
            }),
        );
        drop(pool);
        assert_eq!(ran.load(Relaxed), 1, "same shard still serves tasks");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0, 0);
        assert_eq!(pool.workers(), 1);
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        pool.submit(
            17,
            Box::new(move || {
                ran2.fetch_add(1, Relaxed);
            }),
        );
        drop(pool);
        assert_eq!(ran.load(Relaxed), 1);
    }
}
