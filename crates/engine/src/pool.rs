//! The sharded, self-healing worker pool.
//!
//! Plain `std::thread` workers, one bounded [`sync_channel`] queue per
//! shard. Submission picks a shard from the task's key and **blocks** when
//! that shard's queue is full — bounded queues are the engine's
//! backpressure: a caller enqueuing a ten-thousand-job batch is throttled to
//! roughly `workers × queue_cap` outstanding tasks instead of materializing
//! every closure up front.
//!
//! Deadlock-freedom rests on two rules the engine upholds:
//!
//! 1. only *caller* threads submit — a worker never enqueues onto the pool,
//!    so a full queue cannot block the thread that would drain it;
//! 2. a worker only ever blocks on a [`cache::Gate`](crate::cache) whose
//!    owner is *running* on another worker (gates are created by the task
//!    that fills them, never by queued work), so waits are bounded by one
//!    computation, not by queue position.
//!
//! Workers run each task under `catch_unwind`: a panicking task must not
//! take its whole shard down with it. (Engine tasks additionally contain
//! panics themselves and report them as typed errors; the pool-level catch
//! is the backstop.)
//!
//! # Supervision
//!
//! A worker thread itself can still die — most deliberately via the
//! [`FaultPoint::WorkerPanic`] chaos seam, which kills the worker *between*
//! tasks. Each worker carries a drop guard that notices the unwind and
//! spawns a replacement over the same shard receiver, so pool capacity
//! never degrades permanently. The doomed task is stashed in the shard's
//! `pending` slot before the panic and the replacement runs it first
//! (without re-polling the panic seam), so **no submitted task is ever
//! lost** — even under a 100% worker-panic fault rate, every task runs
//! exactly once per delivery.
//!
//! The [`FaultPoint::QueueDelay`] seam injects artificial latency at the
//! dequeue, exercising backpressure and deadline paths under slow workers.

use fdi_core::faults::{FaultAction, FaultInjector, FaultPoint};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub(crate) type Task = Box<dyn FnOnce() + Send>;

/// What a worker (and its replacements) needs to serve one shard.
struct ShardState {
    /// The shard's queue. Only the shard's single live worker receives, but
    /// the mutex makes the replacement handover race-free.
    rx: Mutex<Receiver<Task>>,
    /// A task rescued from a panicking worker; the replacement runs it
    /// before touching the queue.
    pending: Mutex<Option<Task>>,
}

/// Everything shared by the pool and its respawn guards.
struct Supervisor {
    injector: Arc<FaultInjector>,
    respawned: Arc<AtomicU64>,
    /// Join handles for every live (or not-yet-joined) worker, replacements
    /// included. The pool's drop pops until empty.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A fixed set of worker shards, each owning one bounded task queue and
/// exactly one live worker thread.
pub(crate) struct Pool {
    senders: Vec<SyncSender<Task>>,
    supervisor: Arc<Supervisor>,
}

impl Pool {
    /// Spawns `workers` threads, each with a `queue_cap`-slot queue, with
    /// chaos disabled.
    #[cfg(test)]
    pub(crate) fn new(workers: usize, queue_cap: usize) -> Pool {
        Pool::with_chaos(
            workers,
            queue_cap,
            Arc::new(FaultInjector::disabled()),
            Arc::new(AtomicU64::new(0)),
        )
    }

    /// [`Pool::new`] with the engine's shared fault injector (worker-panic
    /// and queue-delay seams) and respawn counter.
    pub(crate) fn with_chaos(
        workers: usize,
        queue_cap: usize,
        injector: Arc<FaultInjector>,
        respawned: Arc<AtomicU64>,
    ) -> Pool {
        let workers = workers.max(1);
        let queue_cap = queue_cap.max(1);
        let supervisor = Arc::new(Supervisor {
            injector,
            respawned,
            handles: Mutex::new(Vec::with_capacity(workers)),
        });
        let mut senders = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = sync_channel::<Task>(queue_cap);
            senders.push(tx);
            let shard = Arc::new(ShardState {
                rx: Mutex::new(rx),
                pending: Mutex::new(None),
            });
            let handle = spawn_worker(i, shard, supervisor.clone());
            supervisor.handles.lock().unwrap().push(handle);
        }
        Pool {
            senders,
            supervisor,
        }
    }

    /// Number of worker shards (one live worker each).
    pub(crate) fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues `task` on the shard chosen by `shard_key`, blocking while
    /// that shard's queue is full.
    pub(crate) fn submit(&self, shard_key: u64, task: Task) {
        let shard = (shard_key % self.senders.len() as u64) as usize;
        self.senders[shard]
            .send(task)
            .expect("engine worker exited");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channels lets each worker drain its remaining queue
        // and exit; queued tasks still run, so gates handed out for
        // already-submitted work are always filled. Workers that panic while
        // draining respawn and push a new handle, hence pop-until-empty
        // rather than a single drain pass.
        self.senders.clear();
        loop {
            let handle = self.supervisor.handles.lock().unwrap().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Respawns the worker if its thread unwinds (the pool-level catch means
/// that only happens via the worker-panic chaos seam, or a bug).
struct RespawnOnPanic {
    index: usize,
    shard: Arc<ShardState>,
    supervisor: Arc<Supervisor>,
}

impl Drop for RespawnOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.supervisor.respawned.fetch_add(1, Relaxed);
            let handle = spawn_worker(self.index, self.shard.clone(), self.supervisor.clone());
            self.supervisor.handles.lock().unwrap().push(handle);
        }
    }
}

fn spawn_worker(
    index: usize,
    shard: Arc<ShardState>,
    supervisor: Arc<Supervisor>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("fdi-engine-{index}"))
        .spawn(move || {
            let guard = RespawnOnPanic {
                index,
                shard: shard.clone(),
                supervisor: supervisor.clone(),
            };
            worker_loop(&shard, &supervisor.injector);
            // Clean exit: the queue closed. Disarm by forgetting nothing —
            // the guard only acts when the thread is panicking.
            drop(guard);
        })
        .expect("spawn engine worker")
}

fn worker_loop(shard: &ShardState, injector: &FaultInjector) {
    loop {
        // A task rescued from a panicked predecessor runs first and
        // unconditionally: re-polling the panic seam on it could starve the
        // task forever under a 100% fault rate.
        let (task, rescued) = match shard.pending.lock().unwrap().take() {
            Some(t) => (t, true),
            None => {
                let rx = shard.rx.lock().unwrap();
                match rx.recv() {
                    Ok(t) => (t, false),
                    Err(_) => return, // queue closed: clean shutdown
                }
            }
        };
        if !rescued {
            if let Some(action) = injector.poll(FaultPoint::QueueDelay) {
                let d = match action {
                    FaultAction::Latency(d) => d,
                    _ => Duration::from_micros(300),
                };
                std::thread::sleep(d);
            }
            if injector.poll(FaultPoint::WorkerPanic).is_some() {
                // Stash the task first: the replacement spawned by the drop
                // guard picks it up, so the panic loses nothing.
                *shard.pending.lock().unwrap() = Some(task);
                panic!("injected fault at worker-panic");
            }
        }
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_core::faults::FaultPlan;

    #[test]
    fn runs_every_task_across_shards() {
        let pool = Pool::new(4, 2);
        let ran = Arc::new(AtomicU64::new(0));
        for key in 0..64u64 {
            let ran = ran.clone();
            pool.submit(
                key,
                Box::new(move || {
                    ran.fetch_add(1, Relaxed);
                }),
            );
        }
        drop(pool); // joins: every queued task has run
        assert_eq!(ran.load(Relaxed), 64);
    }

    #[test]
    fn panicking_task_does_not_kill_its_shard() {
        let pool = Pool::new(1, 4);
        pool.submit(0, Box::new(|| panic!("task exploded")));
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        pool.submit(
            0,
            Box::new(move || {
                ran2.fetch_add(1, Relaxed);
            }),
        );
        drop(pool);
        assert_eq!(ran.load(Relaxed), 1, "same shard still serves tasks");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0, 0);
        assert_eq!(pool.workers(), 1);
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        pool.submit(
            17,
            Box::new(move || {
                ran2.fetch_add(1, Relaxed);
            }),
        );
        drop(pool);
        assert_eq!(ran.load(Relaxed), 1);
    }

    #[test]
    fn worker_panic_respawns_and_loses_no_task() {
        // Every dequeue kills the worker — the harshest possible schedule.
        // Each task must still run exactly once, via rescue + respawn.
        let injector = Arc::new(FaultInjector::new(FaultPlan::only(
            7,
            &[FaultPoint::WorkerPanic],
        )));
        let respawned = Arc::new(AtomicU64::new(0));
        let pool = Pool::with_chaos(2, 4, injector, respawned.clone());
        let ran = Arc::new(AtomicU64::new(0));
        for key in 0..16u64 {
            let ran = ran.clone();
            pool.submit(
                key,
                Box::new(move || {
                    ran.fetch_add(1, Relaxed);
                }),
            );
        }
        drop(pool);
        assert_eq!(ran.load(Relaxed), 16, "no task lost to worker panics");
        assert_eq!(
            respawned.load(Relaxed),
            16,
            "one respawn per delivered task at 100% fault rate"
        );
    }

    #[test]
    fn queue_delay_only_slows_things_down() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::only(
            11,
            &[FaultPoint::QueueDelay],
        )));
        let pool = Pool::with_chaos(1, 4, injector, Arc::new(AtomicU64::new(0)));
        let ran = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let ran = ran.clone();
            pool.submit(
                0,
                Box::new(move || {
                    ran.fetch_add(1, Relaxed);
                }),
            );
        }
        drop(pool);
        assert_eq!(ran.load(Relaxed), 8);
    }
}
