//! The content-addressed artifact cache and its in-flight computation
//! gates.
//!
//! Two layers:
//!
//! * [`Gate`] — a write-once cell a computing thread fills and any number of
//!   threads wait on (the engine also uses gates directly for job results
//!   and sweep executions);
//! * [`KeyedCache`] — a keyed map of gates with *in-flight deduplication*:
//!   the first thread to ask for a key computes it, every concurrent asker
//!   blocks on the same gate, and later askers read the finished value. A
//!   key is therefore computed at most once, which is the engine's central
//!   invariant ("one CFA per (program, policy)").
//!
//! Values are cached as `Result`s: contained failures (frontend rejections,
//! analysis panics) are deterministic for a given key and are negatively
//! cached like any other artifact.
//!
//! Panic safety: compute closures are expected to be *total* (the engine
//! only passes panic-contained closures). If one unwinds anyway, a guard
//! abandons the gate — waiters wake up and retry the computation themselves
//! instead of blocking forever.
//!
//! Resource governance: a cache may be constructed *bounded* against a
//! shared [`CacheBudget`] — a byte limit spanning every cache that charges
//! it. Ready entries are byte-accounted (via a caller-supplied sizer) and
//! stamped with a recency tick; when an insert pushes the shared budget over
//! its limit, the inserting cache evicts its own least-recently-used ready
//! entries until the budget fits (or it has nothing left to give — a sibling
//! cache holding the bytes sheds them on *its* next insert). In-flight
//! entries carry no bytes and are never pressure-evicted: evicting one would
//! strand its waiters, and its cost isn't known until it resolves.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug)]
struct GateState<V> {
    value: Option<V>,
    abandoned: bool,
}

/// A write-once value cell with blocking readers.
#[derive(Debug)]
pub(crate) struct Gate<V> {
    state: Mutex<GateState<V>>,
    ready: Condvar,
}

impl<V: Clone> Gate<V> {
    pub(crate) fn new() -> Gate<V> {
        Gate {
            state: Mutex::new(GateState {
                value: None,
                abandoned: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Publishes the value and wakes every waiter.
    pub(crate) fn set(&self, v: V) {
        let mut s = self.state.lock().unwrap();
        debug_assert!(s.value.is_none(), "gate filled twice");
        s.value = Some(v);
        self.ready.notify_all();
    }

    /// Marks the gate as never-to-be-filled and wakes every waiter.
    fn abandon(&self) {
        let mut s = self.state.lock().unwrap();
        s.abandoned = true;
        self.ready.notify_all();
    }

    /// Blocks until the value is published (`Some`) or the computation was
    /// abandoned (`None`).
    pub(crate) fn wait(&self) -> Option<V> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(v) = &s.value {
                return Some(v.clone());
            }
            if s.abandoned {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    /// Like [`Gate::wait`], but gives up at `deadline`: the outer `None`
    /// means the gate was still unfilled when time ran out (the computation
    /// keeps running — only this waiter stops watching). This is what turns
    /// a serve-mode request deadline into a typed timeout instead of a hung
    /// connection.
    pub(crate) fn wait_deadline(&self, deadline: std::time::Instant) -> Option<Option<V>> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(v) = &s.value {
                return Some(Some(v.clone()));
            }
            if s.abandoned {
                return Some(None);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            (s, _) = self.ready.wait_timeout(s, deadline - now).unwrap();
        }
    }
}

/// A byte budget shared by every cache constructed against it.
///
/// `used` is the sum of ready-entry bytes across all charging caches;
/// `pressure_evictions` counts entries shed to fit the limit (shared with
/// [`crate::EngineStats`] so pressure shows up next to fault and corruption
/// evictions).
#[derive(Debug)]
pub(crate) struct CacheBudget {
    limit: usize,
    used: AtomicUsize,
    pressure_evictions: Arc<AtomicU64>,
}

impl CacheBudget {
    pub(crate) fn new(limit: usize, pressure_evictions: Arc<AtomicU64>) -> Arc<CacheBudget> {
        Arc::new(CacheBudget {
            limit,
            used: AtomicUsize::new(0),
            pressure_evictions,
        })
    }

    /// Ready-entry bytes currently charged against this budget.
    pub(crate) fn bytes_used(&self) -> usize {
        self.used.load(Relaxed)
    }

    /// The configured limit (`usize::MAX` when accounting-only).
    pub(crate) fn limit(&self) -> usize {
        self.limit
    }
}

/// Lets the inliner's shared [`fdi_core::SpecializationCache`] charge the
/// same byte budget as the engine's keyed caches: one `cache_bytes` limit
/// spans parses, analyses, exec cells, and specializations. The spec cache
/// sheds its own LRU entries while [`CacheLedger::over_limit`] holds, and
/// counts those sheds itself ([`fdi_core::SpecCacheStats::evictions`]), so
/// this adapter moves bytes only — never the pressure-eviction counter.
pub(crate) struct BudgetLedger(pub(crate) Arc<CacheBudget>);

impl fdi_core::CacheLedger for BudgetLedger {
    fn charge(&self, bytes: usize) {
        self.0.used.fetch_add(bytes, Relaxed);
    }

    fn release(&self, bytes: usize) {
        self.0.used.fetch_sub(bytes, Relaxed);
    }

    fn over_limit(&self) -> bool {
        self.0.used.load(Relaxed) > self.0.limit
    }
}

#[derive(Debug)]
struct Ready<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug)]
enum Slot<V> {
    InFlight(Arc<Gate<V>>),
    Ready(Ready<V>),
}

/// A content-addressed cache with in-flight deduplication and (optionally)
/// byte-accounted LRU eviction against a shared [`CacheBudget`].
#[derive(Debug)]
pub(crate) struct KeyedCache<K, V> {
    map: Mutex<HashMap<K, Slot<V>>>,
    budget: Option<Arc<CacheBudget>>,
    size_of: fn(&V) -> usize,
    tick: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> KeyedCache<K, V> {
    /// An unbounded cache: entries are never pressure-evicted and carry no
    /// byte accounting.
    pub(crate) fn new() -> KeyedCache<K, V> {
        KeyedCache {
            map: Mutex::new(HashMap::new()),
            budget: None,
            size_of: |_| 0,
            tick: AtomicU64::new(0),
        }
    }

    /// A cache charging `budget` for every ready entry, sized by `size_of`.
    pub(crate) fn bounded(budget: Arc<CacheBudget>, size_of: fn(&V) -> usize) -> KeyedCache<K, V> {
        KeyedCache {
            map: Mutex::new(HashMap::new()),
            budget: Some(budget),
            size_of,
            tick: AtomicU64::new(0),
        }
    }

    /// Number of cached (ready or in-flight) entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Drops the *ready* entry for `key`, forcing the next asker to
    /// recompute. In-flight entries are left alone — evicting one would
    /// strand its waiters — so eviction of a key being computed is a no-op.
    /// Returns whether an entry was removed.
    pub(crate) fn evict(&self, key: &K) -> bool {
        let mut map = self.map.lock().unwrap();
        match map.get(key) {
            Some(Slot::Ready(_)) => {
                if let Some(Slot::Ready(r)) = map.remove(key) {
                    self.discharge(r.bytes);
                }
                true
            }
            _ => false,
        }
    }

    /// Returns the bytes an eviction must give back to the budget.
    fn discharge(&self, bytes: usize) {
        if let Some(budget) = &self.budget {
            budget.used.fetch_sub(bytes, Relaxed);
        }
    }

    /// Sheds this cache's least-recently-used ready entries while the
    /// shared budget is over its limit. Stops when the budget fits or this
    /// cache has no ready entries left — never touches in-flight slots, and
    /// never blocks another cache (the budget is atomics, not a lock).
    fn enforce_budget(&self, map: &mut HashMap<K, Slot<V>>) {
        let Some(budget) = &self.budget else { return };
        while budget.used.load(Relaxed) > budget.limit {
            let lru = map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(r) => Some((r.last_used, k)),
                    Slot::InFlight(_) => None,
                })
                .min_by_key(|(t, _)| *t)
                .map(|(_, k)| k.clone());
            let Some(key) = lru else { break };
            if let Some(Slot::Ready(r)) = map.remove(&key) {
                budget.used.fetch_sub(r.bytes, Relaxed);
                budget.pressure_evictions.fetch_add(1, Relaxed);
            }
        }
    }

    /// Returns the value for `key`, computing it at most once across all
    /// threads.
    ///
    /// The boolean is `true` on a *hit*: the value came from the cache or
    /// from another thread's in-flight computation (waited on). It is
    /// `false` exactly when this call ran `compute`.
    pub(crate) fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        let mut compute = Some(compute);
        loop {
            let gate = {
                let mut map = self.map.lock().unwrap();
                match map.get_mut(&key) {
                    Some(Slot::Ready(r)) => {
                        r.last_used = self.tick.fetch_add(1, Relaxed);
                        return (r.value.clone(), true);
                    }
                    Some(Slot::InFlight(g)) => g.clone(),
                    None => {
                        let g = Arc::new(Gate::new());
                        map.insert(key.clone(), Slot::InFlight(g.clone()));
                        drop(map);
                        // Owner path: compute, publish, fill the gate. The
                        // guard abandons the gate if `compute` unwinds so
                        // waiters retry instead of hanging.
                        let mut guard = AbandonOnUnwind {
                            cache: self,
                            key: &key,
                            gate: &g,
                            armed: true,
                        };
                        let v = (compute.take().expect("compute consumed twice"))();
                        guard.armed = false;
                        let bytes = (self.size_of)(&v);
                        if let Some(budget) = &self.budget {
                            budget.used.fetch_add(bytes, Relaxed);
                        }
                        let mut map = self.map.lock().unwrap();
                        map.insert(
                            key.clone(),
                            Slot::Ready(Ready {
                                value: v.clone(),
                                bytes,
                                // Freshest tick: under pressure the entry
                                // just computed is the last to go.
                                last_used: self.tick.fetch_add(1, Relaxed),
                            }),
                        );
                        self.enforce_budget(&mut map);
                        drop(map);
                        g.set(v.clone());
                        return (v, false);
                    }
                }
            };
            match gate.wait() {
                Some(v) => return (v, true),
                // The owner unwound; race to become the new owner.
                None => continue,
            }
        }
    }
}

/// Removes the in-flight entry and abandons its gate if the owning
/// computation unwinds.
struct AbandonOnUnwind<'a, K: Eq + Hash + Clone, V: Clone> {
    cache: &'a KeyedCache<K, V>,
    key: &'a K,
    gate: &'a Gate<V>,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for AbandonOnUnwind<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.map.lock().unwrap().remove(self.key);
            self.gate.abandon();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::time::Duration;

    #[test]
    fn computes_once_and_hits_after() {
        let c: KeyedCache<u64, u64> = KeyedCache::new();
        let runs = AtomicU64::new(0);
        let (v, hit) = c.get_or_compute(7, || {
            runs.fetch_add(1, Relaxed);
            42
        });
        assert_eq!((v, hit), (42, false));
        let (v, hit) = c.get_or_compute(7, || {
            runs.fetch_add(1, Relaxed);
            99
        });
        assert_eq!((v, hit), (42, true));
        assert_eq!(runs.load(Relaxed), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_askers_share_one_computation() {
        let c: Arc<KeyedCache<u64, u64>> = Arc::new(KeyedCache::new());
        let runs = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (c, runs, hits) = (c.clone(), runs.clone(), hits.clone());
                std::thread::spawn(move || {
                    let (v, hit) = c.get_or_compute(1, || {
                        // Slow compute: give the other threads time to pile
                        // onto the in-flight gate.
                        std::thread::sleep(Duration::from_millis(30));
                        runs.fetch_add(1, Relaxed);
                        7
                    });
                    if hit {
                        hits.fetch_add(1, Relaxed);
                    }
                    assert_eq!(v, 7);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(runs.load(Relaxed), 1, "exactly one computation");
        assert_eq!(hits.load(Relaxed), 7, "everyone else shared it");
    }

    #[test]
    fn unwinding_owner_does_not_strand_waiters() {
        let c: Arc<KeyedCache<u64, u64>> = Arc::new(KeyedCache::new());
        let c2 = c.clone();
        let owner = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(5, || {
                    std::thread::sleep(Duration::from_millis(20));
                    panic!("owner died");
                })
            }));
        });
        std::thread::sleep(Duration::from_millis(5));
        // This waiter piles onto the in-flight gate, sees it abandoned, and
        // becomes the new owner.
        let (v, _) = c.get_or_compute(5, || 11);
        assert_eq!(v, 11);
        owner.join().unwrap();
    }

    #[test]
    fn wait_deadline_times_out_then_still_sees_the_value() {
        use std::time::Instant;
        let g: Arc<Gate<u64>> = Arc::new(Gate::new());
        // Unfilled gate, expired deadline: immediate timeout, not a hang.
        assert_eq!(g.wait_deadline(Instant::now()), None);
        let g2 = g.clone();
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            g2.set(9);
        });
        // A deadline shorter than the fill sees a timeout…
        assert_eq!(
            g.wait_deadline(Instant::now() + Duration::from_millis(5)),
            None
        );
        // …and a later generous wait still gets the published value.
        assert_eq!(
            g.wait_deadline(Instant::now() + Duration::from_secs(5)),
            Some(Some(9))
        );
        setter.join().unwrap();
    }

    #[test]
    fn evict_forces_recompute_but_spares_inflight() {
        let c: Arc<KeyedCache<u64, u64>> = Arc::new(KeyedCache::new());
        let (v, _) = c.get_or_compute(3, || 30);
        assert_eq!(v, 30);
        assert!(c.evict(&3));
        assert!(!c.evict(&3), "already gone");
        let (v, hit) = c.get_or_compute(3, || 31);
        assert_eq!((v, hit), (31, false), "evicted entry recomputes");

        // An in-flight entry survives eviction attempts.
        let c2 = c.clone();
        let owner = std::thread::spawn(move || {
            c2.get_or_compute(4, || {
                std::thread::sleep(Duration::from_millis(40));
                44
            })
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(!c.evict(&4), "in-flight entries are not evictable");
        assert_eq!(owner.join().unwrap().0, 44);
    }

    #[test]
    fn distinct_keys_do_not_share() {
        let c: KeyedCache<(u64, u64), u64> = KeyedCache::new();
        let (a, _) = c.get_or_compute((1, 1), || 1);
        let (b, _) = c.get_or_compute((1, 2), || 2);
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
    }

    fn bounded_cache(limit: usize) -> (KeyedCache<u64, u64>, Arc<AtomicU64>) {
        let pressure = Arc::new(AtomicU64::new(0));
        let budget = CacheBudget::new(limit, pressure.clone());
        // Every value weighs 100 bytes: a limit of N*100 holds N entries.
        (KeyedCache::bounded(budget, |_| 100), pressure)
    }

    #[test]
    fn pressure_evicts_lru_first() {
        let (c, pressure) = bounded_cache(300);
        for k in 0..3 {
            c.get_or_compute(k, || k * 10);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(pressure.load(Relaxed), 0, "under budget: nothing shed");
        // Touch key 0 so key 1 becomes the LRU, then overflow.
        c.get_or_compute(0, || 999);
        c.get_or_compute(3, || 30);
        assert_eq!(pressure.load(Relaxed), 1);
        assert_eq!(c.len(), 3);
        let (v, hit) = c.get_or_compute(1, || 777);
        assert_eq!((v, hit), (777, false), "LRU key 1 was the one evicted");
        let (v, hit) = c.get_or_compute(0, || 888);
        assert_eq!((v, hit), (0, true), "recently touched key 0 survived");
    }

    #[test]
    fn budget_accounting_tracks_inserts_and_evictions() {
        let pressure = Arc::new(AtomicU64::new(0));
        let budget = CacheBudget::new(usize::MAX, pressure.clone());
        let c: KeyedCache<u64, u64> = KeyedCache::bounded(budget.clone(), |_| 100);
        assert_eq!(budget.bytes_used(), 0);
        c.get_or_compute(1, || 1);
        c.get_or_compute(2, || 2);
        assert_eq!(budget.bytes_used(), 200);
        assert!(c.evict(&1));
        assert_eq!(budget.bytes_used(), 100, "explicit evict refunds bytes");
        assert_eq!(pressure.load(Relaxed), 0, "no pressure under MAX limit");
    }

    #[test]
    fn shared_budget_spans_caches_and_spares_inflight() {
        let pressure = Arc::new(AtomicU64::new(0));
        let budget = CacheBudget::new(250, pressure.clone());
        let a: Arc<KeyedCache<u64, u64>> = Arc::new(KeyedCache::bounded(budget.clone(), |_| 100));
        let b: KeyedCache<u64, u64> = KeyedCache::bounded(budget.clone(), |_| 100);
        a.get_or_compute(1, || 1);
        b.get_or_compute(1, || 1);
        assert_eq!(budget.bytes_used(), 200, "both caches charge one budget");
        // An in-flight computation in `a` holds no bytes and cannot be shed:
        // when `b`'s insert overflows the budget, `b` evicts its own entry.
        let a2 = a.clone();
        let owner = std::thread::spawn(move || {
            a2.get_or_compute(9, || {
                std::thread::sleep(Duration::from_millis(40));
                99
            })
        });
        std::thread::sleep(Duration::from_millis(10));
        b.get_or_compute(2, || 2);
        assert_eq!(pressure.load(Relaxed), 1);
        assert_eq!(b.len(), 1, "b shed its own LRU entry");
        assert_eq!(a.len(), 2, "a's ready + in-flight entries untouched");
        assert_eq!(owner.join().unwrap(), (99, false));
    }

    #[test]
    fn entry_larger_than_budget_still_serves_then_goes() {
        let (c, pressure) = bounded_cache(50);
        // 100-byte value against a 50-byte budget: the caller still gets the
        // value (bounded wins, but never a wrong/missing answer)…
        let (v, hit) = c.get_or_compute(1, || 11);
        assert_eq!((v, hit), (11, false));
        // …and the entry itself is shed, so the next asker recomputes.
        assert_eq!(pressure.load(Relaxed), 1);
        let (v, hit) = c.get_or_compute(1, || 12);
        assert_eq!((v, hit), (12, false));
    }
}
