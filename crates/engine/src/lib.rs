//! `fdi-engine` — the concurrent batch-optimization engine.
//!
//! The sequential pipeline in [`fdi_core`] optimizes one program under one
//! configuration. The experiments that matter — Table 1, the Fig. 6
//! threshold sweep, policy ablations — run the pipeline over a *batch*:
//! many programs × many configurations, where most of the cost (the front
//! end, and above all the polyvariant flow analysis) depends on only part of
//! the configuration. This crate runs such batches on a worker pool and
//! makes the redundancy structural, with a content-addressed artifact
//! cache:
//!
//! * **parse artifacts** keyed by [`source_fingerprint`] — one front-end run
//!   per distinct source, shared by every configuration;
//! * **flow analyses** keyed by (source fingerprint,
//!   [`PipelineConfig::analysis_fingerprint`]) — one CFA per (program,
//!   analysis policy), shared by every inline threshold. A six-threshold
//!   sweep analyzes each program exactly once.
//!
//! Both caches deduplicate *in-flight* work (see [`cache`]): concurrent
//! jobs needing the same artifact block on one computation instead of
//! racing. Whole jobs deduplicate the same way: submitting a job identical
//! (by [`PipelineConfig::fingerprint`]) to one already in flight returns a
//! handle to the existing run.
//!
//! Fault isolation follows the pipeline's own contract: every phase runs
//! contained, a panicking or over-budget job degrades through
//! [`PipelineOutput::health`] (or resolves to a typed [`PipelineError`])
//! without poisoning the pool, and deterministic failures are negatively
//! cached like successes.
//!
//! Determinism: the engine's sweeps reuse the sequential sweep's own
//! order-independent pieces ([`fdi_core::execute_cell`]) and funnel results
//! through the same order-dependent assembly
//! ([`fdi_core::assemble_sweep_rows`]), so an engine sweep at any worker
//! count is byte-identical to the sequential one.
//!
//! Deadline caveat: a configuration with a wall-clock deadline (on the
//! budget or the analysis limits) is anchored to *its* run's clock, so such
//! jobs bypass the analysis cache and job dedup entirely (counted in
//! [`EngineStats::analysis_uncached`]); only the deadline-independent parse
//! artifact is shared.

mod cache;
mod pool;
mod stats;

pub use stats::EngineStats;

use cache::{Gate, KeyedCache};
use fdi_core::{
    analyze_contained, assemble_sweep_rows, execute_cell, optimize_program,
    optimize_program_with_analysis, parse_contained, source_fingerprint, FlowAnalysis, Outcome,
    Phase, PipelineConfig, PipelineError, PipelineOutput, Program, RunConfig, SweepCell, SweepRow,
};
use pool::{Pool, Task};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sizing of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Bounded queue slots *per worker*; a full shard blocks submission
    /// (backpressure). Defaults to 64.
    pub queue_cap: usize,
}

impl EngineConfig {
    /// `workers` threads with the default queue capacity.
    pub fn with_workers(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_cap: 64,
        }
    }
}

/// One unit of batch work: a source program under a pipeline configuration.
#[derive(Debug, Clone)]
pub struct Job {
    /// Scheme source text. `Arc<str>` so a sweep's jobs share one copy.
    pub source: Arc<str>,
    /// The pipeline configuration to run it under.
    pub config: PipelineConfig,
}

impl Job {
    /// A job optimizing `source` under `config`.
    pub fn new(source: impl Into<Arc<str>>, config: PipelineConfig) -> Job {
        Job {
            source: source.into(),
            config,
        }
    }

    /// The job's identity: (source fingerprint, whole-config fingerprint).
    /// Jobs with equal keys produce identical outputs and are deduplicated
    /// in flight.
    pub fn key(&self) -> (u64, u64) {
        (source_fingerprint(&self.source), self.config.fingerprint())
    }

    /// Does this job carry a wall-clock deadline? Deadlines are anchored to
    /// the run's own clock, so such jobs share no analysis and dedup with
    /// nothing.
    fn has_deadline(&self) -> bool {
        self.config.budget.deadline.is_some() || self.config.limits.deadline.is_some()
    }
}

/// What a job resolves to: the pipeline's output (possibly degraded — see
/// [`PipelineOutput::health`]) behind an `Arc` shared with every
/// deduplicated waiter, or the typed error of a source that never produced
/// a program.
pub type JobResult = Result<Arc<PipelineOutput>, PipelineError>;

type ExecResult = Result<Outcome, PipelineError>;
type JobKey = (u64, u64);

/// A claim on a submitted job's eventual result.
#[derive(Debug)]
pub struct JobHandle {
    gate: Arc<Gate<JobResult>>,
    /// True when this submission coalesced onto an identical in-flight job.
    pub deduped: bool,
}

impl JobHandle {
    /// Blocks until the job finishes.
    pub fn wait(&self) -> JobResult {
        self.gate
            .wait()
            .expect("engine job gates are always filled")
    }
}

/// Shared engine state: every worker task holds an `Arc<Inner>`.
struct Inner {
    stats: stats::StatsInner,
    /// Parse artifacts by source fingerprint.
    programs: KeyedCache<u64, Result<Arc<Program>, PipelineError>>,
    /// Flow analyses by (source fingerprint, analysis fingerprint).
    analyses: KeyedCache<JobKey, Result<Arc<FlowAnalysis>, PipelineError>>,
    /// In-flight jobs by whole-job key, for submission dedup.
    inflight: Mutex<HashMap<JobKey, Arc<Gate<JobResult>>>>,
    /// Round-robin shard assignment for execution tasks.
    exec_shard: AtomicU64,
}

/// The concurrent batch-optimization engine.
///
/// Dropping the engine closes its queues and joins the workers; work
/// already submitted still runs to completion first, so outstanding
/// [`JobHandle`]s always resolve.
pub struct Engine {
    inner: Arc<Inner>,
    pool: Pool,
}

impl Engine {
    /// An engine sized by `config`.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            inner: Arc::new(Inner {
                stats: stats::StatsInner::default(),
                programs: KeyedCache::new(),
                analyses: KeyedCache::new(),
                inflight: Mutex::new(HashMap::new()),
                exec_shard: AtomicU64::new(0),
            }),
            pool: Pool::new(config.workers, config.queue_cap),
        }
    }

    /// An engine with `jobs` workers (the `--jobs N` entry point).
    pub fn with_jobs(jobs: usize) -> Engine {
        Engine::new(EngineConfig::with_workers(jobs))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// A point-in-time snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        self.inner.stats.snapshot()
    }

    /// Submits a job, blocking only when the target shard's queue is full.
    ///
    /// An identical deadline-free job already in flight is joined instead
    /// of re-run: the returned handle (marked `deduped`) resolves to the
    /// same shared output.
    pub fn submit(&self, job: Job) -> JobHandle {
        let key = job.key();
        let dedupable = !job.has_deadline();
        let gate = Arc::new(Gate::new());
        if dedupable {
            match self.inner.inflight.lock().unwrap().entry(key) {
                Entry::Occupied(e) => {
                    self.inner.stats.jobs_deduped.fetch_add(1, Relaxed);
                    return JobHandle {
                        gate: e.get().clone(),
                        deduped: true,
                    };
                }
                Entry::Vacant(e) => {
                    e.insert(gate.clone());
                }
            }
        }
        self.inner.stats.jobs_submitted.fetch_add(1, Relaxed);
        self.inner.stats.enqueue();
        let inner = self.inner.clone();
        let task_gate = gate.clone();
        let task: Task = Box::new(move || {
            inner.stats.dequeue();
            // run_job is built from contained phases; the catch here is the
            // backstop that keeps a stray unwind from stranding waiters.
            let result =
                catch_unwind(AssertUnwindSafe(|| run_job(&inner, &job))).unwrap_or_else(|_| {
                    Err(PipelineError::PhasePanicked {
                        phase: Phase::Frontend,
                        message: "engine job unwound outside phase containment".into(),
                    })
                });
            if dedupable {
                inner.inflight.lock().unwrap().remove(&key);
            }
            // Count completion before publishing: anyone woken by the gate
            // must already see this job in `jobs_completed`.
            inner.stats.jobs_completed.fetch_add(1, Relaxed);
            task_gate.set(result);
        });
        self.pool.submit(key.0 ^ key.1.rotate_left(32), task);
        JobHandle {
            gate,
            deduped: false,
        }
    }

    /// Submits every job, then waits for all of them; results come back in
    /// submission order.
    pub fn run_batch(&self, jobs: impl IntoIterator<Item = Job>) -> Vec<JobResult> {
        let handles: Vec<JobHandle> = jobs.into_iter().map(|j| self.submit(j)).collect();
        handles.iter().map(JobHandle::wait).collect()
    }

    /// The engine-backed threshold sweep: semantically identical (and
    /// byte-identical in its rows) to [`fdi_core::sweep`], but with the
    /// per-threshold pipelines and VM executions spread over the pool and
    /// the analysis shared through the artifact cache.
    ///
    /// # Errors
    ///
    /// Exactly [`fdi_core::sweep`]'s: a front end rejection, or a
    /// threshold-0 baseline that fails to execute.
    pub fn sweep(
        &self,
        src: &str,
        thresholds: &[usize],
        config: &PipelineConfig,
        run_config: &RunConfig,
    ) -> Result<Vec<SweepRow>, PipelineError> {
        self.sweep_many(&[src], thresholds, config, run_config)
            .pop()
            .expect("one sweep per source")
    }

    /// Sweeps many programs at once — the shape of the Table 1 / Fig. 6
    /// experiments. Every (source × threshold) pipeline job is submitted up
    /// front so the pool works across programs, not one program at a time.
    /// Results come back in `sources` order.
    pub fn sweep_many(
        &self,
        sources: &[&str],
        thresholds: &[usize],
        config: &PipelineConfig,
        run_config: &RunConfig,
    ) -> Vec<Result<Vec<SweepRow>, PipelineError>> {
        // Threshold 0 always runs first: it anchors normalization.
        let mut all: Vec<usize> = vec![0];
        all.extend(thresholds.iter().copied().filter(|&t| t != 0));

        // Phase 1: submit every pipeline job.
        let handles: Vec<Vec<JobHandle>> = sources
            .iter()
            .map(|&src| {
                let source: Arc<str> = Arc::from(src);
                all.iter()
                    .map(|&t| {
                        self.submit(Job {
                            source: source.clone(),
                            config: PipelineConfig {
                                threshold: t,
                                ..*config
                            },
                        })
                    })
                    .collect()
            })
            .collect();

        // Phase 2: as each source's pipelines finish, put its executions on
        // the pool. A job-level error (front end rejection) fails that
        // source's sweep, matching the sequential contract.
        type PendingCell = (usize, Arc<PipelineOutput>, Arc<Gate<ExecResult>>);
        let pending: Vec<Result<Vec<PendingCell>, PipelineError>> = handles
            .iter()
            .map(|source_handles| {
                let mut cells = Vec::with_capacity(all.len());
                for (handle, &t) in source_handles.iter().zip(&all) {
                    let output = handle.wait()?;
                    let gate = self.submit_exec(output.clone(), t, run_config);
                    cells.push((t, output, gate));
                }
                Ok(cells)
            })
            .collect();

        // Phase 3: collect executions and fold through the same assembly
        // the sequential sweep uses.
        pending
            .into_iter()
            .map(|cells| {
                let cells = cells?
                    .into_iter()
                    .map(|(threshold, output, gate)| SweepCell {
                        threshold,
                        output,
                        exec: gate.wait().expect("engine exec gates are always filled"),
                    })
                    .collect();
                assemble_sweep_rows(cells, run_config)
            })
            .collect()
    }

    /// Puts one sweep cell's VM execution on the pool.
    fn submit_exec(
        &self,
        output: Arc<PipelineOutput>,
        threshold: usize,
        run_config: &RunConfig,
    ) -> Arc<Gate<ExecResult>> {
        let gate = Arc::new(Gate::new());
        let task_gate = gate.clone();
        let inner = self.inner.clone();
        let run_config = *run_config;
        self.inner.stats.enqueue();
        let task: Task = Box::new(move || {
            inner.stats.dequeue();
            let started = Instant::now();
            let exec = catch_unwind(AssertUnwindSafe(|| {
                execute_cell(&output, threshold, &run_config)
            }))
            .unwrap_or_else(|_| {
                Err(PipelineError::PhasePanicked {
                    phase: Phase::Execution,
                    message: "engine execution unwound outside phase containment".into(),
                })
            });
            stats::StatsInner::add_time(&inner.stats.execute_ns, started.elapsed());
            task_gate.set(exec);
        });
        let shard = self.inner.exec_shard.fetch_add(1, Relaxed);
        self.pool.submit(shard, task);
        gate
    }
}

/// One job, start to finish, on a worker thread: parse through the artifact
/// cache, analyze through the artifact cache (unless a deadline forbids
/// sharing), then run the inline + simplify tail in-process.
fn run_job(inner: &Inner, job: &Job) -> JobResult {
    let src_key = source_fingerprint(&job.source);

    let parse_started = Instant::now();
    let source = job.source.clone();
    let (parsed, hit) = inner
        .programs
        .get_or_compute(src_key, move || parse_contained(&source).map(Arc::new));
    stats::StatsInner::cache_event(&inner.stats.parse_hits, &inner.stats.parse_misses, hit);
    stats::StatsInner::add_time(&inner.stats.parse_ns, parse_started.elapsed());
    let program = parsed?;

    let output = if job.has_deadline() {
        // The deadline anchors to this run's clock: no artifact of the
        // analysis phase can be shared, so run the whole pipeline in-process.
        inner.stats.analysis_uncached.fetch_add(1, Relaxed);
        let started = Instant::now();
        let out = optimize_program(&program, &job.config)
            .expect("optimize_program degrades instead of failing");
        stats::StatsInner::add_time(&inner.stats.transform_ns, started.elapsed());
        out
    } else {
        let analysis_started = Instant::now();
        let analysis_program = program.clone();
        let config = job.config;
        let (analysis, hit) = inner
            .analyses
            .get_or_compute((src_key, job.config.analysis_fingerprint()), move || {
                analyze_contained(&analysis_program, &config).map(Arc::new)
            });
        stats::StatsInner::cache_event(
            &inner.stats.analysis_hits,
            &inner.stats.analysis_misses,
            hit,
        );
        stats::StatsInner::add_time(&inner.stats.analysis_ns, analysis_started.elapsed());

        let transform_started = Instant::now();
        let shared = match &analysis {
            Ok(flow) => Ok(&**flow),
            Err(e) => Err(e),
        };
        let out = optimize_program_with_analysis(&program, &job.config, shared);
        stats::StatsInner::add_time(&inner.stats.transform_ns, transform_started.elapsed());
        out
    };
    Ok(Arc::new(output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_core::Budget;

    const SRC: &str = "(define (sq x) (* x x)) (cons (sq 2) (sq 3))";

    #[test]
    fn identical_inflight_jobs_dedup_onto_one_run() {
        // One worker: the first job occupies it, so the next two identical
        // submissions are still queued/in-flight when dedup is checked.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_cap: 8,
        });
        let blocker = engine.submit(Job::new(SRC, PipelineConfig::with_threshold(0)));
        let first = engine.submit(Job::new(SRC, PipelineConfig::with_threshold(200)));
        let second = engine.submit(Job::new(SRC, PipelineConfig::with_threshold(200)));
        assert!(!first.deduped);
        assert!(second.deduped, "identical in-flight job must coalesce");
        let (a, b) = (first.wait().unwrap(), second.wait().unwrap());
        assert!(Arc::ptr_eq(&a, &b), "deduped handles share one output");
        blocker.wait().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.jobs_submitted, 2);
        assert_eq!(stats.jobs_deduped, 1);
        assert_eq!(stats.jobs_completed, 2);
    }

    #[test]
    fn thresholds_share_one_analysis() {
        let engine = Engine::with_jobs(4);
        let results = engine.run_batch(
            [0, 100, 200, 400].map(|t| Job::new(SRC, PipelineConfig::with_threshold(t))),
        );
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = engine.stats();
        assert_eq!(stats.parse_misses, 1, "one front-end run");
        assert_eq!(stats.analysis_misses, 1, "one CFA for all four thresholds");
        assert_eq!(stats.analysis_hits, 3);
        assert_eq!(stats.analysis_uncached, 0);
    }

    #[test]
    fn over_budget_job_degrades_without_poisoning_the_pool() {
        let engine = Engine::with_jobs(2);
        let starved = PipelineConfig {
            budget: Budget::default().with_fuel(0),
            ..PipelineConfig::with_threshold(200)
        };
        let degraded = engine.submit(Job::new(SRC, starved)).wait().unwrap();
        assert!(degraded.health.degraded(), "zero fuel must degrade");
        // The pool still serves healthy work afterwards.
        let healthy = engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(200)))
            .wait()
            .unwrap();
        assert!(!healthy.health.degraded());
        assert_eq!(engine.stats().jobs_completed, 2);
    }

    #[test]
    fn frontend_failures_are_negatively_cached() {
        let engine = Engine::with_jobs(2);
        let bad = "(define (f x) (* x x"; // unbalanced
        let first = engine
            .submit(Job::new(bad, PipelineConfig::with_threshold(0)))
            .wait();
        let second = engine
            .submit(Job::new(bad, PipelineConfig::with_threshold(200)))
            .wait();
        assert!(matches!(first, Err(PipelineError::Frontend(_))));
        assert!(matches!(second, Err(PipelineError::Frontend(_))));
        let stats = engine.stats();
        assert_eq!(stats.parse_misses, 1, "the rejection is cached too");
        assert_eq!(stats.parse_hits, 1);
    }

    #[test]
    fn deadline_jobs_bypass_the_analysis_cache() {
        let engine = Engine::with_jobs(2);
        let deadline = PipelineConfig {
            budget: Budget::default().with_deadline(std::time::Duration::from_secs(60)),
            ..PipelineConfig::with_threshold(200)
        };
        let out = engine.submit(Job::new(SRC, deadline)).wait().unwrap();
        assert!(!out.health.degraded(), "a generous deadline still succeeds");
        let stats = engine.stats();
        assert_eq!(stats.analysis_uncached, 1);
        assert_eq!(stats.analysis_hits + stats.analysis_misses, 0);
        // And such jobs never dedup, even against an identical twin.
        let a = engine.submit(Job::new(SRC, deadline));
        let b = engine.submit(Job::new(SRC, deadline));
        assert!(!a.deduped && !b.deduped);
        a.wait().unwrap();
        b.wait().unwrap();
    }

    #[test]
    fn engine_sweep_matches_sequential_sweep() {
        let engine = Engine::with_jobs(4);
        let config = PipelineConfig::default();
        let run_config = RunConfig::default();
        let thresholds = [100, 400];
        let ours = engine
            .sweep(SRC, &thresholds, &config, &run_config)
            .unwrap();
        let theirs = fdi_core::sweep(SRC, &thresholds, &config, &run_config).unwrap();
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(&theirs) {
            assert_eq!(a.threshold, b.threshold);
            assert_eq!(a.value, b.value);
            assert_eq!(format!("{:?}", a.counters), format!("{:?}", b.counters));
            assert_eq!(a.norm_total.to_bits(), b.norm_total.to_bits());
            assert_eq!(a.size_ratio.to_bits(), b.size_ratio.to_bits());
        }
    }

    #[test]
    fn sweep_reports_frontend_errors_per_source() {
        let engine = Engine::with_jobs(2);
        let results = engine.sweep_many(
            &[SRC, "(oops"],
            &[200],
            &PipelineConfig::default(),
            &RunConfig::default(),
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PipelineError::Frontend(_))));
    }
}
