//! `fdi-engine` — the concurrent batch-optimization engine.
//!
//! The sequential pipeline in [`fdi_core`] optimizes one program under one
//! configuration. The experiments that matter — Table 1, the Fig. 6
//! threshold sweep, policy ablations — run the pipeline over a *batch*:
//! many programs × many configurations, where most of the cost (the front
//! end, and above all the polyvariant flow analysis) depends on only part of
//! the configuration. This crate runs such batches on a worker pool and
//! makes the redundancy structural, with a content-addressed artifact
//! cache:
//!
//! * **parse artifacts** keyed by [`source_fingerprint`] — one front-end run
//!   per distinct source, shared by every configuration;
//! * **flow analyses** keyed by (source fingerprint,
//!   [`PipelineConfig::analysis_fingerprint`]) — one CFA per (program,
//!   analysis policy), shared by every inline threshold. A six-threshold
//!   sweep analyzes each program exactly once.
//!
//! Both caches deduplicate *in-flight* work (see [`cache`]): concurrent
//! jobs needing the same artifact block on one computation instead of
//! racing. Whole jobs deduplicate the same way: submitting a job identical
//! (by [`PipelineConfig::fingerprint`]) to one already in flight returns a
//! handle to the existing run.
//!
//! # Supervision
//!
//! Every job runs under a supervisor that classifies failures by
//! [`PipelineError::is_transient`]: injected faults, phase panics, oracle
//! rejections, and wall-clock deadline exhaustion are *transient* (a retry
//! can genuinely clear them — deadlines re-anchor, fault seeds advance);
//! everything else is deterministic and returned at once. Transient
//! failures are retried up to [`EngineConfig::max_retries`] times with a
//! deterministic linear backoff, each attempt re-seeding the job's fault
//! plan (`seed + attempt`) so an injected failure does not trivially recur.
//! A job that exhausts its retries is **quarantined**: its last result is
//! still returned (degraded outputs are outputs), but the job lands on the
//! poison list ([`Engine::poisoned`]) and in
//! [`EngineStats::jobs_quarantined`] so a batch report can name it.
//!
//! The pool supervises its own threads the same way: a worker killed by the
//! `worker-panic` chaos seam is respawned (capacity never degrades) and the
//! task it was holding is rescued and re-run, so no submitted job is lost.
//!
//! # Chaos
//!
//! An engine built with an enabled [`EngineConfig::faults`] plan threads a
//! shared [`FaultInjector`] through its cache and pool seams: cache owners
//! abandoned mid-fill, freshly used entries evicted, stored artifact
//! checksums corrupted (and caught by a fingerprint recheck before reuse),
//! workers killed, dequeues delayed. All of it is deterministic in the seed
//! and none of it may change what a batch computes — only how much work
//! computing it takes. Cached parse artifacts carry a checksum of their
//! canonical unparse exactly when chaos is enabled, so corruption detection
//! costs nothing in production.
//!
//! Determinism: the engine's sweeps reuse the sequential sweep's own
//! order-independent pieces ([`fdi_core::execute_cell`]) and funnel results
//! through the same order-dependent assembly
//! ([`fdi_core::assemble_sweep_rows`]), so an engine sweep at any worker
//! count is byte-identical to the sequential one.
//!
//! Bypass caveat: a job with a wall-clock deadline (on the budget or the
//! analysis limits) is anchored to *its* run's clock, and a job with its
//! own fault plan replays injections private to that run; neither may share
//! artifacts or dedup with anything. Such jobs bypass every cache (counted
//! in [`EngineStats::analysis_uncached`]) and — since cache keys are their
//! only consumer — skip fingerprint computation entirely
//! ([`EngineStats::fingerprints_computed`] stays flat).

mod cache;
mod pool;
mod stats;
mod store;

pub use stats::{EngineStats, PassStat, TRACKED_PASSES};
pub use store::{fsck, FsckReport, StoredOutput};

use cache::{BudgetLedger, CacheBudget, Gate, KeyedCache};
use fdi_core::faults::{FaultInjector, FaultPlan, FaultPoint};
use fdi_core::{
    analyze_contained, assemble_sweep_rows, execute_cell, optimize_program_runtime,
    optimize_program_with_analysis_runtime, optimize_runtime, parse_contained, source_fingerprint,
    FlowAnalysis, InlineGuide, Outcome, Phase, PipelineConfig, PipelineError, PipelineOutput,
    PipelineRuntime, Program, RunConfig, SpecializationCache, SweepCell, SweepRow,
};
use fdi_telemetry::{DecisionTotals, Telemetry};
use pool::{Pool, Task};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sizing and supervision policy of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Bounded queue slots *per worker*; a full shard blocks submission
    /// (backpressure). Defaults to 8 — a deep backlog only inflates the
    /// queue high-water mark and submission latency, it cannot make the
    /// workers faster, and on hosts with little parallelism a cold batch
    /// behind long queues was measurably slower than sequential.
    pub queue_cap: usize,
    /// The engine-level chaos plan: cache, pool, and disk-store seams
    /// (`cache-abandon`, `cache-evict`, `cache-corrupt`, `worker-panic`,
    /// `queue-delay`, `store-write`, `store-read`, `store-corrupt`) fire
    /// from one injector shared across workers. Disabled by default.
    pub faults: FaultPlan,
    /// Retries granted to a job whose failure is classified transient.
    /// Defaults to 2 (three attempts total).
    pub max_retries: u32,
    /// Base of the deterministic linear backoff between retries (attempt
    /// `k` sleeps `k × retry_backoff`). Defaults to 10 ms.
    pub retry_backoff: Duration,
    /// Root of the disk-backed artifact store ([`crate::store`]). `None`
    /// (the default) keeps the engine memory-only; `Some(dir)` persists
    /// every fully healthy, cache-eligible output so a restarted engine
    /// can answer from disk ([`Engine::lookup_stored`]). An unopenable
    /// root is reported and the store disabled — never a construction
    /// failure.
    pub store: Option<PathBuf>,
    /// Byte budget shared by the in-memory artifact caches (parses and
    /// analyses). `None` (the default) leaves them unbounded; `Some(n)`
    /// turns on byte accounting with least-recently-used eviction once the
    /// combined footprint exceeds `n` — pressure evictions are counted in
    /// [`EngineStats::cache_evictions_pressure`], and in-flight entries are
    /// exempt (evicting one would strand its waiters).
    pub cache_bytes: Option<usize>,
    /// Byte quota for the disk store. `None` (the default) is unbounded;
    /// `Some(n)` makes each write run a least-recently-used GC until the
    /// store fits, counted in [`EngineStats::store_gc_evictions`]. The GC
    /// holds shard write locks, so it never deletes an artifact mid-read.
    pub store_bytes: Option<u64>,
    /// A loaded call-site profile to apply engine-wide. Every submitted job
    /// whose source fingerprint matches is marked profile-guided (splitting
    /// its cache key and ordering its inline budget hot-first); a mismatch
    /// leaves the job static and emits a `profile.stale` instant. `None`
    /// (the default) runs everything in static order.
    pub profile: Option<EngineProfile>,
}

/// A verified profile artifact in engine form: the staleness key, the
/// content fingerprint to fold into job cache keys, and the benefit guide.
///
/// The engine does not read profile artifacts itself — the caller (the CLI,
/// via `fdi-profile`) loads and verifies the artifact and hands over this
/// distilled form, keeping the engine decoupled from the on-disk format.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// [`source_fingerprint`] of the source the profile was collected from.
    pub source_fp: u64,
    /// Content fingerprint of the artifact (`Profile::fingerprint`).
    pub fingerprint: u64,
    /// The benefit-ordered guide distilled from the profile.
    pub guide: Arc<InlineGuide>,
}

impl EngineConfig {
    /// `workers` threads with the default queue capacity.
    pub fn with_workers(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_cap: 8,
            faults: FaultPlan::default(),
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            store: None,
            cache_bytes: None,
            store_bytes: None,
            profile: None,
        }
    }
}

/// One unit of batch work: a source program under a pipeline configuration.
#[derive(Debug, Clone)]
pub struct Job {
    /// Scheme source text. `Arc<str>` so a sweep's jobs share one copy.
    pub source: Arc<str>,
    /// The pipeline configuration to run it under.
    pub config: PipelineConfig,
    /// Request-scoped trace id, echoed into the job's telemetry span so a
    /// serve request can be joined against the engine's trace. Correlation
    /// only: never part of [`Job::key`], never influences the output.
    pub trace: Option<u64>,
}

impl Job {
    /// A job optimizing `source` under `config`.
    pub fn new(source: impl Into<Arc<str>>, config: PipelineConfig) -> Job {
        Job {
            source: source.into(),
            config,
            trace: None,
        }
    }

    /// The same job, carrying `trace` as its correlation id.
    pub fn with_trace(mut self, trace: u64) -> Job {
        self.trace = Some(trace);
        self
    }

    /// The job's identity: (source fingerprint, whole-config fingerprint).
    /// Jobs with equal keys produce identical outputs and are deduplicated
    /// in flight.
    pub fn key(&self) -> (u64, u64) {
        (source_fingerprint(&self.source), self.config.fingerprint())
    }

    /// Does this job bypass the artifact caches and job dedup? True for
    /// deadline-bearing jobs (the deadline anchors to the run's own clock)
    /// and for jobs with their own fault plan (injections are private to
    /// the run). Bypass jobs never compute a fingerprint — cache keys are
    /// the only thing fingerprints are for.
    fn bypasses_cache(&self) -> bool {
        self.config.budget.deadline.is_some()
            || self.config.limits.deadline.is_some()
            || self.config.faults.enabled()
    }
}

/// What a job resolves to: the pipeline's output (possibly degraded — see
/// [`PipelineOutput::health`]) behind an `Arc` shared with every
/// deduplicated waiter, or the typed error of a source that never produced
/// a program.
pub type JobResult = Result<Arc<PipelineOutput>, PipelineError>;

type ExecResult = Result<Outcome, PipelineError>;
type JobKey = (u64, u64);

/// A job that exhausted its retries: an entry on the engine's poison list.
#[derive(Debug, Clone)]
pub struct PoisonedJob {
    /// The job's source text.
    pub source: Arc<str>,
    /// The inline threshold it ran under (to tell sweep siblings apart).
    pub threshold: usize,
    /// Attempts made (initial run + retries).
    pub attempts: u32,
    /// The transient failure that kept recurring.
    pub error: PipelineError,
}

/// The engine's resource posture at a point in time — what `fdi serve`'s
/// `health` op reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceStatus {
    /// Ready-entry bytes held by the in-memory caches (zero when byte
    /// accounting is off).
    pub cache_bytes_used: u64,
    /// The configured [`EngineConfig::cache_bytes`] budget, if any.
    pub cache_bytes_limit: Option<u64>,
    /// Disk-store footprint; `None` when no store is attached.
    pub store_bytes_used: Option<u64>,
    /// The configured [`EngineConfig::store_bytes`] quota, if any.
    pub store_bytes_limit: Option<u64>,
    /// True when repeated write failures have degraded the engine to
    /// memory-only operation (answers still flow; nothing persists until a
    /// probe write succeeds).
    pub store_degraded: bool,
}

/// A claim on a submitted job's eventual result.
#[derive(Debug)]
pub struct JobHandle {
    gate: Arc<Gate<JobResult>>,
    /// True when this submission coalesced onto an identical in-flight job.
    pub deduped: bool,
}

impl JobHandle {
    /// Blocks until the job finishes.
    pub fn wait(&self) -> JobResult {
        self.gate
            .wait()
            .expect("engine job gates are always filled")
    }

    /// Waits at most `timeout` for the job. `None` means the deadline
    /// passed first: the job keeps running — and still fills the caches and
    /// the disk store — but this waiter gives up, which is how serve mode
    /// turns an over-budget request into a typed timeout instead of a hung
    /// connection.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        self.gate
            .wait_deadline(Instant::now() + timeout)
            .map(|v| v.expect("engine job gates are always filled"))
    }
}

/// A cached front-end artifact. The checksum is the fingerprint of the
/// program's canonical unparse, computed only when engine chaos is enabled;
/// the `cache-corrupt` seam flips it, and the recheck on every hit catches
/// the mismatch and recomputes.
#[derive(Debug, Clone)]
struct ParseArtifact {
    program: Arc<Program>,
    checksum: Arc<AtomicU64>,
}

/// The content address of a parse artifact's payload.
fn artifact_checksum(program: &Program) -> u64 {
    source_fingerprint(&fdi_lang::unparse(program).to_string())
}

/// Consecutive store-write failures before the engine declares the store
/// unwritable and degrades to memory-only operation.
const STORE_DEGRADE_AFTER: u64 = 3;

/// While memory-only, every n-th would-be write probes the store so a
/// recovered disk (space freed, permissions fixed) re-enables persistence
/// without a restart.
const STORE_PROBE_EVERY: u64 = 16;

/// Estimated resident bytes of a cached parse artifact, for the byte
/// budget. Proportional to the AST arena, not exact — eviction ordering
/// only needs stable, cheap, comparable sizes. Contained errors are
/// negatively cached at a small flat charge.
fn parse_artifact_bytes(v: &Result<ParseArtifact, PipelineError>) -> usize {
    match v {
        Ok(a) => 128 + 48 * a.program.expr_count() + 24 * a.program.var_count(),
        Err(_) => 64,
    }
}

/// Estimated resident bytes of a cached flow analysis.
fn analysis_bytes(v: &Result<Arc<FlowAnalysis>, PipelineError>) -> usize {
    match v {
        Ok(a) => a.approx_bytes(),
        Err(_) => 64,
    }
}

/// Estimated resident bytes of a memoized sweep-cell execution.
fn exec_bytes(v: &ExecResult) -> usize {
    match v {
        Ok(o) => 128 + o.value.len() + o.output.len(),
        Err(_) => 64,
    }
}

/// Shared engine state: every worker task holds an `Arc<Inner>`.
struct Inner {
    stats: stats::StatsInner,
    /// Telemetry handle shared by every worker: job spans, cache instants,
    /// retry/quarantine instants, and the pipeline's own events all land in
    /// one collector, distinguished by worker thread id. Defaults to off.
    telemetry: Telemetry,
    /// The engine-level chaos injector, shared by caches and the pool.
    injector: Arc<FaultInjector>,
    /// Supervision policy (from [`EngineConfig`]).
    max_retries: u32,
    retry_backoff: Duration,
    /// Jobs that exhausted their retries.
    poisoned: Mutex<Vec<PoisonedJob>>,
    /// Parse artifacts by source fingerprint.
    programs: KeyedCache<u64, Result<ParseArtifact, PipelineError>>,
    /// Flow analyses by (source fingerprint, analysis fingerprint).
    analyses: KeyedCache<JobKey, Result<Arc<FlowAnalysis>, PipelineError>>,
    /// In-flight jobs by whole-job key, for submission dedup.
    inflight: Mutex<HashMap<JobKey, Arc<Gate<JobResult>>>>,
    /// Round-robin shard assignment for execution and bypass tasks.
    exec_shard: AtomicU64,
    /// The disk-backed artifact store, when [`EngineConfig::store`] is set.
    store: Option<store::DiskStore>,
    /// The shared cache byte budget, when [`EngineConfig::cache_bytes`] is
    /// set.
    cache_budget: Option<Arc<CacheBudget>>,
    /// Consecutive disk-store write failures. At
    /// [`STORE_DEGRADE_AFTER`] the engine stops attempting writes
    /// (memory-only operation) except for a periodic probe; any success
    /// resets it.
    store_consec_failures: AtomicU64,
    /// Writes skipped while memory-only, for probe scheduling.
    store_skipped: AtomicU64,
    /// The engine-wide profile, when [`EngineConfig::profile`] is set.
    profile: Option<EngineProfile>,
    /// The inliner's memoized-specialization cache, shared by every job on
    /// every worker. Byte-accounted against [`EngineConfig::cache_bytes`]
    /// when set; its hit/miss/evict counters surface as
    /// [`EngineStats::spec_hits`] and friends. Output-transparent by
    /// construction — it only changes how fast the inline pass runs.
    spec_cache: SpecializationCache,
    /// Parallel inlining units handed to each job's pipeline:
    /// `max(1, available_parallelism / workers)`, so inline-level threads
    /// never oversubscribe a pool that already saturates the host.
    inline_units: usize,
    /// Memoized sweep-cell executions, keyed by the optimized program's
    /// canonical unparse and the run configuration. Distinct thresholds
    /// routinely converge on the same optimized bytes, and a warm engine
    /// re-sweeps identical cells; both reuse the VM run. Never consulted
    /// when engine chaos is enabled.
    exec_cells: KeyedCache<u64, ExecResult>,
}

impl Inner {
    /// The shared acceleration state handed to every job's pipeline run.
    fn runtime(&self) -> PipelineRuntime<'_> {
        PipelineRuntime {
            spec_cache: Some(&self.spec_cache),
            inline_units: self.inline_units,
        }
    }

    /// Marks `job` profile-guided when the engine profile matches its
    /// source; a stale profile leaves the job static. With `record` set
    /// (submission) the outcome is counted and a stale match emits a
    /// `profile.stale` instant; without it (store lookups) the application
    /// is silent — keys must agree with submission, stats must not move.
    fn apply_profile(&self, job: &mut Job, record: bool) {
        let Some(p) = self.profile.as_ref() else {
            return;
        };
        if p.source_fp == source_fingerprint(&job.source) {
            job.config.profile_fp = Some(p.fingerprint);
            if record {
                self.stats.profile_applied.fetch_add(1, Relaxed);
            }
        } else if record {
            self.stats.profile_stale.fetch_add(1, Relaxed);
            self.telemetry.instant(
                "profile.stale",
                "profile",
                &[
                    ("profile_fp", format!("{:016x}", p.source_fp)),
                    (
                        "source_fp",
                        format!("{:016x}", source_fingerprint(&job.source)),
                    ),
                ],
            );
        }
    }
}

/// The guide for `job`, if it was marked profile-guided at submission.
/// Gated on the fingerprint so a job configured against a *different*
/// profile (or none) never picks up this engine's guide by accident.
fn job_guide<'a>(inner: &'a Inner, job: &Job) -> Option<&'a InlineGuide> {
    let p = inner.profile.as_ref()?;
    (job.config.profile_fp == Some(p.fingerprint)).then(|| p.guide.as_ref())
}

/// The concurrent batch-optimization engine.
///
/// Dropping the engine closes its queues and joins the workers; work
/// already submitted still runs to completion first, so outstanding
/// [`JobHandle`]s always resolve.
pub struct Engine {
    inner: Arc<Inner>,
    pool: Pool,
}

impl Engine {
    /// An engine sized by `config`.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::with_telemetry(config, &Telemetry::off())
    }

    /// An engine whose workers emit into `telemetry`'s collector: per-job
    /// spans, cache hit/miss instants, retry and quarantine instants, plus
    /// every job's own pipeline spans and decision events. Events carry the
    /// worker's thread id, so a chrome-trace export shows one track per
    /// worker.
    pub fn with_telemetry(config: EngineConfig, telemetry: &Telemetry) -> Engine {
        let stats = stats::StatsInner::default();
        let injector = Arc::new(FaultInjector::new(config.faults));
        let pool = Pool::with_chaos(
            config.workers,
            config.queue_cap,
            injector.clone(),
            stats.workers_respawned.clone(),
        );
        let disk = config.store.as_ref().and_then(|root| {
            match store::DiskStore::open(root, injector.clone()) {
                Ok(s) => Some(s.with_quota(config.store_bytes)),
                Err(e) => {
                    // Degrade to memory-only: a missing disk must never
                    // stop the engine from computing.
                    eprintln!("fdi-engine: disk store disabled: {e}");
                    None
                }
            }
        });
        let cache_budget = config
            .cache_bytes
            .map(|limit| CacheBudget::new(limit, stats.cache_evictions_pressure.clone()));
        let (programs, analyses, exec_cells) = match &cache_budget {
            Some(b) => (
                KeyedCache::bounded(b.clone(), parse_artifact_bytes),
                KeyedCache::bounded(b.clone(), analysis_bytes),
                KeyedCache::bounded(b.clone(), exec_bytes),
            ),
            None => (KeyedCache::new(), KeyedCache::new(), KeyedCache::new()),
        };
        let spec_cache = match &cache_budget {
            Some(b) => SpecializationCache::new(Box::new(BudgetLedger(b.clone()))),
            None => SpecializationCache::unbounded(),
        };
        let inline_units = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            / config.workers.max(1);
        Engine {
            inner: Arc::new(Inner {
                stats,
                telemetry: telemetry.clone(),
                injector,
                max_retries: config.max_retries,
                retry_backoff: config.retry_backoff,
                poisoned: Mutex::new(Vec::new()),
                programs,
                analyses,
                inflight: Mutex::new(HashMap::new()),
                exec_shard: AtomicU64::new(0),
                store: disk,
                cache_budget,
                store_consec_failures: AtomicU64::new(0),
                store_skipped: AtomicU64::new(0),
                profile: config.profile,
                spec_cache,
                inline_units: inline_units.max(1),
                exec_cells,
            }),
            pool,
        }
    }

    /// An engine with `jobs` workers (the `--jobs N` entry point).
    pub fn with_jobs(jobs: usize) -> Engine {
        Engine::new(EngineConfig::with_workers(jobs))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// A point-in-time snapshot of the engine's counters, with the
    /// resource gauges (cache and store footprints, GC evictions) filled
    /// from their owners.
    pub fn stats(&self) -> EngineStats {
        let mut snap = self.inner.stats.snapshot();
        let spec = self.inner.spec_cache.stats();
        snap.spec_hits = spec.hits;
        snap.spec_misses = spec.misses;
        snap.spec_evictions = spec.evictions;
        if let Some(budget) = &self.inner.cache_budget {
            snap.cache_bytes_used = budget.bytes_used() as u64;
        }
        if let Some(store) = &self.inner.store {
            snap.store_bytes_used = store.bytes_used();
            snap.store_gc_evictions = store.gc_evictions();
        }
        snap
    }

    /// The engine's resource posture, for serve-mode health reporting.
    pub fn resources(&self) -> ResourceStatus {
        ResourceStatus {
            cache_bytes_used: self
                .inner
                .cache_budget
                .as_ref()
                .map(|b| b.bytes_used() as u64)
                .unwrap_or(0),
            cache_bytes_limit: self
                .inner
                .cache_budget
                .as_ref()
                .and_then(|b| (b.limit() != usize::MAX).then_some(b.limit() as u64)),
            store_bytes_used: self.inner.store.as_ref().map(|s| s.bytes_used()),
            store_bytes_limit: self.inner.store.as_ref().and_then(|s| s.quota()),
            store_degraded: self.inner.store.is_some()
                && self.inner.store_consec_failures.load(Relaxed) >= STORE_DEGRADE_AFTER,
        }
    }

    /// The poison list: jobs that exhausted their retries, in quarantine
    /// order.
    pub fn poisoned(&self) -> Vec<PoisonedJob> {
        self.inner.poisoned.lock().unwrap().clone()
    }

    /// Consults the disk store for a persisted output of `job`, verifying
    /// the frame checksum on load. A corrupt frame is evicted (and counted
    /// in [`EngineStats::store_corruptions_detected`]) so the caller's
    /// recompute repaves it — the store never serves a guess. Bypass jobs
    /// (deadline or private fault plan) never consult the store, and an
    /// engine without [`EngineConfig::store`] always misses.
    pub fn lookup_stored(&self, job: &Job) -> Option<StoredOutput> {
        let store = self.inner.store.as_ref()?;
        if job.bypasses_cache() {
            return None;
        }
        // The store key must match what submission would compute, so the
        // engine profile is applied to a silent copy (no counters, no
        // instants — this is a read-only probe, not a submission).
        let mut keyed = job.clone();
        self.inner.apply_profile(&mut keyed, false);
        self.inner.stats.fingerprints_computed.fetch_add(2, Relaxed);
        let hit = store.load_counted(keyed.key(), &self.inner.stats);
        self.inner.telemetry.instant(
            "cache.store",
            "cache",
            &[("hit", hit.is_some().to_string())],
        );
        hit
    }

    /// Submits a job, blocking only when the target shard's queue is full.
    ///
    /// An identical cache-eligible job already in flight is joined instead
    /// of re-run: the returned handle (marked `deduped`) resolves to the
    /// same shared output. Bypass jobs (deadline or fault plan) are never
    /// deduplicated and never fingerprinted.
    pub fn submit(&self, mut job: Job) -> JobHandle {
        self.inner.apply_profile(&mut job, true);
        let gate = Arc::new(Gate::new());
        let key = if job.bypasses_cache() {
            None
        } else {
            self.inner.stats.fingerprints_computed.fetch_add(2, Relaxed);
            let key = job.key();
            match self.inner.inflight.lock().unwrap().entry(key) {
                Entry::Occupied(e) => {
                    self.inner.stats.jobs_deduped.fetch_add(1, Relaxed);
                    return JobHandle {
                        gate: e.get().clone(),
                        deduped: true,
                    };
                }
                Entry::Vacant(e) => {
                    e.insert(gate.clone());
                }
            }
            Some(key)
        };
        self.inner.stats.jobs_submitted.fetch_add(1, Relaxed);
        self.inner.stats.enqueue();
        let inner = self.inner.clone();
        let task_gate = gate.clone();
        let task: Task = Box::new(move || {
            inner.stats.dequeue();
            let result = supervise(&inner, &job);
            if let Some(key) = key {
                inner.inflight.lock().unwrap().remove(&key);
            }
            // Count completion before publishing: anyone woken by the gate
            // must already see this job in `jobs_completed`.
            inner.stats.jobs_completed.fetch_add(1, Relaxed);
            task_gate.set(result);
        });
        let shard = match key {
            Some((src, cfg)) => src ^ cfg.rotate_left(32),
            None => self.inner.exec_shard.fetch_add(1, Relaxed),
        };
        self.pool.submit(shard, task);
        JobHandle {
            gate,
            deduped: false,
        }
    }

    /// Submits every job, then waits for all of them; results come back in
    /// submission order.
    pub fn run_batch(&self, jobs: impl IntoIterator<Item = Job>) -> Vec<JobResult> {
        let handles: Vec<JobHandle> = jobs.into_iter().map(|j| self.submit(j)).collect();
        handles.iter().map(JobHandle::wait).collect()
    }

    /// The engine-backed threshold sweep: semantically identical (and
    /// byte-identical in its rows) to [`fdi_core::sweep`], but with the
    /// per-threshold pipelines and VM executions spread over the pool and
    /// the analysis shared through the artifact cache.
    ///
    /// # Errors
    ///
    /// Exactly [`fdi_core::sweep`]'s: a front end rejection, or a
    /// threshold-0 baseline that fails to execute.
    pub fn sweep(
        &self,
        src: &str,
        thresholds: &[usize],
        config: &PipelineConfig,
        run_config: &RunConfig,
    ) -> Result<Vec<SweepRow>, PipelineError> {
        self.sweep_many(&[src], thresholds, config, run_config)
            .pop()
            .expect("one sweep per source")
    }

    /// Sweeps many programs at once — the shape of the Table 1 / Fig. 6
    /// experiments. Every (source × threshold) pipeline job is submitted up
    /// front so the pool works across programs, not one program at a time.
    /// Results come back in `sources` order.
    pub fn sweep_many(
        &self,
        sources: &[&str],
        thresholds: &[usize],
        config: &PipelineConfig,
        run_config: &RunConfig,
    ) -> Vec<Result<Vec<SweepRow>, PipelineError>> {
        // Threshold 0 always runs first: it anchors normalization.
        let mut all: Vec<usize> = vec![0];
        all.extend(thresholds.iter().copied().filter(|&t| t != 0));

        // Phase 1: submit every pipeline job.
        let handles: Vec<Vec<JobHandle>> = sources
            .iter()
            .map(|&src| {
                let source: Arc<str> = Arc::from(src);
                all.iter()
                    .map(|&t| {
                        self.submit(Job {
                            source: source.clone(),
                            config: PipelineConfig {
                                threshold: t,
                                ..*config
                            },
                            trace: None,
                        })
                    })
                    .collect()
            })
            .collect();

        // Phase 2: as each source's pipelines finish, put its executions on
        // the pool. A job-level error (front end rejection) fails that
        // source's sweep, matching the sequential contract.
        type PendingCell = (usize, Arc<PipelineOutput>, Arc<Gate<ExecResult>>);
        let pending: Vec<Result<Vec<PendingCell>, PipelineError>> = handles
            .iter()
            .map(|source_handles| {
                let mut cells = Vec::with_capacity(all.len());
                for (handle, &t) in source_handles.iter().zip(&all) {
                    let output = handle.wait()?;
                    let gate = self.submit_exec(output.clone(), t, run_config);
                    cells.push((t, output, gate));
                }
                Ok(cells)
            })
            .collect();

        // Phase 3: collect executions and fold through the same assembly
        // the sequential sweep uses.
        pending
            .into_iter()
            .map(|cells| {
                let cells = cells?
                    .into_iter()
                    .map(|(threshold, output, gate)| SweepCell {
                        threshold,
                        output,
                        exec: gate.wait().expect("engine exec gates are always filled"),
                    })
                    .collect();
                assemble_sweep_rows(cells, run_config)
            })
            .collect()
    }

    /// Puts one sweep cell's VM execution on the pool, memoized through the
    /// exec-cell cache: the VM is deterministic in (program bytes, run
    /// configuration), so cells whose optimized programs coincide — distinct
    /// thresholds converging on the same bytes, or a warm re-sweep — share
    /// one run. A hit on a cached [`PipelineError::Vm`] is re-stamped with
    /// this cell's threshold (the error's only cell-dependent field). With
    /// engine chaos enabled the cache is skipped outright, and a panicking
    /// execution is evicted after publication so it is never replayed as an
    /// answer.
    fn submit_exec(
        &self,
        output: Arc<PipelineOutput>,
        threshold: usize,
        run_config: &RunConfig,
    ) -> Arc<Gate<ExecResult>> {
        let gate = Arc::new(Gate::new());
        let task_gate = gate.clone();
        let inner = self.inner.clone();
        let run_config = *run_config;
        let memoize = !self.inner.injector.plan().enabled();
        self.inner.stats.enqueue();
        let task: Task = Box::new(move || {
            inner.stats.dequeue();
            let _span = inner.telemetry.span("execute", "engine");
            let started = Instant::now();
            let run = || {
                catch_unwind(AssertUnwindSafe(|| {
                    execute_cell(&output, threshold, &run_config)
                }))
                .unwrap_or_else(|_| {
                    Err(PipelineError::PhasePanicked {
                        phase: Phase::Execution,
                        message: "engine execution unwound outside phase containment".into(),
                    })
                })
            };
            let exec = if memoize {
                let key = source_fingerprint(&format!(
                    "{}\n{run_config:?}",
                    fdi_lang::unparse(&output.optimized)
                ));
                inner.stats.fingerprints_computed.fetch_add(1, Relaxed);
                let (mut exec, hit) = inner.exec_cells.get_or_compute(key, run);
                stats::StatsInner::cache_event(
                    &inner.stats.exec_hits,
                    &inner.stats.exec_misses,
                    hit,
                );
                inner
                    .telemetry
                    .instant("cache.exec", "cache", &[("hit", hit.to_string())]);
                match &mut exec {
                    Err(PipelineError::Vm { threshold: t, .. }) => *t = threshold,
                    Err(PipelineError::PhasePanicked { .. }) => {
                        inner.exec_cells.evict(&key);
                    }
                    _ => {}
                }
                exec
            } else {
                run()
            };
            stats::StatsInner::add_time(&inner.stats.execute_ns, started.elapsed());
            task_gate.set(exec);
        });
        let shard = self.inner.exec_shard.fetch_add(1, Relaxed);
        self.pool.submit(shard, task);
        gate
    }
}

/// The transient failure in `result`, if any: a transient top-level error,
/// or the first transient degradation of an otherwise completed run.
fn transient_failure(result: &JobResult) -> Option<PipelineError> {
    match result {
        Err(e) if e.is_transient() => Some(e.clone()),
        Err(_) => None,
        Ok(out) => out
            .health
            .degradations
            .iter()
            .find(|d| d.error.is_transient())
            .map(|d| d.error.clone()),
    }
}

/// Runs one job under the retry/quarantine policy.
///
/// Each attempt runs [`run_job`] under a panic backstop. A transiently
/// failed attempt is retried after a deterministic linear backoff, with the
/// job's fault seed advanced by the attempt number (so a seeded injection —
/// a pure function of the seed — does not trivially recur, while the whole
/// retry schedule stays reproducible). A job that exhausts its retries is
/// quarantined on the poison list; its last result is still returned.
///
/// For a job carrying a [`fdi_core::Budget`] deadline, the retry wall is
/// capped against that deadline: a retry whose backoff sleep would land the
/// next attempt past the job's own time budget is not taken — the job is
/// quarantined immediately instead. Supervised retries can therefore never
/// overshoot a request deadline.
fn supervise(inner: &Inner, job: &Job) -> JobResult {
    let started = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        let mut this_attempt = job.clone();
        if attempt > 0 && this_attempt.config.faults.enabled() {
            this_attempt.config.faults.seed = job.config.faults.seed.wrapping_add(attempt as u64);
        }
        let result = catch_unwind(AssertUnwindSafe(|| run_job(inner, &this_attempt)))
            .unwrap_or_else(|payload| {
                // Keep the payload text: injected cache-seam panics carry
                // "injected fault at …", which downstream consumers (fuzz
                // tolerance, corpus replay) use to classify the failure.
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "no panic message".into());
                Err(PipelineError::PhasePanicked {
                    phase: Phase::Frontend,
                    message: format!("engine job unwound outside phase containment: {detail}"),
                })
            });
        let failure = match transient_failure(&result) {
            None => return result,
            Some(e) => e,
        };
        // The next retry would sleep `backoff`; a deadline-bearing job
        // whose remaining budget cannot absorb that sleep is quarantined
        // now — retrying it could only blow the request deadline.
        let backoff = inner.retry_backoff * (attempt + 1);
        let deadline_spent = job
            .config
            .budget
            .deadline
            .is_some_and(|d| started.elapsed() + backoff >= d);
        if attempt >= inner.max_retries || deadline_spent {
            inner.stats.jobs_quarantined.fetch_add(1, Relaxed);
            inner.telemetry.instant(
                "job.poisoned",
                "engine",
                &[
                    ("threshold", job.config.threshold.to_string()),
                    ("attempts", (attempt + 1).to_string()),
                    ("error", failure.to_string()),
                ],
            );
            inner.poisoned.lock().unwrap().push(PoisonedJob {
                source: job.source.clone(),
                threshold: job.config.threshold,
                attempts: attempt + 1,
                error: failure,
            });
            return result;
        }
        attempt += 1;
        inner.stats.jobs_retried.fetch_add(1, Relaxed);
        inner.telemetry.instant(
            "job.retry",
            "engine",
            &[
                ("attempt", attempt.to_string()),
                ("error", failure.to_string()),
            ],
        );
        std::thread::sleep(backoff);
    }
}

/// Persists a fully healthy, cache-eligible output to the disk store, when
/// one is attached. Degraded or oracle-rejected runs are never persisted —
/// a warm restart must recompute them, not replay them. Store failures
/// degrade: counted in [`EngineStats::store_write_failures`] and traced as
/// a typed [`PipelineError::Store`], never propagated into the job result
/// that is already computed.
fn persist_output(inner: &Inner, job: &Job, src_key: u64, out: &PipelineOutput) {
    let Some(store) = &inner.store else {
        return;
    };
    if !out.health.degradations.is_empty() || out.health.oracle_rejected() {
        return;
    }
    // Memory-only mode: after STORE_DEGRADE_AFTER consecutive write
    // failures (a full disk, most likely), stop hammering the store —
    // requests keep succeeding from memory — but let every n-th output
    // probe it, so a recovered disk re-enables persistence by itself.
    if inner.store_consec_failures.load(Relaxed) >= STORE_DEGRADE_AFTER {
        let skipped = inner.store_skipped.fetch_add(1, Relaxed) + 1;
        if !skipped.is_multiple_of(STORE_PROBE_EVERY) {
            return;
        }
    }
    inner.stats.fingerprints_computed.fetch_add(1, Relaxed);
    let key = (src_key, job.config.fingerprint());
    let stored = StoredOutput {
        optimized: fdi_lang::unparse(&out.optimized).to_string(),
        baseline_size: out.baseline_size,
        optimized_size: out.optimized_size,
        sites_inlined: out.report.sites_inlined,
        fuel_used: out.fuel_used,
        decisions: DecisionTotals::tally(&out.decisions),
    };
    let write_failed = |instant: &str, fields: &[(&str, String)]| {
        inner.stats.store_write_failures.fetch_add(1, Relaxed);
        inner.telemetry.instant(instant, "cache", fields);
        let failures = inner.store_consec_failures.fetch_add(1, Relaxed) + 1;
        if failures == STORE_DEGRADE_AFTER {
            // One typed instant at the transition, not one per skipped
            // write: the signal is "the engine went memory-only", and it
            // must never surface as a failed request.
            inner.telemetry.instant(
                "store.memory_only",
                "cache",
                &[("consecutive_failures", failures.to_string())],
            );
        }
    };
    match store.save(key, &stored) {
        store::Saved::Written => {
            inner.stats.store_writes.fetch_add(1, Relaxed);
            let was = inner.store_consec_failures.swap(0, Relaxed);
            if was >= STORE_DEGRADE_AFTER {
                inner.telemetry.instant("store.recovered", "cache", &[]);
            }
        }
        store::Saved::Torn => {
            write_failed("store.write_torn", &[]);
        }
        store::Saved::Full => {
            write_failed("store.full", &[("error", "injected ENOSPC".to_string())]);
        }
        store::Saved::Failed(message) => {
            let e = PipelineError::Store { message };
            write_failed("store.write_failed", &[("error", e.to_string())]);
        }
    }
}

/// One job, start to finish, on a worker thread: parse through the artifact
/// cache, analyze through the artifact cache, then run the inline +
/// simplify tail in-process — unless the job bypasses caching entirely
/// (deadline or private fault plan), in which case the whole pipeline runs
/// in-process with no fingerprint ever computed.
fn run_job(inner: &Inner, job: &Job) -> JobResult {
    let _span = inner.telemetry.span("job", "engine");
    if let Some(trace) = job.trace {
        // Inside the span, so a trace viewer (and the flight recorder's
        // time base) can join the request id against the engine's work.
        inner.telemetry.instant(
            "job.trace",
            "engine",
            &[("trace_id", format!("{trace:016x}"))],
        );
    }
    if job.bypasses_cache() {
        inner.stats.analysis_uncached.fetch_add(1, Relaxed);
        let started = Instant::now();
        // Bypass jobs skip the *artifact* caches (their deadlines and fault
        // plans are private to the run), but still share the specialization
        // cache: it is output-transparent, and its fault seam
        // (`spec-cache-evict`) is only reachable from a job-level plan.
        let out = optimize_runtime(
            &job.source,
            &job.config,
            job_guide(inner, job),
            &inner.telemetry,
            inner.runtime(),
        );
        stats::StatsInner::add_time(&inner.stats.transform_ns, started.elapsed());
        if let Ok(out) = &out {
            inner.stats.record_passes(&out.passes);
            inner.stats.record_decisions(&out.decisions);
        }
        return out.map(Arc::new);
    }

    let src_key = source_fingerprint(&job.source);
    inner.stats.fingerprints_computed.fetch_add(1, Relaxed);
    let chaos = inner.injector.plan().enabled();

    // Obtain the parse artifact, under chaos re-verifying its checksum: a
    // detected corruption evicts and recomputes (at most one extra lap —
    // the recompute is a miss, which skips the recheck).
    let artifact = loop {
        let parse_started = Instant::now();
        let source = job.source.clone();
        let injector = &inner.injector;
        let (parsed, hit) = inner.programs.get_or_compute(src_key, move || {
            if injector.poll(FaultPoint::CacheAbandon).is_some() {
                // The cache's unwind guard abandons the gate (waiters
                // retry); this owner's job fails transiently and is
                // retried by its supervisor.
                panic!("injected fault at cache-abandon");
            }
            parse_contained(&source).map(|p| {
                let program = Arc::new(p);
                let checksum = if chaos {
                    artifact_checksum(&program)
                } else {
                    0
                };
                ParseArtifact {
                    program,
                    checksum: Arc::new(AtomicU64::new(checksum)),
                }
            })
        });
        stats::StatsInner::cache_event(&inner.stats.parse_hits, &inner.stats.parse_misses, hit);
        stats::StatsInner::add_time(&inner.stats.parse_ns, parse_started.elapsed());
        inner
            .telemetry
            .instant("cache.parse", "cache", &[("hit", hit.to_string())]);
        let artifact = parsed?;
        if chaos && hit {
            if inner.injector.poll(FaultPoint::CacheCorrupt).is_some() {
                artifact.checksum.fetch_xor(0xDEAD_BEEF_DEAD_BEEF, Relaxed);
            }
            if artifact_checksum(&artifact.program) != artifact.checksum.load(Relaxed) {
                inner.stats.cache_corruptions_detected.fetch_add(1, Relaxed);
                inner
                    .telemetry
                    .instant("cache.corruption_detected", "cache", &[]);
                if inner.programs.evict(&src_key) {
                    inner.stats.cache_evictions_corruption.fetch_add(1, Relaxed);
                }
                continue;
            }
        }
        if chaos && inner.injector.poll(FaultPoint::CacheEvict).is_some() {
            // Drop the entry *after* taking our clone: this job proceeds,
            // the next asker recomputes.
            if inner.programs.evict(&src_key) {
                inner.stats.cache_evictions_fault.fetch_add(1, Relaxed);
                inner.telemetry.instant("cache.evict", "cache", &[]);
            }
        }
        break artifact;
    };
    let program = artifact.program;

    // A schedule that opens with a rewrite never consumes a shared analysis
    // (the rewrite would invalidate it — see `run_schedule`'s cache seam),
    // so there is nothing for the analysis cache to hold: run the transform
    // tail in-process and let the schedule compute its own analyses.
    if !job.config.schedule.starts_with_analyze() {
        inner.stats.analysis_uncached.fetch_add(1, Relaxed);
        let started = Instant::now();
        let out = optimize_program_runtime(
            &program,
            &job.config,
            job_guide(inner, job),
            &inner.telemetry,
            inner.runtime(),
        );
        stats::StatsInner::add_time(&inner.stats.transform_ns, started.elapsed());
        if let Ok(out) = &out {
            inner.stats.record_passes(&out.passes);
            inner.stats.record_decisions(&out.decisions);
            persist_output(inner, job, src_key, out);
        }
        return out.map(Arc::new);
    }

    let analysis_started = Instant::now();
    let analysis_program = program.clone();
    let config = job.config;
    inner.stats.fingerprints_computed.fetch_add(1, Relaxed);
    let (analysis, hit) = inner
        .analyses
        .get_or_compute((src_key, job.config.analysis_fingerprint()), move || {
            analyze_contained(&analysis_program, &config).map(Arc::new)
        });
    stats::StatsInner::cache_event(
        &inner.stats.analysis_hits,
        &inner.stats.analysis_misses,
        hit,
    );
    stats::StatsInner::add_time(&inner.stats.analysis_ns, analysis_started.elapsed());
    inner
        .telemetry
        .instant("cache.analysis", "cache", &[("hit", hit.to_string())]);

    let transform_started = Instant::now();
    let shared = match &analysis {
        Ok(flow) => Ok(&**flow),
        Err(e) => Err(e),
    };
    let out = optimize_program_with_analysis_runtime(
        &program,
        &job.config,
        shared,
        job_guide(inner, job),
        &inner.telemetry,
        inner.runtime(),
    );
    stats::StatsInner::add_time(&inner.stats.transform_ns, transform_started.elapsed());
    inner.stats.record_passes(&out.passes);
    inner.stats.record_decisions(&out.decisions);
    persist_output(inner, job, src_key, &out);
    Ok(Arc::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_core::{Budget, OracleConfig};

    const SRC: &str = "(define (sq x) (* x x)) (cons (sq 2) (sq 3))";

    #[test]
    fn identical_inflight_jobs_dedup_onto_one_run() {
        // One worker: the first job occupies it, so the next two identical
        // submissions are still queued/in-flight when dedup is checked.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_cap: 8,
            ..EngineConfig::default()
        });
        let blocker = engine.submit(Job::new(SRC, PipelineConfig::with_threshold(0)));
        let first = engine.submit(Job::new(SRC, PipelineConfig::with_threshold(200)));
        let second = engine.submit(Job::new(SRC, PipelineConfig::with_threshold(200)));
        assert!(!first.deduped);
        assert!(second.deduped, "identical in-flight job must coalesce");
        let (a, b) = (first.wait().unwrap(), second.wait().unwrap());
        assert!(Arc::ptr_eq(&a, &b), "deduped handles share one output");
        blocker.wait().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.jobs_submitted, 2);
        assert_eq!(stats.jobs_deduped, 1);
        assert_eq!(stats.jobs_completed, 2);
    }

    #[test]
    fn thresholds_share_one_analysis() {
        let engine = Engine::with_jobs(4);
        let results = engine.run_batch(
            [0, 100, 200, 400].map(|t| Job::new(SRC, PipelineConfig::with_threshold(t))),
        );
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = engine.stats();
        assert_eq!(stats.parse_misses, 1, "one front-end run");
        assert_eq!(stats.analysis_misses, 1, "one CFA for all four thresholds");
        assert_eq!(stats.analysis_hits, 3);
        assert_eq!(stats.analysis_uncached, 0);
    }

    #[test]
    fn over_budget_job_degrades_without_poisoning_the_pool() {
        let engine = Engine::with_jobs(2);
        let starved = PipelineConfig {
            budget: Budget::default().with_fuel(0),
            ..PipelineConfig::with_threshold(200)
        };
        let degraded = engine.submit(Job::new(SRC, starved)).wait().unwrap();
        assert!(degraded.health.degraded(), "zero fuel must degrade");
        // Fuel exhaustion is deterministic: no retries, no quarantine.
        assert_eq!(engine.stats().jobs_retried, 0);
        assert_eq!(engine.stats().jobs_quarantined, 0);
        // The pool still serves healthy work afterwards.
        let healthy = engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(200)))
            .wait()
            .unwrap();
        assert!(!healthy.health.degraded());
        assert_eq!(engine.stats().jobs_completed, 2);
    }

    #[test]
    fn frontend_failures_are_negatively_cached() {
        let engine = Engine::with_jobs(2);
        let bad = "(define (f x) (* x x"; // unbalanced
        let first = engine
            .submit(Job::new(bad, PipelineConfig::with_threshold(0)))
            .wait();
        let second = engine
            .submit(Job::new(bad, PipelineConfig::with_threshold(200)))
            .wait();
        assert!(matches!(first, Err(PipelineError::Frontend(_))));
        assert!(matches!(second, Err(PipelineError::Frontend(_))));
        let stats = engine.stats();
        assert_eq!(stats.parse_misses, 1, "the rejection is cached too");
        assert_eq!(stats.parse_hits, 1);
    }

    #[test]
    fn deadline_jobs_bypass_the_analysis_cache() {
        let engine = Engine::with_jobs(2);
        let deadline = PipelineConfig {
            budget: Budget::default().with_deadline(std::time::Duration::from_secs(60)),
            ..PipelineConfig::with_threshold(200)
        };
        let out = engine.submit(Job::new(SRC, deadline)).wait().unwrap();
        assert!(!out.health.degraded(), "a generous deadline still succeeds");
        let stats = engine.stats();
        assert_eq!(stats.analysis_uncached, 1);
        assert_eq!(stats.analysis_hits + stats.analysis_misses, 0);
        // And such jobs never dedup, even against an identical twin.
        let a = engine.submit(Job::new(SRC, deadline));
        let b = engine.submit(Job::new(SRC, deadline));
        assert!(!a.deduped && !b.deduped);
        a.wait().unwrap();
        b.wait().unwrap();
    }

    #[test]
    fn bypass_jobs_never_compute_fingerprints() {
        // The whole point of the bypass path: no cache keys, no fingerprints.
        let engine = Engine::with_jobs(2);
        let deadline = PipelineConfig {
            budget: Budget::default().with_deadline(std::time::Duration::from_secs(60)),
            ..PipelineConfig::with_threshold(200)
        };
        engine.submit(Job::new(SRC, deadline)).wait().unwrap();
        assert_eq!(engine.stats().fingerprints_computed, 0);
        // A cache-eligible job computes exactly four: source + whole-config
        // at submission (dedup key), source + analysis policy inside the
        // run (cache keys).
        engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(200)))
            .wait()
            .unwrap();
        assert_eq!(engine.stats().fingerprints_computed, 4);
    }

    #[test]
    fn rewrite_first_schedules_skip_the_analysis_cache() {
        let engine = Engine::with_jobs(2);
        let config = PipelineConfig {
            schedule: fdi_core::Schedule::parse("simplify*2").unwrap(),
            ..PipelineConfig::with_threshold(200)
        };
        let out = engine.submit(Job::new(SRC, config)).wait().unwrap();
        assert!(!out.health.degraded());
        let stats = engine.stats();
        // The parse artifact is still shared; only the analysis cache is
        // moot (a shared analysis would never be consumed).
        assert_eq!(stats.parse_misses, 1);
        assert_eq!(stats.analysis_hits + stats.analysis_misses, 0);
        assert_eq!(stats.analysis_uncached, 1);
        // And such jobs still dedup by whole-job key.
        let a = engine.submit(Job::new(SRC, config));
        let b = engine.submit(Job::new(SRC, config));
        a.wait().unwrap();
        b.wait().unwrap();
        assert!(a.deduped || b.deduped || engine.stats().parse_hits >= 1);
    }

    #[test]
    fn per_pass_aggregates_fold_every_completed_job() {
        let engine = Engine::with_jobs(2);
        let out = engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(200)))
            .wait()
            .unwrap();
        let stats = engine.stats();
        for name in TRACKED_PASSES {
            let p = stats.pass(name).unwrap();
            assert_eq!(p.runs, 1, "{name} must have run exactly once");
        }
        // The engine-wide fuel total is the job's own fuel accounting.
        let total: u64 = stats.passes.iter().map(|p| p.fuel).sum();
        assert_eq!(total, out.fuel_used);
        // A second job under a different threshold doubles the run counts
        // (the cached analysis still counts as an analyze run for the job).
        engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(100)))
            .wait()
            .unwrap();
        assert_eq!(engine.stats().pass("analyze").unwrap().runs, 2);
        assert_eq!(engine.stats().pass("simplify").unwrap().runs, 2);
    }

    #[test]
    fn engine_sweep_matches_sequential_sweep() {
        let engine = Engine::with_jobs(4);
        let config = PipelineConfig::default();
        let run_config = RunConfig::default();
        let thresholds = [100, 400];
        let ours = engine
            .sweep(SRC, &thresholds, &config, &run_config)
            .unwrap();
        let theirs = fdi_core::sweep(SRC, &thresholds, &config, &run_config).unwrap();
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(&theirs) {
            assert_eq!(a.threshold, b.threshold);
            assert_eq!(a.value, b.value);
            assert_eq!(format!("{:?}", a.counters), format!("{:?}", b.counters));
            assert_eq!(a.norm_total.to_bits(), b.norm_total.to_bits());
            assert_eq!(a.size_ratio.to_bits(), b.size_ratio.to_bits());
        }
    }

    #[test]
    fn sweep_reports_frontend_errors_per_source() {
        let engine = Engine::with_jobs(2);
        let results = engine.sweep_many(
            &[SRC, "(oops"],
            &[200],
            &PipelineConfig::default(),
            &RunConfig::default(),
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PipelineError::Frontend(_))));
    }

    fn store_root(tag: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fdi-engine-store-{tag}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_engine(root: &std::path::Path, faults: FaultPlan) -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            faults,
            retry_backoff: Duration::from_millis(1),
            store: Some(root.to_path_buf()),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn disk_store_round_trips_across_engine_restarts() {
        let root = store_root("roundtrip");
        let job = Job::new(SRC, PipelineConfig::with_threshold(200));

        let first = store_engine(&root, FaultPlan::default());
        assert!(first.lookup_stored(&job).is_none(), "cold store misses");
        let out = first.submit(job.clone()).wait().unwrap();
        let stats = first.stats();
        assert_eq!(stats.store_writes, 1);
        assert_eq!(stats.store_misses, 1);
        drop(first);

        // A fresh engine on the same root — the restart path — answers
        // from disk with the byte-identical optimized text.
        let second = store_engine(&root, FaultPlan::default());
        let stored = second.lookup_stored(&job).expect("warm store hits");
        assert_eq!(
            stored.optimized,
            fdi_lang::unparse(&out.optimized).to_string()
        );
        assert_eq!(stored.baseline_size, out.baseline_size);
        assert_eq!(stored.optimized_size, out.optimized_size);
        assert_eq!(stored.sites_inlined, out.report.sites_inlined);
        assert_eq!(stored.fuel_used, out.fuel_used);
        assert_eq!(
            stored.decisions,
            fdi_telemetry::DecisionTotals::tally(&out.decisions)
        );
        assert_eq!(second.stats().store_hits, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn degraded_outputs_are_never_persisted() {
        let root = store_root("degraded");
        let engine = store_engine(&root, FaultPlan::default());
        let starved = PipelineConfig {
            budget: Budget::default().with_fuel(0),
            ..PipelineConfig::with_threshold(200)
        };
        let job = Job::new(SRC, starved);
        let out = engine.submit(job.clone()).wait().unwrap();
        assert!(out.health.degraded(), "zero fuel must degrade");
        assert_eq!(engine.stats().store_writes, 0);
        assert!(engine.lookup_stored(&job).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bypass_jobs_never_touch_the_store() {
        let root = store_root("bypass");
        let engine = store_engine(&root, FaultPlan::default());
        let deadline = PipelineConfig {
            budget: Budget::default().with_deadline(Duration::from_secs(60)),
            ..PipelineConfig::with_threshold(200)
        };
        let job = Job::new(SRC, deadline);
        assert!(engine.lookup_stored(&job).is_none());
        engine.submit(job).wait().unwrap();
        let stats = engine.stats();
        assert_eq!(
            stats.store_hits + stats.store_misses + stats.store_writes,
            0
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_store_write_is_evicted_and_repaved() {
        // One injected `store-write` tears the first persist mid-frame —
        // the footprint of a process killed mid-write. The next lookup
        // detects the corruption, evicts, and the recompute repaves it:
        // zero wrong answers, zero poisoned jobs.
        let root = store_root("torn");
        let clean = Engine::new(EngineConfig::with_workers(2));
        let job = Job::new(SRC, PipelineConfig::with_threshold(200));
        let expected =
            fdi_lang::unparse(&clean.submit(job.clone()).wait().unwrap().optimized).to_string();

        let engine = store_engine(
            &root,
            FaultPlan::only(0xD15C, &[FaultPoint::StoreWrite]).with_limit(1),
        );
        engine.submit(job.clone()).wait().unwrap();
        assert_eq!(engine.stats().store_write_failures, 1);
        assert!(engine.lookup_stored(&job).is_none(), "torn frame: miss");
        assert_eq!(engine.stats().store_corruptions_detected, 1);
        // Recompute and re-persist (the injector's cap is spent).
        engine.submit(job.clone()).wait().unwrap();
        let stored = engine.lookup_stored(&job).expect("repaved artifact");
        assert_eq!(stored.optimized, expected, "no wrong answers, ever");
        assert!(engine.poisoned().is_empty(), "no poisoned results");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn store_corruption_is_detected_on_load() {
        let root = store_root("corrupt");
        let engine = store_engine(
            &root,
            FaultPlan::only(0xC0DE, &[FaultPoint::StoreCorrupt]).with_limit(1),
        );
        let job = Job::new(SRC, PipelineConfig::with_threshold(200));
        engine.submit(job.clone()).wait().unwrap();
        assert_eq!(engine.stats().store_writes, 1);
        assert!(engine.lookup_stored(&job).is_none(), "flipped byte: miss");
        assert_eq!(engine.stats().store_corruptions_detected, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cache_pressure_evicts_and_recomputes_byte_identically() {
        // A starvation-level cache budget: every insert overflows it, so
        // the caches thrash — and the answers must not change.
        let reference = Engine::with_jobs(2);
        let starved = Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            cache_bytes: Some(1),
            ..EngineConfig::default()
        });
        for t in [0usize, 200, 1000] {
            let job = || Job::new(SRC, PipelineConfig::with_threshold(t));
            let want = reference.submit(job()).wait().unwrap();
            let got = starved.submit(job()).wait().unwrap();
            assert_eq!(
                fdi_lang::unparse(&got.optimized).to_string(),
                fdi_lang::unparse(&want.optimized).to_string(),
                "threshold {t}: pressure eviction changed the answer"
            );
            assert!(!got.health.degraded());
        }
        let stats = starved.stats();
        assert!(
            stats.cache_evictions_pressure > 0,
            "a 1-byte budget must shed entries"
        );
        assert_eq!(stats.cache_evictions_fault, 0);
        assert_eq!(stats.cache_evictions_corruption, 0);
        assert!(
            stats.cache_bytes_used <= 1,
            "footprint gauge must respect the budget at rest"
        );
        // The specialization cache charges the same budget and must shed
        // under it too, never holding bytes the keyed caches were denied.
        assert!(
            stats.spec_evictions > 0,
            "a 1-byte budget must shed specializations"
        );
        // The unbounded reference never sheds and reports no byte gauge.
        assert_eq!(reference.stats().cache_evictions_pressure, 0);
    }

    #[test]
    fn bounded_cache_still_dedups_inflight_and_serves_hits() {
        // A roomy budget: entries fit, so bounding must not cost hits.
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            cache_bytes: Some(64 << 20),
            ..EngineConfig::default()
        });
        for t in [0usize, 200] {
            engine
                .submit(Job::new(SRC, PipelineConfig::with_threshold(t)))
                .wait()
                .unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.parse_misses, 1, "one parse, shared");
        assert_eq!(stats.parse_hits, 1);
        assert_eq!(stats.cache_evictions_pressure, 0);
        assert!(stats.cache_bytes_used > 0, "footprint gauge is live");
    }

    #[test]
    fn store_quota_gc_bounds_the_footprint_without_losing_answers() {
        // Size one artifact with an unbounded store first.
        let probe_root = store_root("quota-probe");
        let probe = store_engine(&probe_root, FaultPlan::default());
        probe
            .submit(Job::new(SRC, PipelineConfig::with_threshold(0)))
            .wait()
            .unwrap();
        let one = probe.stats().store_bytes_used;
        assert!(one > 0);
        drop(probe);
        let _ = std::fs::remove_dir_all(&probe_root);

        let root = store_root("quota");
        let quota = 2 * one + one / 2;
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            store: Some(root.clone()),
            store_bytes: Some(quota),
            ..EngineConfig::default()
        });
        for t in [0usize, 100, 200, 400] {
            let out = engine
                .submit(Job::new(SRC, PipelineConfig::with_threshold(t)))
                .wait()
                .unwrap();
            assert!(!out.health.degraded());
        }
        let stats = engine.stats();
        assert_eq!(stats.store_writes, 4, "every output persisted");
        assert!(stats.store_gc_evictions >= 1, "the quota must bite");
        assert!(
            stats.store_bytes_used <= quota,
            "footprint {} over quota {quota}",
            stats.store_bytes_used
        );
        // The most recent artifact survived the GC and serves warm.
        let last = Job::new(SRC, PipelineConfig::with_threshold(400));
        assert!(engine.lookup_stored(&last).is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn store_full_degrades_to_memory_only_and_recovers() {
        let root = store_root("enospc");
        // Three injected ENOSPC rejections, then the disk "frees up".
        let engine = store_engine(
            &root,
            FaultPlan::only(0xF11, &[FaultPoint::StoreFull]).with_limit(STORE_DEGRADE_AFTER as u32),
        );
        for t in [0usize, 100, 200] {
            let out = engine
                .submit(Job::new(SRC, PipelineConfig::with_threshold(t)))
                .wait()
                .unwrap();
            assert!(!out.health.degraded(), "ENOSPC must never fail a request");
        }
        let stats = engine.stats();
        assert_eq!(stats.store_writes, 0);
        assert_eq!(stats.store_write_failures, STORE_DEGRADE_AFTER);
        assert!(engine.resources().store_degraded, "memory-only after 3");
        // Memory-only: the next outputs skip the store entirely…
        for t in 1..STORE_PROBE_EVERY {
            engine
                .submit(Job::new(
                    SRC,
                    PipelineConfig::with_threshold(1000 + t as usize),
                ))
                .wait()
                .unwrap();
        }
        assert_eq!(engine.stats().store_write_failures, STORE_DEGRADE_AFTER);
        // …until the probe write lands (the injector's cap is spent) and
        // persistence re-enables itself.
        engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(5000)))
            .wait()
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.store_writes, 1, "the probe write landed");
        assert!(!engine.resources().store_degraded, "recovered");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retry_backoff_is_capped_by_the_job_deadline() {
        // A persistent miscompile with generous retries, but a budget
        // deadline the backoff schedule must not overshoot: without the
        // cap this job would sleep 80+160+…+800 ms across ten retries.
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            max_retries: 10,
            retry_backoff: Duration::from_millis(80),
            ..EngineConfig::default()
        });
        let config = PipelineConfig {
            faults: FaultPlan::only(5, &[FaultPoint::Miscompile]),
            oracle: OracleConfig::on(),
            budget: Budget::default().with_deadline(Duration::from_millis(200)),
            ..PipelineConfig::with_threshold(200)
        };
        let started = Instant::now();
        let out = engine.submit(Job::new(SRC, config)).wait().unwrap();
        let elapsed = started.elapsed();
        assert!(out.health.oracle_rejected(), "miscompile still caught");
        let stats = engine.stats();
        assert_eq!(stats.jobs_quarantined, 1);
        assert!(
            stats.jobs_retried < 10,
            "deadline must cut the retry schedule short ({} retries)",
            stats.jobs_retried
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "retry wall must stay inside the deadline's order of magnitude ({elapsed:?})"
        );
    }

    fn chaos_engine(points: &[FaultPoint], limit: u32) -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            faults: FaultPlan::only(0xE17, points).with_limit(limit),
            retry_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn worker_panic_respawns_and_later_jobs_still_complete() {
        // Satellite regression: a worker panic mid-batch is followed by
        // successful completion of later jobs, and the queue high-water
        // mark stays monotone across snapshots.
        let engine = chaos_engine(&[FaultPoint::WorkerPanic], 2);
        let mut highwater = 0;
        for t in [0usize, 100, 200, 400, 800] {
            let out = engine
                .submit(Job::new(SRC, PipelineConfig::with_threshold(t)))
                .wait()
                .unwrap();
            assert!(!out.health.degraded(), "threshold {t} run degraded");
            let snap = engine.stats();
            assert!(snap.queue_highwater >= highwater, "high-water regressed");
            highwater = snap.queue_highwater;
        }
        let stats = engine.stats();
        assert_eq!(stats.jobs_completed, 5, "no job lost to worker panics");
        assert_eq!(stats.workers_respawned, 2, "both injected panics respawned");
    }

    #[test]
    fn cache_abandon_is_retried_to_success() {
        let engine = chaos_engine(&[FaultPoint::CacheAbandon], 1);
        let out = engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(200)))
            .wait()
            .unwrap();
        assert!(!out.health.degraded());
        let stats = engine.stats();
        assert_eq!(stats.jobs_retried, 1, "one abandoned fill, one retry");
        assert_eq!(stats.jobs_quarantined, 0);
        assert_eq!(stats.parse_misses, 1, "the retry's fill succeeded");
    }

    #[test]
    fn cache_corruption_is_detected_and_recomputed() {
        let engine = chaos_engine(&[FaultPoint::CacheCorrupt], 1);
        let a = engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(0)))
            .wait()
            .unwrap();
        // Same source again: the hit's recheck sees the corrupted checksum.
        let b = engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(200)))
            .wait()
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_corruptions_detected, 1);
        assert_eq!(stats.parse_misses, 2, "corrupted artifact was recomputed");
        // Corruption is repaired, never served: both runs are healthy.
        assert!(!a.health.degraded() && !b.health.degraded());
    }

    #[test]
    fn cache_evict_forces_recompute() {
        let engine = chaos_engine(&[FaultPoint::CacheEvict], 1);
        engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(0)))
            .wait()
            .unwrap();
        engine
            .submit(Job::new(SRC, PipelineConfig::with_threshold(200)))
            .wait()
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_evictions_fault, 1);
        assert_eq!(stats.parse_misses, 2, "evicted artifact was recomputed");
    }

    #[test]
    fn persistent_transient_failures_quarantine() {
        // A job whose own fault plan miscompiles on *every* seed (rate 1/1,
        // so reseeding cannot clear it) keeps tripping the oracle; the
        // supervisor exhausts its retries and quarantines the job.
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            retry_backoff: Duration::from_millis(1),
            ..EngineConfig::default()
        });
        let config = PipelineConfig {
            faults: FaultPlan::only(5, &[FaultPoint::Miscompile]),
            oracle: OracleConfig::on(),
            ..PipelineConfig::with_threshold(200)
        };
        let out = engine.submit(Job::new(SRC, config)).wait().unwrap();
        assert!(
            out.health.oracle_rejected(),
            "the miscompile must be caught, not shipped"
        );
        let stats = engine.stats();
        assert_eq!(stats.jobs_retried, 2, "default policy: two retries");
        assert_eq!(stats.jobs_quarantined, 1);
        let poisoned = engine.poisoned();
        assert_eq!(poisoned.len(), 1);
        assert_eq!(poisoned[0].attempts, 3);
        assert!(matches!(
            poisoned[0].error,
            PipelineError::OracleRejected { .. }
        ));
    }

    /// A matched engine profile for `src` with a distinctive fingerprint.
    fn test_profile(src: &str) -> EngineProfile {
        let mut guide = InlineGuide::new();
        guide.set("l1".to_string(), 1_000);
        EngineProfile {
            source_fp: source_fingerprint(src),
            fingerprint: 0x51de_600d_51de_600d,
            guide: Arc::new(guide),
        }
    }

    #[test]
    fn guided_and_static_modes_never_share_a_store_key() {
        let root = store_root("profile-modes");
        let job = Job::new(SRC, PipelineConfig::with_threshold(200));

        // A static engine persists the job under the static key.
        let static_engine = store_engine(&root, FaultPlan::default());
        static_engine.submit(job.clone()).wait().unwrap();
        assert_eq!(static_engine.stats().store_writes, 1);
        drop(static_engine);

        // A guided engine over the same root must MISS on lookup: its
        // profile rewrites the job key, so the static artifact is invisible
        // to it — no cross-mode cache hit, ever.
        let guided = Engine::new(EngineConfig {
            workers: 2,
            queue_cap: 8,
            retry_backoff: Duration::from_millis(1),
            store: Some(root.clone()),
            profile: Some(test_profile(SRC)),
            ..EngineConfig::default()
        });
        assert!(
            guided.lookup_stored(&job).is_none(),
            "a guided engine must not serve a static-mode artifact"
        );
        // The probe applied the profile silently: no counter moved.
        assert_eq!(guided.stats().profile_applied, 0);

        // The guided engine computes and persists under its own key…
        guided.submit(job.clone()).wait().unwrap();
        let stats = guided.stats();
        assert_eq!(stats.profile_applied, 1);
        assert_eq!(stats.profile_stale, 0);
        assert_eq!(stats.store_writes, 1, "guided artifact is a new write");
        // …which it can then find again.
        assert!(guided.lookup_stored(&job).is_some());
        drop(guided);

        // And the static view of the same root still resolves to the
        // original static artifact.
        let static_again = store_engine(&root, FaultPlan::default());
        assert!(static_again.lookup_stored(&job).is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_profile_degrades_to_static_with_a_typed_instant() {
        use fdi_telemetry::{Event, RingSink, Telemetry};

        let sink = Arc::new(RingSink::with_capacity(4096));
        let telemetry = Telemetry::with_collector(sink.clone());
        // A profile collected from some *other* source: stale for SRC.
        let engine = Engine::with_telemetry(
            EngineConfig {
                workers: 2,
                queue_cap: 8,
                profile: Some(test_profile("(define (other y) y) (other 1)")),
                ..EngineConfig::default()
            },
            &telemetry,
        );
        let job = Job::new(SRC, PipelineConfig::with_threshold(200));
        let out = engine.submit(job.clone()).wait().unwrap();

        let stats = engine.stats();
        assert_eq!(stats.profile_stale, 1);
        assert_eq!(stats.profile_applied, 0);
        assert!(
            sink.drain()
                .iter()
                .any(|e| matches!(e, Event::Instant { name, .. } if name == "profile.stale")),
            "staleness must be visible in telemetry, not silent"
        );

        // The degraded run is byte-identical to a profile-less engine's.
        let plain = Engine::with_jobs(2);
        let expected = plain.submit(job).wait().unwrap();
        assert_eq!(
            fdi_lang::unparse(&out.optimized).to_string(),
            fdi_lang::unparse(&expected.optimized).to_string()
        );
        assert_eq!(out.decisions, expected.decisions);
    }
}
