//! Engine observability: lock-free counters and the [`EngineStats`]
//! snapshot.
//!
//! Workers record into a shared [`StatsInner`] (plain relaxed atomics — the
//! counters are monotone and independent, so no ordering is needed);
//! [`StatsInner::snapshot`] reads them into the plain-data [`EngineStats`]
//! callers consume.

use fdi_core::PassTrace;
use fdi_telemetry::{DecisionRecord, DecisionTotals};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The pipeline passes the engine aggregates across jobs, in trace order.
/// The frontend is deliberately absent: the engine's parse cache makes its
/// cost a cache property (`parse_ns`), not a per-job pass.
pub const TRACKED_PASSES: [&str; 4] = ["baseline", "analyze", "inline", "simplify"];

/// Atomic accumulator behind one [`PassStat`].
#[derive(Debug, Default)]
pub(crate) struct PassCell {
    runs: AtomicU64,
    ns: AtomicU64,
    fuel: AtomicU64,
}

/// Shared mutable counters, one per engine.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub jobs_submitted: AtomicU64,
    pub jobs_deduped: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_retried: AtomicU64,
    pub jobs_quarantined: AtomicU64,
    pub parse_hits: AtomicU64,
    pub parse_misses: AtomicU64,
    pub analysis_hits: AtomicU64,
    pub analysis_misses: AtomicU64,
    pub analysis_uncached: AtomicU64,
    pub fingerprints_computed: AtomicU64,
    /// Cache entries shed by injected `cache-evict` faults.
    pub cache_evictions_fault: AtomicU64,
    /// Cache entries shed because the fingerprint recheck caught them
    /// corrupted.
    pub cache_evictions_corruption: AtomicU64,
    /// Cache entries shed to fit `cache_bytes`. Behind an `Arc`: the shared
    /// [`crate::cache::CacheBudget`] bumps it from inside the caches.
    pub cache_evictions_pressure: Arc<AtomicU64>,
    pub cache_corruptions_detected: AtomicU64,
    /// Memoized sweep-cell executions served without a VM run.
    pub exec_hits: AtomicU64,
    /// Sweep-cell executions actually run on the VM through the cache.
    pub exec_misses: AtomicU64,
    pub store_hits: AtomicU64,
    pub store_misses: AtomicU64,
    pub store_corruptions_detected: AtomicU64,
    pub store_writes: AtomicU64,
    pub store_write_failures: AtomicU64,
    pub profile_applied: AtomicU64,
    pub profile_stale: AtomicU64,
    /// Behind an `Arc` so the pool's respawn guards can bump it without
    /// holding the whole stats block.
    pub workers_respawned: Arc<AtomicU64>,
    pub queue_depth: AtomicU64,
    pub queue_highwater: AtomicU64,
    pub parse_ns: AtomicU64,
    pub analysis_ns: AtomicU64,
    pub transform_ns: AtomicU64,
    pub execute_ns: AtomicU64,
    /// Per-pass aggregates, indexed like [`TRACKED_PASSES`].
    pub passes: [PassCell; 4],
    /// Inline decision totals across completed jobs. A mutex, not atomics:
    /// recorded once per job, read once per snapshot — never hot.
    pub decisions: Mutex<DecisionTotals>,
}

impl StatsInner {
    /// Records a job entering a queue, maintaining the high-water mark.
    pub(crate) fn enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Relaxed) + 1;
        self.queue_highwater.fetch_max(depth, Relaxed);
    }

    /// Records a job leaving a queue (it started executing).
    pub(crate) fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Relaxed);
    }

    /// Adds a measured phase duration to `counter`.
    pub(crate) fn add_time(counter: &AtomicU64, elapsed: Duration) {
        counter.fetch_add(elapsed.as_nanos() as u64, Relaxed);
    }

    /// Folds one finished job's per-pass traces into the engine-wide
    /// aggregates. Untracked trace names (a repeated simplify step still
    /// reports as `"simplify"`, so in practice only `"frontend"`) are
    /// skipped.
    pub(crate) fn record_passes(&self, traces: &[PassTrace]) {
        for trace in traces {
            let Some(i) = TRACKED_PASSES.iter().position(|&n| n == trace.pass) else {
                continue;
            };
            self.passes[i].runs.fetch_add(trace.runs as u64, Relaxed);
            self.passes[i]
                .ns
                .fetch_add(trace.wall.as_nanos() as u64, Relaxed);
            self.passes[i].fuel.fetch_add(trace.fuel, Relaxed);
        }
    }

    /// Folds one finished job's decision records into the engine-wide
    /// totals.
    pub(crate) fn record_decisions(&self, decisions: &[DecisionRecord]) {
        if decisions.is_empty() {
            return;
        }
        let totals = DecisionTotals::tally(decisions);
        self.decisions.lock().unwrap().merge(&totals);
    }

    /// Bumps a hit or miss counter pair.
    pub(crate) fn cache_event(hits: &AtomicU64, misses: &AtomicU64, hit: bool) {
        if hit {
            hits.fetch_add(1, Relaxed);
        } else {
            misses.fetch_add(1, Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub(crate) fn snapshot(&self) -> EngineStats {
        EngineStats {
            jobs_submitted: self.jobs_submitted.load(Relaxed),
            jobs_deduped: self.jobs_deduped.load(Relaxed),
            jobs_completed: self.jobs_completed.load(Relaxed),
            jobs_retried: self.jobs_retried.load(Relaxed),
            jobs_quarantined: self.jobs_quarantined.load(Relaxed),
            parse_hits: self.parse_hits.load(Relaxed),
            parse_misses: self.parse_misses.load(Relaxed),
            analysis_hits: self.analysis_hits.load(Relaxed),
            analysis_misses: self.analysis_misses.load(Relaxed),
            analysis_uncached: self.analysis_uncached.load(Relaxed),
            fingerprints_computed: self.fingerprints_computed.load(Relaxed),
            cache_evictions_fault: self.cache_evictions_fault.load(Relaxed),
            cache_evictions_corruption: self.cache_evictions_corruption.load(Relaxed),
            cache_evictions_pressure: self.cache_evictions_pressure.load(Relaxed),
            cache_bytes_used: 0,
            cache_corruptions_detected: self.cache_corruptions_detected.load(Relaxed),
            spec_hits: 0,
            spec_misses: 0,
            spec_evictions: 0,
            exec_hits: self.exec_hits.load(Relaxed),
            exec_misses: self.exec_misses.load(Relaxed),
            store_hits: self.store_hits.load(Relaxed),
            store_misses: self.store_misses.load(Relaxed),
            store_corruptions_detected: self.store_corruptions_detected.load(Relaxed),
            store_writes: self.store_writes.load(Relaxed),
            store_write_failures: self.store_write_failures.load(Relaxed),
            store_gc_evictions: 0,
            store_bytes_used: 0,
            profile_applied: self.profile_applied.load(Relaxed),
            profile_stale: self.profile_stale.load(Relaxed),
            workers_respawned: self.workers_respawned.load(Relaxed),
            queue_highwater: self.queue_highwater.load(Relaxed),
            parse_ns: self.parse_ns.load(Relaxed),
            analysis_ns: self.analysis_ns.load(Relaxed),
            transform_ns: self.transform_ns.load(Relaxed),
            execute_ns: self.execute_ns.load(Relaxed),
            passes: std::array::from_fn(|i| PassStat {
                runs: self.passes[i].runs.load(Relaxed),
                ns: self.passes[i].ns.load(Relaxed),
                fuel: self.passes[i].fuel.load(Relaxed),
            }),
            decisions: *self.decisions.lock().unwrap(),
        }
    }
}

/// Engine-wide totals for one pipeline pass, folded from every completed
/// job's [`PassTrace`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStat {
    /// Pass applications across all jobs (a `simplify*3` step counts 3).
    pub runs: u64,
    /// Cumulative wall-clock time in the pass, all workers summed.
    pub ns: u64,
    /// Cumulative fuel the pass charged to job budgets.
    pub fuel: u64,
}

/// A point-in-time snapshot of one engine's counters.
///
/// Cache hits count every job that *reused* an artifact — whether it found
/// the artifact ready or waited on another worker's in-flight computation —
/// so `analysis_misses` is exactly the number of control-flow analyses the
/// engine performed: one per distinct (source, analysis-policy) pair, which
/// is the invariant the warm-cache tests assert.
///
/// The `*_ns` totals are cumulative wall-clock time spent obtaining each
/// artifact across all workers (cache waits included), so they can exceed
/// elapsed wall time under parallelism. `transform_ns` covers the
/// inline + simplify tail; for deadline-bearing jobs that bypass the
/// analysis cache (`analysis_uncached`) it covers the analysis too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs accepted and enqueued (dedup'd jobs excluded).
    pub jobs_submitted: u64,
    /// Jobs coalesced onto an identical in-flight job.
    pub jobs_deduped: u64,
    /// Jobs that finished (degraded runs included — they complete).
    pub jobs_completed: u64,
    /// Supervised retry attempts after a transient failure.
    pub jobs_retried: u64,
    /// Jobs quarantined after exhausting their retries (the poison list).
    pub jobs_quarantined: u64,
    /// Parse artifacts reused.
    pub parse_hits: u64,
    /// Front-end runs performed.
    pub parse_misses: u64,
    /// Flow analyses reused.
    pub analysis_hits: u64,
    /// Flow analyses performed through the cache.
    pub analysis_misses: u64,
    /// Jobs that bypassed the caches (wall-clock deadline or fault plan set).
    pub analysis_uncached: u64,
    /// Cache-key fingerprints computed (source + config hashes). Bypass
    /// jobs skip fingerprinting entirely, so they contribute zero here.
    pub fingerprints_computed: u64,
    /// Evictions from injected `cache-evict` faults.
    pub cache_evictions_fault: u64,
    /// Evictions of entries the fingerprint recheck caught corrupted.
    pub cache_evictions_corruption: u64,
    /// Evictions shedding bytes to fit the `cache_bytes` budget (LRU
    /// order, in-flight entries exempt).
    pub cache_evictions_pressure: u64,
    /// Ready-entry bytes currently held by the in-memory caches (a gauge,
    /// filled at snapshot time; zero when byte accounting is off).
    pub cache_bytes_used: u64,
    /// Corrupted cache artifacts caught by the fingerprint recheck.
    pub cache_corruptions_detected: u64,
    /// Inliner specializations replayed from the shared memo cache (a
    /// gauge filled at snapshot time from the cache's own counters).
    pub spec_hits: u64,
    /// Inliner specializations recorded into the shared memo cache.
    pub spec_misses: u64,
    /// Specialization entries shed — byte pressure, variant-slot reuse,
    /// and the `spec-cache-evict` chaos seam all land here.
    pub spec_evictions: u64,
    /// Memoized sweep-cell executions served without a VM run.
    pub exec_hits: u64,
    /// Sweep-cell executions actually run on the VM through the cache.
    pub exec_misses: u64,
    /// Disk-store artifacts served without recomputation.
    pub store_hits: u64,
    /// Disk-store lookups that found nothing reusable.
    pub store_misses: u64,
    /// Corrupt disk-store frames caught by the checksum recheck on load
    /// (each one evicted, never served).
    pub store_corruptions_detected: u64,
    /// Artifacts durably persisted to the disk store.
    pub store_writes: u64,
    /// Disk-store writes that failed (IO errors, injected torn writes, and
    /// injected `store-full` rejections); the engine degrades to
    /// recomputation.
    pub store_write_failures: u64,
    /// Artifacts deleted by the store-quota GC (least-recently-used order,
    /// never mid-read).
    pub store_gc_evictions: u64,
    /// Bytes currently held by the disk store (a gauge, filled at snapshot
    /// time; zero when no store is attached).
    pub store_bytes_used: u64,
    /// Jobs marked profile-guided at submission (the engine's loaded
    /// profile matched the job's source).
    pub profile_applied: u64,
    /// Jobs whose source did not match the engine's loaded profile: the
    /// job ran in static order and a `profile.stale` instant was emitted.
    pub profile_stale: u64,
    /// Pool workers respawned after a panic (capacity never degrades).
    pub workers_respawned: u64,
    /// Highest number of jobs simultaneously queued or executing.
    pub queue_highwater: u64,
    /// Total time spent obtaining parse artifacts.
    pub parse_ns: u64,
    /// Total time spent obtaining analysis artifacts.
    pub analysis_ns: u64,
    /// Total time in the inline + simplify tail.
    pub transform_ns: u64,
    /// Total time executing sweep cells on the VM.
    pub execute_ns: u64,
    /// Per-pass totals across completed jobs, indexed like
    /// [`TRACKED_PASSES`] (baseline, analyze, inline, simplify).
    pub passes: [PassStat; 4],
    /// Inline decision totals across completed jobs, bucketed by reason.
    pub decisions: DecisionTotals,
}

impl EngineStats {
    /// The aggregate for a tracked pass, by name.
    pub fn pass(&self, name: &str) -> Option<PassStat> {
        TRACKED_PASSES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.passes[i])
    }
    /// Fraction of analysis-cache lookups that reused a result.
    pub fn analysis_hit_rate(&self) -> f64 {
        let total = self.analysis_hits + self.analysis_misses;
        if total == 0 {
            0.0
        } else {
            self.analysis_hits as f64 / total as f64
        }
    }

    /// Fraction of parse-cache lookups that reused a result.
    pub fn parse_hit_rate(&self) -> f64 {
        let total = self.parse_hits + self.parse_misses;
        if total == 0 {
            0.0
        } else {
            self.parse_hits as f64 / total as f64
        }
    }

    /// Fraction of disk-store lookups that served a verified artifact.
    pub fn store_hit_rate(&self) -> f64 {
        let total = self.store_hits + self.store_misses;
        if total == 0 {
            0.0
        } else {
            self.store_hits as f64 / total as f64
        }
    }

    /// The snapshot as one JSON object (stable key order, no trailing
    /// newline) — for the `fdi batch` CLI and the experiment logs.
    pub fn to_json(&self) -> String {
        let passes = TRACKED_PASSES
            .iter()
            .zip(&self.passes)
            .map(|(name, p)| {
                format!(
                    "\"{}\":{{\"runs\":{},\"ms\":{:.3},\"fuel\":{}}}",
                    name,
                    p.runs,
                    p.ns as f64 / 1e6,
                    p.fuel
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"jobs_submitted\":{},\"jobs_deduped\":{},\"jobs_completed\":{},",
                "\"jobs_retried\":{},\"jobs_quarantined\":{},",
                "\"parse_hits\":{},\"parse_misses\":{},",
                "\"analysis_hits\":{},\"analysis_misses\":{},\"analysis_uncached\":{},",
                "\"fingerprints_computed\":{},",
                "\"cache_evictions_fault\":{},",
                "\"cache_evictions_corruption\":{},\"cache_evictions_pressure\":{},",
                "\"cache_bytes_used\":{},\"cache_corruptions_detected\":{},",
                "\"spec_hits\":{},\"spec_misses\":{},\"spec_evictions\":{},",
                "\"exec_hits\":{},\"exec_misses\":{},",
                "\"store_hits\":{},\"store_misses\":{},\"store_corruptions_detected\":{},",
                "\"store_writes\":{},\"store_write_failures\":{},",
                "\"store_gc_evictions\":{},\"store_bytes_used\":{},",
                "\"profile_applied\":{},\"profile_stale\":{},",
                "\"workers_respawned\":{},\"queue_highwater\":{},",
                "\"parse_ms\":{:.3},\"analysis_ms\":{:.3},\"transform_ms\":{:.3},\"execute_ms\":{:.3},",
                "\"passes\":{{{}}},",
                "\"telemetry\":{{\"decisions\":{}}}}}"
            ),
            self.jobs_submitted,
            self.jobs_deduped,
            self.jobs_completed,
            self.jobs_retried,
            self.jobs_quarantined,
            self.parse_hits,
            self.parse_misses,
            self.analysis_hits,
            self.analysis_misses,
            self.analysis_uncached,
            self.fingerprints_computed,
            self.cache_evictions_fault,
            self.cache_evictions_corruption,
            self.cache_evictions_pressure,
            self.cache_bytes_used,
            self.cache_corruptions_detected,
            self.spec_hits,
            self.spec_misses,
            self.spec_evictions,
            self.exec_hits,
            self.exec_misses,
            self.store_hits,
            self.store_misses,
            self.store_corruptions_detected,
            self.store_writes,
            self.store_write_failures,
            self.store_gc_evictions,
            self.store_bytes_used,
            self.profile_applied,
            self.profile_stale,
            self.workers_respawned,
            self.queue_highwater,
            self.parse_ns as f64 / 1e6,
            self.analysis_ns as f64 / 1e6,
            self.transform_ns as f64 / 1e6,
            self.execute_ns as f64 / 1e6,
            passes,
            self.decisions.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highwater_tracks_peak_depth() {
        let s = StatsInner::default();
        s.enqueue();
        s.enqueue();
        s.dequeue();
        s.enqueue();
        s.dequeue();
        s.dequeue();
        let snap = s.snapshot();
        assert_eq!(snap.queue_highwater, 2);
    }

    #[test]
    fn hit_rates() {
        let mut s = EngineStats::default();
        assert_eq!(s.analysis_hit_rate(), 0.0);
        s.analysis_hits = 3;
        s.analysis_misses = 1;
        assert!((s.analysis_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let s = EngineStats::default();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"analysis_misses\":0"));
        assert!(j.contains("\"store_hits\":0,\"store_misses\":0"));
        assert!(j.contains("\"store_writes\":0,\"store_write_failures\":0"));
        assert!(j.contains("\"cache_evictions_pressure\":0"));
        assert!(
            !j.contains("\"cache_evictions\":"),
            "the deprecated all-cause sum must be gone"
        );
        assert!(j.contains("\"spec_hits\":0,\"spec_misses\":0,\"spec_evictions\":0"));
        assert!(j.contains("\"exec_hits\":0,\"exec_misses\":0"));
        assert!(j.contains("\"store_gc_evictions\":0,\"store_bytes_used\":0"));
        // One outer object, one "passes" object, one object per tracked
        // pass, plus the "telemetry" section and its "decisions" object.
        assert_eq!(j.matches('{').count(), 4 + TRACKED_PASSES.len());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"passes\":{\"baseline\":{\"runs\":0"));
        assert!(j.contains("\"telemetry\":{\"decisions\":{\"inlined\":0,"));
    }

    #[test]
    fn eviction_causes_snapshot_independently() {
        let s = StatsInner::default();
        s.cache_evictions_fault.fetch_add(2, Relaxed);
        s.cache_evictions_corruption.fetch_add(3, Relaxed);
        s.cache_evictions_pressure.fetch_add(5, Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.cache_evictions_fault, 2);
        assert_eq!(snap.cache_evictions_corruption, 3);
        assert_eq!(snap.cache_evictions_pressure, 5);
    }

    #[test]
    fn record_passes_folds_tracked_traces_and_skips_the_rest() {
        use fdi_core::{PassDisposition, PassTrace};
        let s = StatsInner::default();
        let trace = |pass, runs, fuel| PassTrace {
            pass,
            wall: Duration::from_micros(5),
            fuel,
            size_before: 10,
            size_after: 10,
            runs,
            disposition: PassDisposition::Completed,
        };
        s.record_passes(&[
            trace("frontend", 1, 0), // untracked: the parse cache owns it
            trace("baseline", 1, 10),
            trace("analyze", 1, 40),
            trace("inline", 1, 12),
            trace("simplify", 3, 9),
        ]);
        s.record_passes(&[trace("baseline", 1, 10), trace("simplify", 1, 8)]);
        let snap = s.snapshot();
        assert_eq!(snap.pass("baseline").unwrap().runs, 2);
        assert_eq!(snap.pass("analyze").unwrap().fuel, 40);
        assert_eq!(snap.pass("simplify").unwrap().runs, 4);
        assert_eq!(snap.pass("simplify").unwrap().fuel, 17);
        assert_eq!(snap.pass("inline").unwrap().ns, 5_000);
        assert_eq!(snap.pass("frontend"), None);
    }
}
