//! The sharded, disk-backed content-addressed artifact store.
//!
//! The in-memory caches ([`crate::cache`]) die with the process; this store
//! is what makes warm state survive a crash or restart (`fdi serve`'s whole
//! point). It persists *final job outputs* — the optimized program text plus
//! the summary numbers a report needs — keyed by the same content address
//! the engine dedups on: `(source fingerprint, whole-config fingerprint)`.
//! Only fully healthy outputs are persisted; a degraded or oracle-rejected
//! run must be recomputed, never replayed from disk.
//!
//! # Layout and framing
//!
//! ```text
//! <root>/out/<2-hex shard>/<16-hex src>-<16-hex cfg>.art
//! ```
//!
//! Each artifact file is one [`fdi_core::framing`] frame — the same layout
//! the profiler's `Profile` artifact uses — mirroring the in-memory
//! corrupted-artifact discipline (checksum recheck before reuse):
//!
//! ```text
//! magic "FDI\x01" · payload length (u64 LE) · FNV-1a checksum (u64 LE) · payload
//! ```
//!
//! The payload is the [`StoredOutput`] JSON codec. Writes go to a `.tmp`
//! sibling and are renamed into place, so a clean shutdown never leaves a
//! half-frame at a final path; stale `.tmp` files from a killed process are
//! swept on open. A load whose frame fails *any* check — magic, length,
//! checksum, UTF-8, JSON shape — deletes the file and reports
//! [`Loaded::Corrupt`]: the caller recomputes, and the store never serves a
//! guess.
//!
//! # Resource governance
//!
//! A store may carry a byte *quota* (`--store-bytes`): when a write pushes
//! the tracked footprint over it, a GC pass deletes least-recently-used
//! artifacts (recency is the in-process access tick, falling back to file
//! mtime for artifacts untouched since open) until the store fits. Deletion
//! takes the artifact's shard write lock while loads hold the read lock, so
//! the GC never yanks a file out from under a reader mid-verification. The
//! stale-`.tmp` sweep on open only removes tmp files older than an age
//! threshold — a *fresh* tmp may be a second daemon's in-flight write on the
//! same store, and sweeping it would tear that daemon's rename.
//!
//! [`fsck`] is the offline self-healing half: it walks every shard, verifies
//! each frame end to end, and (with repair) evicts corrupt artifacts and
//! orphaned tmp files, returning the store to a state where every load
//! either verifies or misses.
//!
//! # Chaos seams
//!
//! Four catalogued fault points drive the crash-recovery tests:
//!
//! * `store-write` — the atomic rename is skipped and a truncated frame
//!   lands at the final path: the footprint of a process killed mid-write.
//! * `store-read` — the load reports a miss; the caller must recompute.
//! * `store-corrupt` — one payload byte is flipped after a successful
//!   write; the checksum recheck on the next load must catch it.
//! * `store-full` — the write is rejected as if the device were full
//!   (ENOSPC); the engine must degrade to memory-only, never fail the job.

use crate::stats::StatsInner;
use fdi_core::faults::{FaultInjector, FaultPoint};
use fdi_core::framing::{decode_frame as decode_payload, encode_frame, HEADER};
use fdi_telemetry::json::{parse, Json};
use fdi_telemetry::{trace::json_string, DecisionTotals};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, SystemTime};

/// A persisted job outcome: everything a warm re-serve needs to answer a
/// request without recomputing — the optimized program text (the
/// byte-identity anchor) and the summary numbers of a batch-report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredOutput {
    /// Canonical unparse of the optimized program.
    pub optimized: String,
    /// Size of the threshold-0 baseline (paper size metric).
    pub baseline_size: usize,
    /// Size of the optimized program.
    pub optimized_size: usize,
    /// Call sites the inliner specialized.
    pub sites_inlined: usize,
    /// Total fuel the run charged to its budget.
    pub fuel_used: u64,
    /// Inline decision totals, bucketed by reason.
    pub decisions: DecisionTotals,
}

impl StoredOutput {
    /// Table 1's code-size ratio, matching
    /// [`fdi_core::PipelineOutput::size_ratio`].
    pub fn size_ratio(&self) -> f64 {
        self.optimized_size as f64 / self.baseline_size as f64
    }

    /// The payload codec: one JSON object, stable key order.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"v\":1,\"optimized\":{},\"baseline_size\":{},\"optimized_size\":{},",
                "\"sites_inlined\":{},\"fuel_used\":{},\"decisions\":{}}}"
            ),
            json_string(&self.optimized),
            self.baseline_size,
            self.optimized_size,
            self.sites_inlined,
            self.fuel_used,
            self.decisions.to_json(),
        )
    }

    /// Decodes [`StoredOutput::to_json`]. Any shape mismatch is an error —
    /// a half-written or foreign payload must read as corruption, not as a
    /// zeroed result.
    pub fn from_json(text: &str) -> Result<StoredOutput, String> {
        let doc = parse(text)?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        if num("v")? != 1 {
            return Err("unknown stored-output version".to_string());
        }
        let optimized = doc
            .get("optimized")
            .and_then(Json::as_str)
            .ok_or("missing field \"optimized\"")?
            .to_string();
        let mut decisions = DecisionTotals::default();
        for (key, value) in doc
            .get("decisions")
            .and_then(Json::as_obj)
            .ok_or("missing object \"decisions\"")?
        {
            let n = value.as_num().ok_or("non-numeric decision count")?;
            decisions.add(key, n as u64);
        }
        Ok(StoredOutput {
            optimized,
            baseline_size: num("baseline_size")? as usize,
            optimized_size: num("optimized_size")? as usize,
            sites_inlined: num("sites_inlined")? as usize,
            fuel_used: num("fuel_used")?,
            decisions,
        })
    }
}

/// What a [`DiskStore::load`] found.
#[derive(Debug)]
pub(crate) enum Loaded {
    /// A verified artifact.
    Hit(StoredOutput),
    /// No artifact on disk (or an injected `store-read` fault).
    Miss,
    /// A frame that failed verification; the file has been evicted.
    Corrupt,
}

/// What a [`DiskStore::save`] did.
#[derive(Debug)]
pub(crate) enum Saved {
    /// The artifact is durably in place.
    Written,
    /// An injected `store-write` fault tore the write: a truncated frame
    /// sits at the final path, exactly as a mid-write kill would leave it.
    Torn,
    /// An injected `store-full` fault rejected the write before any bytes
    /// landed — the ENOSPC footprint. The engine must degrade to
    /// memory-only operation, never fail the job.
    Full,
    /// A real IO failure; the store degrades to recomputation.
    Failed(String),
}

/// How old a `.tmp` file must be before the sweep on open removes it. A
/// fresh tmp may belong to a *live* writer — a second daemon sharing the
/// store — whose rename would be torn by an eager sweep.
const TMP_SWEEP_AGE: Duration = Duration::from_secs(60);

/// Shard-lock fan-out: 256 path shards map onto this many reader-writer
/// locks. Enough to keep unrelated loads and GC deletions from serializing.
const N_SHARD_LOCKS: usize = 16;

/// The disk-backed store. Cheap to clone around worker threads is not
/// needed — the engine holds exactly one behind its shared `Inner`.
#[derive(Debug)]
pub(crate) struct DiskStore {
    root: PathBuf,
    injector: Arc<FaultInjector>,
    /// Byte quota; `None` means unbounded.
    quota: Option<u64>,
    /// Tracked footprint of final-path artifacts, maintained by
    /// save/delete and seeded by a walk at open.
    used: AtomicU64,
    /// Artifacts deleted by the quota GC.
    gc_evictions: AtomicU64,
    /// In-process access recency per artifact path; files untouched since
    /// open fall back to their mtime (strictly older than any tick).
    recency: Mutex<HashMap<PathBuf, u64>>,
    tick: AtomicU64,
    /// Per-shard reader-writer locks: loads hold read, deletions (GC)
    /// hold write, so the GC never deletes a file mid-read.
    shard_locks: [RwLock<()>; N_SHARD_LOCKS],
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root`, sweeps
    /// *stale* `.tmp` files left by a killed writer (fresh ones are spared
    /// — see [`TMP_SWEEP_AGE`]), and seeds the footprint accounting.
    pub(crate) fn open(root: &Path, injector: Arc<FaultInjector>) -> Result<DiskStore, String> {
        DiskStore::open_aged(root, injector, TMP_SWEEP_AGE)
    }

    /// [`DiskStore::open`] with an explicit tmp-sweep age (test seam).
    pub(crate) fn open_aged(
        root: &Path,
        injector: Arc<FaultInjector>,
        tmp_age: Duration,
    ) -> Result<DiskStore, String> {
        let out = root.join("out");
        fs::create_dir_all(&out).map_err(|e| format!("cannot create store {out:?}: {e}"))?;
        let store = DiskStore {
            root: root.to_path_buf(),
            injector,
            quota: None,
            used: AtomicU64::new(0),
            gc_evictions: AtomicU64::new(0),
            recency: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            shard_locks: std::array::from_fn(|_| RwLock::new(())),
        };
        store.sweep_tmp(tmp_age);
        store.used.store(store.walk_bytes(), Relaxed);
        Ok(store)
    }

    /// Sets the byte quota the GC enforces after each write.
    pub(crate) fn with_quota(mut self, quota: Option<u64>) -> DiskStore {
        self.quota = quota;
        self
    }

    /// Tracked footprint in bytes.
    pub(crate) fn bytes_used(&self) -> u64 {
        self.used.load(Relaxed)
    }

    /// The configured quota, if any.
    pub(crate) fn quota(&self) -> Option<u64> {
        self.quota
    }

    /// Artifacts the quota GC has deleted.
    pub(crate) fn gc_evictions(&self) -> u64 {
        self.gc_evictions.load(Relaxed)
    }

    /// Removes abandoned `.tmp` files (a write-then-rename interrupted
    /// before the rename) older than `max_age`. Younger tmp files are
    /// spared: they may be a concurrent daemon's in-flight write, and its
    /// rename must find them intact. Final-path artifacts are left for
    /// `load`'s verification to judge.
    fn sweep_tmp(&self, max_age: Duration) {
        for file in walk_store(&self.root) {
            if !is_tmp(&file) {
                continue;
            }
            let stale = fs::metadata(&file)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| SystemTime::now().duration_since(t).ok())
                .is_some_and(|age| age >= max_age);
            if stale {
                let _ = fs::remove_file(&file);
            }
        }
    }

    /// Sum of final-path artifact bytes on disk right now.
    fn walk_bytes(&self) -> u64 {
        walk_store(&self.root)
            .filter(|p| !is_tmp(p))
            .filter_map(|p| fs::metadata(&p).ok())
            .map(|m| m.len())
            .sum()
    }

    /// The artifact path for a job key, sharded by the source fingerprint's
    /// top byte.
    fn path(&self, key: (u64, u64)) -> PathBuf {
        self.root
            .join("out")
            .join(format!("{:02x}", (key.0 >> 56) as u8))
            .join(format!("{:016x}-{:016x}.art", key.0, key.1))
    }

    /// The reader-writer lock covering `key`'s shard.
    fn shard_lock(&self, key: (u64, u64)) -> &RwLock<()> {
        &self.shard_locks[((key.0 >> 56) as usize) % N_SHARD_LOCKS]
    }

    /// The reader-writer lock covering an artifact path (by its 2-hex
    /// shard directory name; unparsable paths share lock zero).
    fn shard_lock_of(&self, path: &Path) -> &RwLock<()> {
        let shard = path
            .parent()
            .and_then(|d| d.file_name())
            .and_then(|n| n.to_str())
            .and_then(|n| u8::from_str_radix(n, 16).ok())
            .unwrap_or(0);
        &self.shard_locks[shard as usize % N_SHARD_LOCKS]
    }

    /// Subtracts `n` tracked bytes, saturating: accounting drift must
    /// never wrap the gauge.
    fn sub_used(&self, n: u64) {
        let _ = self
            .used
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Stamps `path` most-recently-used.
    fn touch(&self, path: PathBuf) {
        let t = self.tick.fetch_add(1, Relaxed);
        self.recency.lock().unwrap().insert(path, t);
    }

    /// Loads and verifies the artifact for `key`. Corrupt frames are
    /// deleted before reporting, so one bad artifact costs exactly one
    /// recompute and can never be served twice. The whole read (open,
    /// verify, corrupt-evict) holds the shard read lock, so a concurrent
    /// GC cannot delete the file mid-read.
    pub(crate) fn load(&self, key: (u64, u64)) -> Loaded {
        if self.injector.poll(FaultPoint::StoreRead).is_some() {
            return Loaded::Miss;
        }
        let path = self.path(key);
        let _guard = self.shard_lock(key).read().unwrap();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Loaded::Miss,
        };
        match decode_frame(&bytes) {
            Some(out) => {
                self.touch(path);
                Loaded::Hit(out)
            }
            None => {
                if fs::remove_file(&path).is_ok() {
                    self.sub_used(bytes.len() as u64);
                    self.recency.lock().unwrap().remove(&path);
                }
                Loaded::Corrupt
            }
        }
    }

    /// Persists the artifact for `key` with write-then-rename, then (when
    /// a quota is set) sheds least-recently-used artifacts until the store
    /// fits again.
    pub(crate) fn save(&self, key: (u64, u64), out: &StoredOutput) -> Saved {
        if self.injector.poll(FaultPoint::StoreFull).is_some() {
            // Injected ENOSPC: rejected before any bytes land.
            return Saved::Full;
        }
        let path = self.path(key);
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                return Saved::Failed(format!("cannot create shard {dir:?}: {e}"));
            }
        }
        let frame = encode_frame(&out.to_json());
        let old = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if self.injector.poll(FaultPoint::StoreWrite).is_some() {
            // Simulated mid-write kill: a truncated frame at the *final*
            // path, bypassing the rename discipline entirely.
            let torn = &frame[..HEADER + (frame.len() - HEADER) / 2];
            if fs::write(&path, torn).is_ok() {
                self.sub_used(old);
                self.used.fetch_add(torn.len() as u64, Relaxed);
            }
            return Saved::Torn;
        }
        let tmp = path.with_extension("tmp");
        let write = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&frame))
            .and_then(|()| fs::rename(&tmp, &path));
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Saved::Failed(format!("cannot write {path:?}: {e}"));
        }
        self.sub_used(old);
        self.used.fetch_add(frame.len() as u64, Relaxed);
        self.touch(path.clone());
        if self.injector.poll(FaultPoint::StoreCorrupt).is_some() {
            // Silent bit rot after a successful write: flip the payload's
            // last byte and let the next load's checksum recheck catch it.
            if let Ok(mut bytes) = fs::read(&path) {
                if let Some(last) = bytes.last_mut() {
                    *last ^= 0x40;
                    let _ = fs::write(&path, &bytes);
                }
            }
        }
        self.enforce_quota(&path);
        Saved::Written
    }

    /// Sheds least-recently-used artifacts while the footprint exceeds the
    /// quota. `keep` (the artifact just written) is never a candidate —
    /// evicting the write that triggered the GC would make the save a
    /// silent no-op. Artifacts untouched since open order by mtime, before
    /// (older than) anything this process has stamped. Each deletion holds
    /// its shard write lock, so no reader loses a file mid-verification.
    fn enforce_quota(&self, keep: &Path) {
        let Some(quota) = self.quota else { return };
        if self.used.load(Relaxed) <= quota {
            return;
        }
        // Unseen artifacts (mtime-ordered) drain before any recency-stamped
        // one: a tick means "this process served it", which mtime can't say.
        let recency = self.recency.lock().unwrap();
        let mut unseen: Vec<(SystemTime, PathBuf, u64)> = Vec::new();
        let mut seen: Vec<(u64, PathBuf, u64)> = Vec::new();
        for file in walk_store(&self.root) {
            if is_tmp(&file) || file == keep {
                continue;
            }
            let Ok(meta) = fs::metadata(&file) else {
                continue;
            };
            match recency.get(&file) {
                Some(&t) => seen.push((t, file, meta.len())),
                None => unseen.push((
                    meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                    file,
                    meta.len(),
                )),
            }
        }
        drop(recency);
        unseen.sort();
        seen.sort();
        let victims = unseen
            .into_iter()
            .map(|(_, p, n)| (p, n))
            .chain(seen.into_iter().map(|(_, p, n)| (p, n)));
        for (path, len) in victims {
            if self.used.load(Relaxed) <= quota {
                break;
            }
            let _guard = self.shard_lock_of(&path).write().unwrap();
            if fs::remove_file(&path).is_ok() {
                self.sub_used(len);
                self.gc_evictions.fetch_add(1, Relaxed);
                self.recency.lock().unwrap().remove(&path);
            }
        }
    }

    /// Folds one load outcome into the engine's counters and returns the
    /// hit, if any.
    pub(crate) fn load_counted(&self, key: (u64, u64), stats: &StatsInner) -> Option<StoredOutput> {
        match self.load(key) {
            Loaded::Hit(out) => {
                stats.store_hits.fetch_add(1, Relaxed);
                Some(out)
            }
            Loaded::Miss => {
                stats.store_misses.fetch_add(1, Relaxed);
                None
            }
            Loaded::Corrupt => {
                stats.store_misses.fetch_add(1, Relaxed);
                stats.store_corruptions_detected.fetch_add(1, Relaxed);
                None
            }
        }
    }
}

/// Verifies a frame end to end ([`fdi_core::framing`]) and decodes its
/// payload; `None` means corrupt.
fn decode_frame(bytes: &[u8]) -> Option<StoredOutput> {
    let payload = decode_payload(bytes)?;
    StoredOutput::from_json(payload).ok()
}

/// Every file under `<root>/out/<shard>/`, tmp files included.
fn walk_store(root: &Path) -> impl Iterator<Item = PathBuf> {
    fs::read_dir(root.join("out"))
        .into_iter()
        .flatten()
        .flatten()
        .flat_map(|shard| fs::read_dir(shard.path()).into_iter().flatten().flatten())
        .map(|file| file.path())
}

fn is_tmp(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "tmp")
}

/// What [`fsck`] found (and, with repair, did) in a store.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Final-path artifacts examined.
    pub scanned: usize,
    /// Artifacts whose frame verified end to end.
    pub healthy: usize,
    /// Artifacts that failed any check (magic, length, checksum, UTF-8,
    /// payload shape).
    pub corrupt: usize,
    /// Abandoned `.tmp` files (an interrupted write-then-rename).
    pub orphaned_tmp: usize,
    /// Damaged files deleted (repair mode only).
    pub repaired: usize,
    /// Bytes held by healthy artifacts.
    pub bytes: u64,
    /// The damaged paths, for the report.
    pub corrupt_paths: Vec<PathBuf>,
}

impl FsckReport {
    /// Damaged files still on disk after this run.
    pub fn unrepaired(&self) -> usize {
        (self.corrupt + self.orphaned_tmp).saturating_sub(self.repaired)
    }
}

/// Walks every shard of the store at `root`, verifying each artifact's
/// frame end to end — exactly the checks a load performs, but across the
/// whole store at once. With `repair` set, corrupt artifacts and orphaned
/// tmp files are deleted (an evicted artifact costs one recompute; a
/// served corruption would cost a wrong answer, which the store never
/// allows). Run it against a quiesced store: a live daemon's in-flight
/// tmp files are indistinguishable from orphans.
pub fn fsck(root: &Path, repair: bool) -> Result<FsckReport, String> {
    let out = root.join("out");
    if !out.is_dir() {
        return Err(format!("{root:?} is not an artifact store (no out/ dir)"));
    }
    let mut report = FsckReport::default();
    for file in walk_store(root) {
        if is_tmp(&file) {
            report.orphaned_tmp += 1;
            report.corrupt_paths.push(file.clone());
            if repair && fs::remove_file(&file).is_ok() {
                report.repaired += 1;
            }
            continue;
        }
        report.scanned += 1;
        let healthy = fs::read(&file)
            .ok()
            .and_then(|bytes| decode_frame(&bytes).map(|_| bytes.len() as u64));
        match healthy {
            Some(len) => {
                report.healthy += 1;
                report.bytes += len;
            }
            None => {
                report.corrupt += 1;
                report.corrupt_paths.push(file.clone());
                if repair && fs::remove_file(&file).is_ok() {
                    report.repaired += 1;
                }
            }
        }
    }
    report.corrupt_paths.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_core::faults::FaultPlan;
    use std::sync::atomic::AtomicU64;

    fn quiet_injector() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new(FaultPlan::default()))
    }

    fn tmp_root(tag: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fdi-store-{tag}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> StoredOutput {
        let mut decisions = DecisionTotals::default();
        decisions.add("inlined", 3);
        decisions.add("loop_guard", 1);
        StoredOutput {
            optimized: "(define (f x) (* x x))\n(f 2)".to_string(),
            baseline_size: 24,
            optimized_size: 18,
            sites_inlined: 3,
            fuel_used: 97,
            decisions,
        }
    }

    #[test]
    fn json_codec_round_trips() {
        let out = sample();
        let back = StoredOutput::from_json(&out.to_json()).unwrap();
        assert_eq!(out, back);
        assert!((out.size_ratio() - 0.75).abs() < 1e-12);
        // Escaping survives: program text with quotes and newlines.
        let tricky = StoredOutput {
            optimized: "(display \"a\nb\\c\")".to_string(),
            ..sample()
        };
        assert_eq!(StoredOutput::from_json(&tricky.to_json()).unwrap(), tricky);
    }

    #[test]
    fn from_json_rejects_foreign_shapes() {
        for bad in [
            "{}",
            "{\"v\":2,\"optimized\":\"x\"}",
            "{\"v\":1,\"optimized\":7}",
            "{\"v\":1,\"optimized\":\"x\",\"baseline_size\":1}",
            "not json at all",
        ] {
            assert!(StoredOutput::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn save_then_load_round_trips_across_reopen() {
        let root = tmp_root("roundtrip");
        let out = sample();
        let key = (0xAB54_A98C_EB1F_0AD2u64, 0x0123_4567_89AB_CDEFu64);
        {
            let store = DiskStore::open(&root, quiet_injector()).unwrap();
            assert!(matches!(store.save(key, &out), Saved::Written));
        }
        // A fresh open — the restart path — still verifies and serves it.
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        match store.load(key) {
            Loaded::Hit(back) => assert_eq!(back, out),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(store.load((1, 2)), Loaded::Miss));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_frame_is_evicted_not_served() {
        let root = tmp_root("truncate");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        let key = (11, 22);
        store.save(key, &sample());
        let path = store.path(key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(store.load(key), Loaded::Corrupt));
        assert!(!path.exists(), "corrupt artifact must be evicted");
        // The eviction is terminal: the next load is a plain miss.
        assert!(matches!(store.load(key), Loaded::Miss));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flipped_byte_is_evicted_not_served() {
        let root = tmp_root("flip");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        let key = (33, 44);
        store.save(key, &sample());
        let path = store.path(key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER + (bytes.len() - HEADER) / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load(key), Loaded::Corrupt));
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_torn_write_reads_as_corrupt_then_recovers() {
        let root = tmp_root("torn");
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::only(7, &[FaultPoint::StoreWrite]).with_limit(1),
        ));
        let store = DiskStore::open(&root, injector).unwrap();
        let key = (55, 66);
        // First save is torn: a truncated frame sits at the final path.
        assert!(matches!(store.save(key, &sample()), Saved::Torn));
        assert!(store.path(key).exists());
        assert!(matches!(store.load(key), Loaded::Corrupt));
        // The injector's cap is spent: the re-save lands cleanly.
        assert!(matches!(store.save(key, &sample()), Saved::Written));
        assert!(matches!(store.load(key), Loaded::Hit(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_corruption_is_caught_by_the_checksum() {
        let root = tmp_root("chaos-corrupt");
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::only(9, &[FaultPoint::StoreCorrupt]).with_limit(1),
        ));
        let store = DiskStore::open(&root, injector).unwrap();
        let key = (77, 88);
        assert!(matches!(store.save(key, &sample()), Saved::Written));
        assert!(matches!(store.load(key), Loaded::Corrupt));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_read_fault_is_a_miss_never_a_guess() {
        let root = tmp_root("chaos-read");
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::only(3, &[FaultPoint::StoreRead]).with_limit(1),
        ));
        let store = DiskStore::open(&root, injector).unwrap();
        let key = (99, 11);
        store.save(key, &sample());
        assert!(matches!(store.load(key), Loaded::Miss), "read fault: miss");
        assert!(matches!(store.load(key), Loaded::Hit(_)), "cap spent: hit");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let root = tmp_root("sweep");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        let key = (12, 34);
        store.save(key, &sample());
        let stale = store.path(key).with_extension("tmp");
        fs::write(&stale, b"half a frame").unwrap();
        drop(store);
        // Older than the (tiny, test-seam) threshold: swept.
        std::thread::sleep(Duration::from_millis(30));
        let store =
            DiskStore::open_aged(&root, quiet_injector(), Duration::from_millis(10)).unwrap();
        assert!(!stale.exists(), "stale tmp must be swept");
        assert!(matches!(store.load(key), Loaded::Hit(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fresh_tmp_survives_a_second_daemon_opening_the_store() {
        // Regression: daemon B opening a shared store must not sweep a tmp
        // file daemon A wrote moments ago — A's rename would find nothing.
        let root = tmp_root("two-daemons");
        let a = DiskStore::open(&root, quiet_injector()).unwrap();
        let key = (0x5600_0000_0000_0001, 2);
        let path = a.path(key);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        // Daemon A mid-save: the frame is at the tmp path, rename pending.
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, encode_frame(&sample().to_json())).unwrap();
        // Daemon B opens the same store with the production sweep age.
        let b = DiskStore::open(&root, quiet_injector()).unwrap();
        assert!(tmp.exists(), "a fresh tmp is a live write, not an orphan");
        // A's rename completes; both daemons now serve the artifact.
        fs::rename(&tmp, &path).unwrap();
        assert!(matches!(a.load(key), Loaded::Hit(_)));
        assert!(matches!(b.load(key), Loaded::Hit(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn quota_gc_sheds_least_recently_used_first() {
        let root = tmp_root("quota");
        // Size one artifact, then set the quota to hold roughly two.
        let probe = DiskStore::open(&root, quiet_injector()).unwrap();
        probe.save((0, 0), &sample());
        let one = probe.bytes_used();
        assert!(one > 0);
        drop(probe);
        let _ = fs::remove_dir_all(&root);

        let store = DiskStore::open(&root, quiet_injector())
            .unwrap()
            .with_quota(Some(2 * one + one / 2));
        // Keys in distinct shards (distinct top bytes) to exercise the
        // per-shard locking in GC.
        let k1 = (0x0100_0000_0000_0000u64, 1);
        let k2 = (0x0200_0000_0000_0000u64, 2);
        let k3 = (0x0300_0000_0000_0000u64, 3);
        store.save(k1, &sample());
        store.save(k2, &sample());
        assert_eq!(store.gc_evictions(), 0, "two fit under the quota");
        // Touch k1 so k2 is the LRU, then overflow with k3.
        assert!(matches!(store.load(k1), Loaded::Hit(_)));
        store.save(k3, &sample());
        assert_eq!(store.gc_evictions(), 1);
        assert!(matches!(store.load(k2), Loaded::Miss), "LRU k2 was shed");
        assert!(matches!(store.load(k1), Loaded::Hit(_)));
        assert!(
            matches!(store.load(k3), Loaded::Hit(_)),
            "just-written kept"
        );
        assert!(store.bytes_used() <= 2 * one + one / 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn quota_gc_drains_unseen_artifacts_before_recent_ones() {
        let root = tmp_root("quota-unseen");
        let key_old = (0x1100_0000_0000_0000u64, 9);
        let key_new = (0x2200_0000_0000_0000u64, 9);
        {
            let store = DiskStore::open(&root, quiet_injector()).unwrap();
            store.save(key_old, &sample());
        }
        // Reopen: key_old is on disk but untouched this process.
        let one = {
            let store = DiskStore::open(&root, quiet_injector()).unwrap();
            store.bytes_used()
        };
        let store = DiskStore::open(&root, quiet_injector())
            .unwrap()
            .with_quota(Some(one + one / 2));
        store.save(key_new, &sample());
        assert_eq!(store.gc_evictions(), 1);
        assert!(
            matches!(store.load(key_old), Loaded::Miss),
            "the artifact from a previous life goes first"
        );
        assert!(matches!(store.load(key_new), Loaded::Hit(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bytes_used_tracks_saves_evictions_and_reopen() {
        let root = tmp_root("accounting");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        assert_eq!(store.bytes_used(), 0);
        let key = (0x0A00_0000_0000_0000u64, 1);
        store.save(key, &sample());
        let one = store.bytes_used();
        assert!(one > 0);
        // Overwrite, same content: footprint unchanged (old len refunded).
        store.save(key, &sample());
        assert_eq!(store.bytes_used(), one);
        // Corrupt-evict refunds the bytes.
        let path = store.path(key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        drop(store);
        // Reopen re-walks the (now truncated) file…
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        assert_eq!(store.bytes_used(), (bytes.len() / 2) as u64);
        // …and the corrupt-evict zeroes the footprint.
        assert!(matches!(store.load(key), Loaded::Corrupt));
        assert_eq!(store.bytes_used(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_store_full_rejects_the_write_without_bytes() {
        let root = tmp_root("full");
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::only(5, &[FaultPoint::StoreFull]).with_limit(1),
        ));
        let store = DiskStore::open(&root, injector).unwrap();
        let key = (44, 55);
        assert!(matches!(store.save(key, &sample()), Saved::Full));
        assert!(!store.path(key).exists(), "ENOSPC leaves nothing behind");
        assert_eq!(store.bytes_used(), 0);
        // The cap is spent: the retry lands.
        assert!(matches!(store.save(key, &sample()), Saved::Written));
        assert!(matches!(store.load(key), Loaded::Hit(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_reports_and_repairs_damage() {
        let root = tmp_root("fsck");
        assert!(fsck(&root, false).is_err(), "not a store yet");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        let good = (0x0100_0000_0000_0000u64, 1);
        let bad = (0x0200_0000_0000_0000u64, 2);
        store.save(good, &sample());
        store.save(bad, &sample());
        // Flip one payload byte in `bad` and orphan a tmp next to `good`.
        let bad_path = store.path(bad);
        let mut bytes = fs::read(&bad_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&bad_path, &bytes).unwrap();
        let orphan = store.path(good).with_extension("tmp");
        fs::write(&orphan, b"interrupted").unwrap();
        drop(store);

        let report = fsck(&root, false).unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.healthy, 1);
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.orphaned_tmp, 1);
        assert_eq!(report.repaired, 0);
        assert_eq!(report.unrepaired(), 2);
        assert_eq!(report.corrupt_paths.len(), 2);
        assert!(bad_path.exists(), "report mode must not delete");

        let report = fsck(&root, true).unwrap();
        assert_eq!(report.repaired, 2);
        assert_eq!(report.unrepaired(), 0);
        assert!(!bad_path.exists() && !orphan.exists());

        // The healed store is clean and still serves the good artifact.
        let report = fsck(&root, false).unwrap();
        assert_eq!((report.corrupt, report.orphaned_tmp), (0, 0));
        assert_eq!(report.healthy, 1);
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        assert!(matches!(store.load(good), Loaded::Hit(_)));
        assert!(matches!(store.load(bad), Loaded::Miss));
        let _ = fs::remove_dir_all(&root);
    }
}
