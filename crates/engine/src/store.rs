//! The sharded, disk-backed content-addressed artifact store.
//!
//! The in-memory caches ([`crate::cache`]) die with the process; this store
//! is what makes warm state survive a crash or restart (`fdi serve`'s whole
//! point). It persists *final job outputs* — the optimized program text plus
//! the summary numbers a report needs — keyed by the same content address
//! the engine dedups on: `(source fingerprint, whole-config fingerprint)`.
//! Only fully healthy outputs are persisted; a degraded or oracle-rejected
//! run must be recomputed, never replayed from disk.
//!
//! # Layout and framing
//!
//! ```text
//! <root>/out/<2-hex shard>/<16-hex src>-<16-hex cfg>.art
//! ```
//!
//! Each artifact file is one [`fdi_core::framing`] frame — the same layout
//! the profiler's `Profile` artifact uses — mirroring the in-memory
//! corrupted-artifact discipline (checksum recheck before reuse):
//!
//! ```text
//! magic "FDI\x01" · payload length (u64 LE) · FNV-1a checksum (u64 LE) · payload
//! ```
//!
//! The payload is the [`StoredOutput`] JSON codec. Writes go to a `.tmp`
//! sibling and are renamed into place, so a clean shutdown never leaves a
//! half-frame at a final path; stale `.tmp` files from a killed process are
//! swept on open. A load whose frame fails *any* check — magic, length,
//! checksum, UTF-8, JSON shape — deletes the file and reports
//! [`Loaded::Corrupt`]: the caller recomputes, and the store never serves a
//! guess.
//!
//! # Chaos seams
//!
//! Three catalogued fault points drive the crash-recovery tests:
//!
//! * `store-write` — the atomic rename is skipped and a truncated frame
//!   lands at the final path: the footprint of a process killed mid-write.
//! * `store-read` — the load reports a miss; the caller must recompute.
//! * `store-corrupt` — one payload byte is flipped after a successful
//!   write; the checksum recheck on the next load must catch it.

use crate::stats::StatsInner;
use fdi_core::faults::{FaultInjector, FaultPoint};
use fdi_core::framing::{decode_frame as decode_payload, encode_frame, HEADER};
use fdi_telemetry::json::{parse, Json};
use fdi_telemetry::{trace::json_string, DecisionTotals};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// A persisted job outcome: everything a warm re-serve needs to answer a
/// request without recomputing — the optimized program text (the
/// byte-identity anchor) and the summary numbers of a batch-report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredOutput {
    /// Canonical unparse of the optimized program.
    pub optimized: String,
    /// Size of the threshold-0 baseline (paper size metric).
    pub baseline_size: usize,
    /// Size of the optimized program.
    pub optimized_size: usize,
    /// Call sites the inliner specialized.
    pub sites_inlined: usize,
    /// Total fuel the run charged to its budget.
    pub fuel_used: u64,
    /// Inline decision totals, bucketed by reason.
    pub decisions: DecisionTotals,
}

impl StoredOutput {
    /// Table 1's code-size ratio, matching
    /// [`fdi_core::PipelineOutput::size_ratio`].
    pub fn size_ratio(&self) -> f64 {
        self.optimized_size as f64 / self.baseline_size as f64
    }

    /// The payload codec: one JSON object, stable key order.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"v\":1,\"optimized\":{},\"baseline_size\":{},\"optimized_size\":{},",
                "\"sites_inlined\":{},\"fuel_used\":{},\"decisions\":{}}}"
            ),
            json_string(&self.optimized),
            self.baseline_size,
            self.optimized_size,
            self.sites_inlined,
            self.fuel_used,
            self.decisions.to_json(),
        )
    }

    /// Decodes [`StoredOutput::to_json`]. Any shape mismatch is an error —
    /// a half-written or foreign payload must read as corruption, not as a
    /// zeroed result.
    pub fn from_json(text: &str) -> Result<StoredOutput, String> {
        let doc = parse(text)?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        if num("v")? != 1 {
            return Err("unknown stored-output version".to_string());
        }
        let optimized = doc
            .get("optimized")
            .and_then(Json::as_str)
            .ok_or("missing field \"optimized\"")?
            .to_string();
        let mut decisions = DecisionTotals::default();
        for (key, value) in doc
            .get("decisions")
            .and_then(Json::as_obj)
            .ok_or("missing object \"decisions\"")?
        {
            let n = value.as_num().ok_or("non-numeric decision count")?;
            decisions.add(key, n as u64);
        }
        Ok(StoredOutput {
            optimized,
            baseline_size: num("baseline_size")? as usize,
            optimized_size: num("optimized_size")? as usize,
            sites_inlined: num("sites_inlined")? as usize,
            fuel_used: num("fuel_used")?,
            decisions,
        })
    }
}

/// What a [`DiskStore::load`] found.
#[derive(Debug)]
pub(crate) enum Loaded {
    /// A verified artifact.
    Hit(StoredOutput),
    /// No artifact on disk (or an injected `store-read` fault).
    Miss,
    /// A frame that failed verification; the file has been evicted.
    Corrupt,
}

/// What a [`DiskStore::save`] did.
#[derive(Debug)]
pub(crate) enum Saved {
    /// The artifact is durably in place.
    Written,
    /// An injected `store-write` fault tore the write: a truncated frame
    /// sits at the final path, exactly as a mid-write kill would leave it.
    Torn,
    /// A real IO failure; the store degrades to recomputation.
    Failed(String),
}

/// The disk-backed store. Cheap to clone around worker threads is not
/// needed — the engine holds exactly one behind its shared `Inner`.
#[derive(Debug)]
pub(crate) struct DiskStore {
    root: PathBuf,
    injector: Arc<FaultInjector>,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root` and sweeps
    /// stale `.tmp` files left by a killed writer.
    pub(crate) fn open(root: &Path, injector: Arc<FaultInjector>) -> Result<DiskStore, String> {
        let out = root.join("out");
        fs::create_dir_all(&out).map_err(|e| format!("cannot create store {out:?}: {e}"))?;
        let store = DiskStore {
            root: root.to_path_buf(),
            injector,
        };
        store.sweep_tmp();
        Ok(store)
    }

    /// Removes abandoned `.tmp` files (a write-then-rename interrupted
    /// before the rename). Final-path artifacts are left for `load`'s
    /// verification to judge.
    fn sweep_tmp(&self) {
        let Ok(shards) = fs::read_dir(self.root.join("out")) else {
            return;
        };
        for shard in shards.flatten() {
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                if file.path().extension().is_some_and(|e| e == "tmp") {
                    let _ = fs::remove_file(file.path());
                }
            }
        }
    }

    /// The artifact path for a job key, sharded by the source fingerprint's
    /// top byte.
    fn path(&self, key: (u64, u64)) -> PathBuf {
        self.root
            .join("out")
            .join(format!("{:02x}", (key.0 >> 56) as u8))
            .join(format!("{:016x}-{:016x}.art", key.0, key.1))
    }

    /// Loads and verifies the artifact for `key`. Corrupt frames are
    /// deleted before reporting, so one bad artifact costs exactly one
    /// recompute and can never be served twice.
    pub(crate) fn load(&self, key: (u64, u64)) -> Loaded {
        if self.injector.poll(FaultPoint::StoreRead).is_some() {
            return Loaded::Miss;
        }
        let path = self.path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Loaded::Miss,
        };
        match decode_frame(&bytes) {
            Some(out) => Loaded::Hit(out),
            None => {
                let _ = fs::remove_file(&path);
                Loaded::Corrupt
            }
        }
    }

    /// Persists the artifact for `key` with write-then-rename.
    pub(crate) fn save(&self, key: (u64, u64), out: &StoredOutput) -> Saved {
        let path = self.path(key);
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                return Saved::Failed(format!("cannot create shard {dir:?}: {e}"));
            }
        }
        let frame = encode_frame(&out.to_json());
        if self.injector.poll(FaultPoint::StoreWrite).is_some() {
            // Simulated mid-write kill: a truncated frame at the *final*
            // path, bypassing the rename discipline entirely.
            let _ = fs::write(&path, &frame[..HEADER + (frame.len() - HEADER) / 2]);
            return Saved::Torn;
        }
        let tmp = path.with_extension("tmp");
        let write = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&frame))
            .and_then(|()| fs::rename(&tmp, &path));
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Saved::Failed(format!("cannot write {path:?}: {e}"));
        }
        if self.injector.poll(FaultPoint::StoreCorrupt).is_some() {
            // Silent bit rot after a successful write: flip the payload's
            // last byte and let the next load's checksum recheck catch it.
            if let Ok(mut bytes) = fs::read(&path) {
                if let Some(last) = bytes.last_mut() {
                    *last ^= 0x40;
                    let _ = fs::write(&path, &bytes);
                }
            }
        }
        Saved::Written
    }

    /// Folds one load outcome into the engine's counters and returns the
    /// hit, if any.
    pub(crate) fn load_counted(&self, key: (u64, u64), stats: &StatsInner) -> Option<StoredOutput> {
        match self.load(key) {
            Loaded::Hit(out) => {
                stats.store_hits.fetch_add(1, Relaxed);
                Some(out)
            }
            Loaded::Miss => {
                stats.store_misses.fetch_add(1, Relaxed);
                None
            }
            Loaded::Corrupt => {
                stats.store_misses.fetch_add(1, Relaxed);
                stats.store_corruptions_detected.fetch_add(1, Relaxed);
                None
            }
        }
    }
}

/// Verifies a frame end to end ([`fdi_core::framing`]) and decodes its
/// payload; `None` means corrupt.
fn decode_frame(bytes: &[u8]) -> Option<StoredOutput> {
    let payload = decode_payload(bytes)?;
    StoredOutput::from_json(payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_core::faults::FaultPlan;
    use std::sync::atomic::AtomicU64;

    fn quiet_injector() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new(FaultPlan::default()))
    }

    fn tmp_root(tag: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fdi-store-{tag}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> StoredOutput {
        let mut decisions = DecisionTotals::default();
        decisions.add("inlined", 3);
        decisions.add("loop_guard", 1);
        StoredOutput {
            optimized: "(define (f x) (* x x))\n(f 2)".to_string(),
            baseline_size: 24,
            optimized_size: 18,
            sites_inlined: 3,
            fuel_used: 97,
            decisions,
        }
    }

    #[test]
    fn json_codec_round_trips() {
        let out = sample();
        let back = StoredOutput::from_json(&out.to_json()).unwrap();
        assert_eq!(out, back);
        assert!((out.size_ratio() - 0.75).abs() < 1e-12);
        // Escaping survives: program text with quotes and newlines.
        let tricky = StoredOutput {
            optimized: "(display \"a\nb\\c\")".to_string(),
            ..sample()
        };
        assert_eq!(StoredOutput::from_json(&tricky.to_json()).unwrap(), tricky);
    }

    #[test]
    fn from_json_rejects_foreign_shapes() {
        for bad in [
            "{}",
            "{\"v\":2,\"optimized\":\"x\"}",
            "{\"v\":1,\"optimized\":7}",
            "{\"v\":1,\"optimized\":\"x\",\"baseline_size\":1}",
            "not json at all",
        ] {
            assert!(StoredOutput::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn save_then_load_round_trips_across_reopen() {
        let root = tmp_root("roundtrip");
        let out = sample();
        let key = (0xAB54_A98C_EB1F_0AD2u64, 0x0123_4567_89AB_CDEFu64);
        {
            let store = DiskStore::open(&root, quiet_injector()).unwrap();
            assert!(matches!(store.save(key, &out), Saved::Written));
        }
        // A fresh open — the restart path — still verifies and serves it.
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        match store.load(key) {
            Loaded::Hit(back) => assert_eq!(back, out),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(store.load((1, 2)), Loaded::Miss));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_frame_is_evicted_not_served() {
        let root = tmp_root("truncate");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        let key = (11, 22);
        store.save(key, &sample());
        let path = store.path(key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(store.load(key), Loaded::Corrupt));
        assert!(!path.exists(), "corrupt artifact must be evicted");
        // The eviction is terminal: the next load is a plain miss.
        assert!(matches!(store.load(key), Loaded::Miss));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flipped_byte_is_evicted_not_served() {
        let root = tmp_root("flip");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        let key = (33, 44);
        store.save(key, &sample());
        let path = store.path(key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER + (bytes.len() - HEADER) / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load(key), Loaded::Corrupt));
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_torn_write_reads_as_corrupt_then_recovers() {
        let root = tmp_root("torn");
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::only(7, &[FaultPoint::StoreWrite]).with_limit(1),
        ));
        let store = DiskStore::open(&root, injector).unwrap();
        let key = (55, 66);
        // First save is torn: a truncated frame sits at the final path.
        assert!(matches!(store.save(key, &sample()), Saved::Torn));
        assert!(store.path(key).exists());
        assert!(matches!(store.load(key), Loaded::Corrupt));
        // The injector's cap is spent: the re-save lands cleanly.
        assert!(matches!(store.save(key, &sample()), Saved::Written));
        assert!(matches!(store.load(key), Loaded::Hit(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_corruption_is_caught_by_the_checksum() {
        let root = tmp_root("chaos-corrupt");
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::only(9, &[FaultPoint::StoreCorrupt]).with_limit(1),
        ));
        let store = DiskStore::open(&root, injector).unwrap();
        let key = (77, 88);
        assert!(matches!(store.save(key, &sample()), Saved::Written));
        assert!(matches!(store.load(key), Loaded::Corrupt));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_read_fault_is_a_miss_never_a_guess() {
        let root = tmp_root("chaos-read");
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::only(3, &[FaultPoint::StoreRead]).with_limit(1),
        ));
        let store = DiskStore::open(&root, injector).unwrap();
        let key = (99, 11);
        store.save(key, &sample());
        assert!(matches!(store.load(key), Loaded::Miss), "read fault: miss");
        assert!(matches!(store.load(key), Loaded::Hit(_)), "cap spent: hit");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let root = tmp_root("sweep");
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        let key = (12, 34);
        store.save(key, &sample());
        let stale = store.path(key).with_extension("tmp");
        fs::write(&stale, b"half a frame").unwrap();
        drop(store);
        let store = DiskStore::open(&root, quiet_injector()).unwrap();
        assert!(!stale.exists(), "stale tmp must be swept");
        assert!(matches!(store.load(key), Loaded::Hit(_)));
        let _ = fs::remove_dir_all(&root);
    }
}
