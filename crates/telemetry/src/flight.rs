//! The flight recorder: an always-on bounded ring of the last N requests,
//! notable incidents, and decision totals — the post-mortem a SIGKILL'd
//! daemon leaves behind.
//!
//! [`FlightRecorder`] generalizes [`crate::RingSink`] in two directions.
//! First, it records *requests*, not raw events: the owner (the serve
//! daemon) calls [`FlightRecorder::record_request`] with one
//! [`FlightEntry`] per finished request — trace id, what was asked,
//! outcome, duration — and the ring keeps the most recent
//! [`FlightRecorder::capacity`]. Second, installed as a [`Collector`] it
//! filters the event stream down to *notable* instants (retries, poisoned
//! jobs, cache corruption, store degradation and recovery, stale profiles)
//! with µs timestamps, and tallies every decision record, so a dump carries
//! the incident context around the requests without buffering the full
//! firehose.
//!
//! With [`FlightRecorder::with_writethrough`] each recorded request is also
//! appended as one JSON line to a file under the store directory; on
//! startup the ring is seeded from that file's tail. That is what lets a
//! post-restart `{"op":"flight"}` still list the requests that were in the
//! ring when the previous process was SIGKILL'd — no pre-arranged
//! `--trace-out`, no graceful shutdown required. Write-through IO failures
//! are ignored: the recorder observes the daemon, it never fails it.

use crate::trace::json_string;
use crate::{Collector, DecisionTotals, Event};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Instant names worth keeping in the incident ring. Everything else (cache
/// hit/miss traffic, per-pass markers) belongs to the metrics registry.
const NOTABLE: [&str; 10] = [
    "job.retry",
    "job.poisoned",
    "cache.corruption_detected",
    "cache.evict",
    "profile.stale",
    "store.memory_only",
    "store.recovered",
    "store.write_torn",
    "store.full",
    "store.write_failed",
];

/// One finished request, as the flight recorder remembers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// The request's trace id (16 hex digits on the wire).
    pub trace_id: String,
    /// What was asked: the job spec, or the op name for control requests.
    pub what: String,
    /// How it ended: `ok`, `cached`, `timeout`, `overloaded`, `failed`, ….
    pub outcome: String,
    /// Wall time from admission to reply, in microseconds.
    pub duration_us: u64,
    /// When it finished, µs since the owner's telemetry origin.
    pub ts_us: u64,
}

impl FlightEntry {
    /// One stable-key JSON object (also the write-through line format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\":{},\"what\":{},\"outcome\":{},\"duration_us\":{},\"ts_us\":{}}}",
            json_string(&self.trace_id),
            json_string(&self.what),
            json_string(&self.outcome),
            self.duration_us,
            self.ts_us,
        )
    }

    fn from_json(doc: &crate::json::Json) -> Option<FlightEntry> {
        Some(FlightEntry {
            trace_id: doc.get("trace_id")?.as_str()?.to_string(),
            what: doc.get("what")?.as_str()?.to_string(),
            outcome: doc.get("outcome")?.as_str()?.to_string(),
            duration_us: doc.get("duration_us")?.as_num()? as u64,
            ts_us: doc.get("ts_us")?.as_num()? as u64,
        })
    }
}

struct Rings {
    requests: VecDeque<FlightEntry>,
    notable: VecDeque<(String, u64)>,
    decisions: DecisionTotals,
    /// Append handle plus lines written since the last compaction.
    writethrough: Option<(PathBuf, u64)>,
}

/// The recorder. Share behind an `Arc`; all methods take `&self`.
pub struct FlightRecorder {
    capacity: usize,
    rings: Mutex<Rings>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests (minimum 1) and as
    /// many notable instants.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            rings: Mutex::new(Rings {
                requests: VecDeque::new(),
                notable: VecDeque::new(),
                decisions: DecisionTotals::default(),
                writethrough: None,
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// A recorder with disk write-through: every request appends one JSON
    /// line to `path`, and the ring is seeded from the tail of an existing
    /// file — so the last requests survive a SIGKILL. The file is compacted
    /// back to ring size whenever it grows past a few multiples of the
    /// capacity. IO failures (unwritable dir, torn tail line) are absorbed.
    pub fn with_writethrough(capacity: usize, path: &Path) -> FlightRecorder {
        let recorder = FlightRecorder::with_capacity(capacity);
        {
            let mut rings = recorder.rings.lock().unwrap();
            if let Ok(text) = std::fs::read_to_string(path) {
                for line in text.lines() {
                    let Ok(doc) = crate::json::parse(line) else {
                        continue; // a torn tail from the kill, not an error
                    };
                    if let Some(entry) = FlightEntry::from_json(&doc) {
                        if rings.requests.len() >= recorder.capacity {
                            rings.requests.pop_front();
                        }
                        rings.requests.push_back(entry);
                    }
                }
            }
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            rings.writethrough = Some((path.to_path_buf(), 0));
            compact(&mut rings, recorder.capacity);
        }
        recorder
    }

    /// How many requests the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(requests buffered, capacity)` — the health occupancy gauge.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.rings.lock().unwrap().requests.len(), self.capacity)
    }

    /// Requests evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Records one finished request (and appends it to the write-through
    /// file, when configured).
    pub fn record_request(&self, entry: FlightEntry) {
        let mut rings = self.rings.lock().unwrap();
        if rings.requests.len() >= self.capacity {
            rings.requests.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        let line = entry.to_json();
        rings.requests.push_back(entry);
        if let Some((path, written)) = &mut rings.writethrough {
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&*path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if appended.is_ok() {
                *written += 1;
            }
            if *written > 4 * self.capacity as u64 {
                compact(&mut rings, self.capacity);
            }
        }
    }

    /// The recorded requests, oldest first.
    pub fn requests(&self) -> Vec<FlightEntry> {
        self.rings
            .lock()
            .unwrap()
            .requests
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the whole recorder state as one JSON object.
    pub fn to_json(&self) -> String {
        let rings = self.rings.lock().unwrap();
        let requests: Vec<String> = rings.requests.iter().map(FlightEntry::to_json).collect();
        let notable: Vec<String> = rings
            .notable
            .iter()
            .map(|(name, ts_us)| format!("{{\"name\":{},\"ts_us\":{ts_us}}}", json_string(name)))
            .collect();
        format!(
            concat!(
                "{{\"capacity\":{},\"len\":{},\"dropped\":{},",
                "\"requests\":[{}],\"notable\":[{}],\"decisions\":{}}}"
            ),
            self.capacity,
            rings.requests.len(),
            self.dropped(),
            requests.join(","),
            notable.join(","),
            rings.decisions.to_json(),
        )
    }

    /// Dumps [`FlightRecorder::to_json`] to `path` (for the panic/drain
    /// auto-dump). IO failure is reported to the caller, never panics.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Rewrites the write-through file to exactly the ring's contents, resetting
/// the growth counter. Failures are absorbed.
fn compact(rings: &mut Rings, _capacity: usize) {
    if let Some((path, written)) = &mut rings.writethrough {
        let body: String = rings
            .requests
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let _ = std::fs::write(&*path, body);
        *written = 0;
    }
}

impl Collector for FlightRecorder {
    fn record(&self, event: Event) {
        match event {
            Event::Instant { name, ts_us, .. } if NOTABLE.contains(&name.as_str()) => {
                let mut rings = self.rings.lock().unwrap();
                if rings.notable.len() >= self.capacity {
                    rings.notable.pop_front();
                }
                rings.notable.push_back((name, ts_us));
            }
            Event::Decision { record, .. } => {
                self.rings.lock().unwrap().decisions.record(&record.reason);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, outcome: &str) -> FlightEntry {
        FlightEntry {
            trace_id: id.to_string(),
            what: "bench:fib@6".to_string(),
            outcome: outcome.to_string(),
            duration_us: 1500,
            ts_us: 42,
        }
    }

    #[test]
    fn ring_keeps_the_last_requests_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(2);
        rec.record_request(entry("aaaa", "ok"));
        rec.record_request(entry("bbbb", "ok"));
        rec.record_request(entry("cccc", "timeout"));
        assert_eq!(rec.occupancy(), (2, 2));
        assert_eq!(rec.dropped(), 1);
        let ids: Vec<String> = rec.requests().iter().map(|e| e.trace_id.clone()).collect();
        assert_eq!(ids, ["bbbb", "cccc"]);
        let doc = crate::json::parse(&rec.to_json()).expect("flight JSON parses");
        assert_eq!(doc.get("len").and_then(|n| n.as_num()), Some(2.0));
        let reqs = doc.get("requests").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(
            reqs[1].get("outcome").and_then(|o| o.as_str()),
            Some("timeout")
        );
    }

    #[test]
    fn collector_filters_notable_instants_and_tallies_decisions() {
        let rec = FlightRecorder::with_capacity(8);
        let instant = |name: &str| Event::Instant {
            name: name.to_string(),
            cat: "t",
            args: Vec::new(),
            ts_us: 9,
            tid: 1,
        };
        rec.record(instant("cache.parse")); // routine traffic: filtered out
        rec.record(instant("job.retry"));
        rec.record(instant("store.write_failed"));
        let doc = crate::json::parse(&rec.to_json()).unwrap();
        let notable = doc.get("notable").and_then(|n| n.as_arr()).unwrap();
        assert_eq!(notable.len(), 2);
        assert_eq!(
            notable[0].get("name").and_then(|n| n.as_str()),
            Some("job.retry")
        );
    }

    #[test]
    fn writethrough_survives_a_new_recorder_on_the_same_file() {
        let dir = std::env::temp_dir().join(format!("fdi-flight-{}", std::process::id()));
        let path = dir.join("requests.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let rec = FlightRecorder::with_writethrough(4, &path);
            rec.record_request(entry("1111", "ok"));
            rec.record_request(entry("2222", "cached"));
        } // no graceful shutdown: the recorder is simply dropped
        let revived = FlightRecorder::with_writethrough(4, &path);
        let ids: Vec<String> = revived
            .requests()
            .iter()
            .map(|e| e.trace_id.clone())
            .collect();
        assert_eq!(ids, ["1111", "2222"]);
        // A torn tail line (mid-write kill) is skipped, not fatal.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"trace_id\":\"33").unwrap();
        }
        let torn = FlightRecorder::with_writethrough(4, &path);
        assert_eq!(torn.occupancy().0, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writethrough_compacts_past_growth_bound() {
        let dir = std::env::temp_dir().join(format!("fdi-flight-compact-{}", std::process::id()));
        let path = dir.join("requests.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::with_writethrough(2, &path);
        for i in 0..32 {
            rec.record_request(entry(&format!("{i:04x}"), "ok"));
        }
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert!(lines <= 2 + 4 * 2, "file stays bounded, has {lines} lines");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
