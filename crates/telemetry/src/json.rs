//! A minimal, dependency-free JSON parser.
//!
//! Just enough JSON to validate the traces this crate emits (see
//! [`crate::validate_chrome_trace`]) and to let the CI checker binary parse
//! arbitrary trace files. Supports the full value grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null) with a recursion-depth
//! guard; it is not a streaming parser and is not meant for huge documents.

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order (duplicates kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode a following \uDC00-range
                            // unit if present; lone surrogates become U+FFFD.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(format!("raw control byte 0x{c:02x} in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so boundaries
                    // are valid; find the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // self.pos sits on 'u'; read the 4 hex digits after it, leaving pos on
        // the last digit (the caller's shared `self.pos += 1` steps past it).
        let digits = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(digits).map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\n\"y\"","d":null},"e":true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parses_unicode_escapes() {
        let doc = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_guard_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
