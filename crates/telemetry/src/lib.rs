//! Structured observability for the flow-directed inlining pipeline.
//!
//! This crate is the telemetry backbone every other layer emits into: a
//! [`Collector`] trait with ring-buffer and JSON-lines sinks, nested spans
//! with monotonic wall-clock timing, typed instants/counters/histograms,
//! per-call-site inlining [`DecisionRecord`]s, and a Chrome Trace Event
//! Format exporter ([`trace::chrome_trace`]) whose output loads in
//! `chrome://tracing` and Perfetto. On top of the event stream sit the live
//! observability pieces: a [`MetricsRegistry`] (windowed counters, gauges,
//! fixed-bucket duration histograms, JSON and Prometheus text exposition)
//! and a [`FlightRecorder`] (bounded last-N-requests ring with optional disk
//! write-through for post-mortems), both plain [`Collector`]s that can be
//! [`Fanout`]ed behind one handle.
//!
//! The design constraint is that telemetry must be *free when off*: a
//! [`Telemetry`] handle is a single `Option<Arc<_>>`, every emission site
//! starts with one branch on it, and no timestamp is read, no string is
//! allocated, and no lock is touched unless a collector is installed. The
//! pipeline's collector-off output is byte-identical to a run without this
//! crate compiled in at all — telemetry observes decisions, it never makes
//! them.
//!
//! # Examples
//!
//! ```
//! use fdi_telemetry::{RingSink, Telemetry, Event};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(RingSink::with_capacity(1024));
//! let tel = Telemetry::with_collector(sink.clone());
//! {
//!     let _span = tel.span("analyze", "pass");
//!     tel.counter("cfa.steps", 42);
//! }
//! let events = sink.snapshot();
//! assert!(matches!(events[0], Event::SpanBegin { .. }));
//! assert!(matches!(events[2], Event::SpanEnd { .. }));
//! ```

mod decision;
pub mod flight;
pub mod json;
pub mod metrics;
mod sink;
pub mod trace;

pub use decision::{DecisionReason, DecisionRecord, DecisionTotals, Verdict, REASON_KEYS};
pub use flight::{FlightEntry, FlightRecorder};
pub use metrics::MetricsRegistry;
pub use sink::{Fanout, JsonLinesSink, RingSink};
pub use trace::{chrome_trace, validate_chrome_trace, TraceSummary};

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One telemetry event. Timestamps are microseconds of monotonic wall clock
/// since the owning [`Telemetry`] handle was created; `tid` is a stable hash
/// of the emitting thread, so engine workers land on separate trace tracks.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened: `id` pairs it with its [`Event::SpanEnd`].
    SpanBegin {
        /// Unique id within the handle, pairing begin with end.
        id: u64,
        /// Span name (pass name, engine stage, …).
        name: String,
        /// Category: `"pass"`, `"engine"`, `"frontend"`, …
        cat: &'static str,
        /// Microseconds since the handle's origin.
        ts_us: u64,
        /// Emitting-thread hash.
        tid: u64,
    },
    /// A span closed.
    SpanEnd {
        /// The paired [`Event::SpanBegin`]'s id.
        id: u64,
        /// Span name (duplicated so sinks need no begin-lookup).
        name: String,
        /// Microseconds since the handle's origin.
        ts_us: u64,
        /// Emitting-thread hash.
        tid: u64,
    },
    /// A point-in-time marker with string arguments.
    Instant {
        /// Marker name (`"cache.parse"`, `"retry"`, `"oracle"`, …).
        name: String,
        /// Category.
        cat: &'static str,
        /// Key/value payload rendered into the trace's `args`.
        args: Vec<(String, String)>,
        /// Microseconds since the handle's origin.
        ts_us: u64,
        /// Emitting-thread hash.
        tid: u64,
    },
    /// A sampled counter value.
    Counter {
        /// Counter name.
        name: String,
        /// Sampled value.
        value: u64,
        /// Microseconds since the handle's origin.
        ts_us: u64,
        /// Emitting-thread hash.
        tid: u64,
    },
    /// A labelled-bucket histogram snapshot.
    Histogram {
        /// Histogram name.
        name: String,
        /// `(bucket label, count)` pairs, in bucket order.
        buckets: Vec<(String, u64)>,
        /// Microseconds since the handle's origin.
        ts_us: u64,
        /// Emitting-thread hash.
        tid: u64,
    },
    /// One per-call-site inlining decision (provenance).
    Decision {
        /// The decision.
        record: DecisionRecord,
        /// Microseconds since the handle's origin.
        ts_us: u64,
        /// Emitting-thread hash.
        tid: u64,
    },
}

impl Event {
    /// The event's timestamp in microseconds since the handle's origin.
    pub fn ts_us(&self) -> u64 {
        match self {
            Event::SpanBegin { ts_us, .. }
            | Event::SpanEnd { ts_us, .. }
            | Event::Instant { ts_us, .. }
            | Event::Counter { ts_us, .. }
            | Event::Histogram { ts_us, .. }
            | Event::Decision { ts_us, .. } => *ts_us,
        }
    }
}

/// A telemetry event consumer. Implementations must be thread-safe: the
/// engine's workers emit concurrently into one collector.
pub trait Collector: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: Event);
}

struct TelemetryInner {
    collector: Arc<dyn Collector>,
    origin: Instant,
    next_span: AtomicU64,
}

/// A cheap, cloneable handle to a collector — or to nothing.
///
/// [`Telemetry::off`] (also `Default`) is the no-op handle: every emission
/// method returns after one branch. Clone the handle freely; all clones
/// share the collector, the monotonic origin, and the span-id counter.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Stable hash of the current thread's id, used as the trace track id.
fn current_tid() -> u64 {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

impl Telemetry {
    /// The disabled handle: all emissions are no-ops.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle feeding `collector`; timestamps are relative to now.
    pub fn with_collector(collector: Arc<dyn Collector>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                collector,
                origin: Instant::now(),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    /// Is a collector installed?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle's origin (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.origin.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.collector.record(event);
        }
    }

    /// Opens a span; the returned guard closes it on drop. Free when off.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str, cat: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { tel: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let tid = current_tid();
        inner.collector.record(Event::SpanBegin {
            id,
            name: name.to_string(),
            cat,
            ts_us: inner.origin.elapsed().as_micros() as u64,
            tid,
        });
        SpanGuard {
            tel: Some((self.clone(), id, name.to_string(), tid)),
        }
    }

    /// Emits a point-in-time marker with arguments.
    pub fn instant(&self, name: &str, cat: &'static str, args: &[(&str, String)]) {
        if self.inner.is_none() {
            return;
        }
        self.emit(Event::Instant {
            name: name.to_string(),
            cat,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            ts_us: self.now_us(),
            tid: current_tid(),
        });
    }

    /// Emits a sampled counter value.
    pub fn counter(&self, name: &str, value: u64) {
        if self.inner.is_none() {
            return;
        }
        self.emit(Event::Counter {
            name: name.to_string(),
            value,
            ts_us: self.now_us(),
            tid: current_tid(),
        });
    }

    /// Emits a labelled-bucket histogram snapshot.
    pub fn histogram(&self, name: &str, buckets: &[(&str, u64)]) {
        if self.inner.is_none() {
            return;
        }
        self.emit(Event::Histogram {
            name: name.to_string(),
            buckets: buckets
                .iter()
                .map(|&(label, n)| (label.to_string(), n))
                .collect(),
            ts_us: self.now_us(),
            tid: current_tid(),
        });
    }

    /// Emits one inlining decision record.
    pub fn decision(&self, record: &DecisionRecord) {
        if self.inner.is_none() {
            return;
        }
        self.emit(Event::Decision {
            record: record.clone(),
            ts_us: self.now_us(),
            tid: current_tid(),
        });
    }
}

/// Closes its span on drop. Obtained from [`Telemetry::span`].
pub struct SpanGuard {
    tel: Option<(Telemetry, u64, String, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tel, id, name, tid)) = self.tel.take() {
            tel.emit(Event::SpanEnd {
                id,
                name,
                ts_us: tel.now_us(),
                tid,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::off();
        assert!(!tel.enabled());
        let _s = tel.span("x", "t");
        tel.counter("c", 1);
        tel.instant("i", "t", &[("k", "v".to_string())]);
        assert_eq!(tel.now_us(), 0);
    }

    #[test]
    fn spans_nest_and_pair_by_id() {
        let sink = Arc::new(RingSink::with_capacity(64));
        let tel = Telemetry::with_collector(sink.clone());
        {
            let _outer = tel.span("outer", "t");
            let _inner = tel.span("inner", "t");
        }
        let ev = sink.snapshot();
        assert_eq!(ev.len(), 4);
        let (Event::SpanBegin { id: o, .. }, Event::SpanBegin { id: i, .. }) = (&ev[0], &ev[1])
        else {
            panic!("expected two begins, got {ev:?}");
        };
        // Inner closes before outer.
        assert!(matches!(&ev[2], Event::SpanEnd { id, name, .. } if id == i && name == "inner"));
        assert!(matches!(&ev[3], Event::SpanEnd { id, name, .. } if id == o && name == "outer"));
    }

    #[test]
    fn timestamps_are_monotonic_within_a_thread() {
        let sink = Arc::new(RingSink::with_capacity(64));
        let tel = Telemetry::with_collector(sink.clone());
        for i in 0..10 {
            tel.counter("c", i);
        }
        let ts: Vec<u64> = sink.snapshot().iter().map(Event::ts_us).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn collectors_accept_concurrent_emitters() {
        let sink = Arc::new(RingSink::with_capacity(4096));
        let tel = Telemetry::with_collector(sink.clone());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tel = tel.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let _s = tel.span("work", "t");
                        tel.counter("n", i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.snapshot().len(), 4 * 100 * 3);
    }
}
