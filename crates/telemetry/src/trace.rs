//! Chrome Trace Event Format export and validation.
//!
//! [`chrome_trace`] renders a captured event stream as Trace Event Format
//! JSON (the `{"traceEvents":[...]}` object form) that loads directly in
//! `chrome://tracing` and Perfetto. [`validate_chrome_trace`] is the inverse
//! gate used by tests and the CI `trace_check` binary: it parses a trace
//! file with [`crate::json`] and checks the structural rules the viewers
//! rely on (required fields, known phases, balanced begin/end per track).

use crate::Event;

/// Escapes `s` as one JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn args_obj(args: &[(String, String)]) -> String {
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Renders one event as a standalone JSON object (the JSON-lines format
/// written by [`crate::JsonLinesSink`]).
pub fn event_json(event: &Event) -> String {
    match event {
        Event::SpanBegin { id, name, cat, ts_us, tid } => format!(
            "{{\"type\":\"span_begin\",\"id\":{id},\"name\":{},\"cat\":{},\"ts_us\":{ts_us},\"tid\":{tid}}}",
            json_string(name),
            json_string(cat),
        ),
        Event::SpanEnd { id, name, ts_us, tid } => format!(
            "{{\"type\":\"span_end\",\"id\":{id},\"name\":{},\"ts_us\":{ts_us},\"tid\":{tid}}}",
            json_string(name),
        ),
        Event::Instant { name, cat, args, ts_us, tid } => format!(
            "{{\"type\":\"instant\",\"name\":{},\"cat\":{},\"args\":{},\"ts_us\":{ts_us},\"tid\":{tid}}}",
            json_string(name),
            json_string(cat),
            args_obj(args),
        ),
        Event::Counter { name, value, ts_us, tid } => format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{value},\"ts_us\":{ts_us},\"tid\":{tid}}}",
            json_string(name),
        ),
        Event::Histogram { name, buckets, ts_us, tid } => {
            let b: Vec<String> = buckets
                .iter()
                .map(|(label, n)| format!("{}:{n}", json_string(label)))
                .collect();
            format!(
                "{{\"type\":\"histogram\",\"name\":{},\"buckets\":{{{}}},\"ts_us\":{ts_us},\"tid\":{tid}}}",
                json_string(name),
                b.join(","),
            )
        }
        Event::Decision { record, ts_us, tid } => format!(
            "{{\"type\":\"decision\",\"record\":{},\"ts_us\":{ts_us},\"tid\":{tid}}}",
            record.to_json(),
        ),
    }
}

fn trace_event(event: &Event) -> String {
    const PID: u64 = 1;
    match event {
        Event::SpanBegin { name, cat, ts_us, tid, .. } => format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"B\",\"ts\":{ts_us},\"pid\":{PID},\"tid\":{tid}}}",
            json_string(name),
            json_string(cat),
        ),
        Event::SpanEnd { name, ts_us, tid, .. } => format!(
            "{{\"name\":{},\"ph\":\"E\",\"ts\":{ts_us},\"pid\":{PID},\"tid\":{tid}}}",
            json_string(name),
        ),
        Event::Instant { name, cat, args, ts_us, tid } => format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":{PID},\"tid\":{tid},\"args\":{}}}",
            json_string(name),
            json_string(cat),
            args_obj(args),
        ),
        Event::Counter { name, value, ts_us, tid } => format!(
            "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{PID},\"tid\":{tid},\"args\":{{\"value\":{value}}}}}",
            json_string(name),
        ),
        Event::Histogram { name, buckets, ts_us, tid } => {
            let series: Vec<String> = buckets
                .iter()
                .map(|(label, n)| format!("{}:{n}", json_string(label)))
                .collect();
            format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{PID},\"tid\":{tid},\"args\":{{{}}}}}",
                json_string(name),
                series.join(","),
            )
        }
        Event::Decision { record, ts_us, tid } => {
            let args = [
                ("site".to_string(), record.site_label.clone()),
                ("contour".to_string(), record.contour.clone()),
                ("callee".to_string(), record.callee.clone()),
                ("verdict".to_string(), record.verdict.to_string()),
                ("reason".to_string(), record.reason.to_string()),
            ];
            format!(
                "{{\"name\":{},\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":{PID},\"tid\":{tid},\"args\":{}}}",
                json_string(&format!("decision:{}", record.reason.key())),
                args_obj(&args),
            )
        }
    }
}

/// Renders an event stream as Trace Event Format JSON (object form), sorted
/// by timestamp. Load the result in `chrome://tracing` or Perfetto.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut ordered: Vec<&Event> = events.iter().collect();
    // Stable by-timestamp sort: per-thread order is preserved (each thread's
    // timestamps are non-decreasing), which keeps B/E nesting valid.
    ordered.sort_by_key(|e| e.ts_us());
    let body: Vec<String> = ordered.iter().map(|e| trace_event(e)).collect();
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        body.join(",")
    )
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events.
    pub events: usize,
    /// Completed spans (matched begin/end pairs).
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
    /// Instants in the `decision` category.
    pub decisions: usize,
    /// Deepest span nesting observed on any track.
    pub max_depth: usize,
}

/// Validates `text` against the Trace Event Format rules this crate's
/// traces (and the viewers) rely on:
///
/// - the document is a JSON object with a `traceEvents` array;
/// - every event is an object carrying `ph` (a known phase), numeric
///   non-negative `ts`, numeric `pid`/`tid`, and a string `name` (except
///   `E` events, where it is optional);
/// - `B`/`E` events balance per `(pid, tid)` track, with matching names.
///
/// Returns a [`TraceSummary`] on success, or a description of the first
/// violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    use std::collections::HashMap;

    let doc = crate::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" key")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;

    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();

    for (i, ev) in events.iter().enumerate() {
        let fail = |what: &str| Err(format!("event #{i}: {what}"));
        if ev.as_obj().is_none() {
            return fail("not an object");
        }
        let ph = match ev.get("ph").and_then(|v| v.as_str()) {
            Some(p) => p,
            None => return fail("missing string \"ph\""),
        };
        if !matches!(
            ph,
            "B" | "E" | "X" | "i" | "I" | "C" | "M" | "b" | "e" | "n" | "s" | "t" | "f"
        ) {
            return Err(format!("event #{i}: unknown phase {ph:?}"));
        }
        let ts = match ev.get("ts").and_then(|v| v.as_num()) {
            Some(t) => t,
            None => return fail("missing numeric \"ts\""),
        };
        if !ts.is_finite() || ts < 0.0 {
            return fail("negative or non-finite \"ts\"");
        }
        let pid = match ev.get("pid").and_then(|v| v.as_num()) {
            Some(p) => p,
            None => return fail("missing numeric \"pid\""),
        };
        let tid = match ev.get("tid").and_then(|v| v.as_num()) {
            Some(t) => t,
            None => return fail("missing numeric \"tid\""),
        };
        let name = ev.get("name").and_then(|v| v.as_str());
        if name.is_none() && ph != "E" {
            return fail("missing string \"name\"");
        }
        if ph == "i" || ph == "I" {
            summary.instants += 1;
            if ev.get("cat").and_then(|v| v.as_str()) == Some("decision") {
                summary.decisions += 1;
            }
        }
        if ph == "C" {
            summary.counters += 1;
        }

        let track = (pid.to_bits(), tid.to_bits());
        match ph {
            "B" => {
                let stack = stacks.entry(track).or_default();
                stack.push(name.unwrap().to_string());
                summary.max_depth = summary.max_depth.max(stack.len());
            }
            "E" => {
                let stack = stacks.entry(track).or_default();
                match stack.pop() {
                    None => {
                        return Err(format!("event #{i}: \"E\" with no open span on tid {tid}"))
                    }
                    Some(open) => {
                        if let Some(n) = name {
                            if n != open {
                                return Err(format!(
                                    "event #{i}: \"E\" for {n:?} but open span is {open:?}"
                                ));
                            }
                        }
                        summary.spans += 1;
                    }
                }
            }
            _ => {}
        }
    }

    for ((_, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unclosed span {open:?} on tid {}",
                f64::from_bits(*tid)
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecisionReason, DecisionRecord, RingSink, Telemetry, REASON_KEYS};
    use std::sync::Arc;

    fn sample_events() -> Vec<Event> {
        let sink = Arc::new(RingSink::with_capacity(256));
        let tel = Telemetry::with_collector(sink.clone());
        {
            let _p = tel.span("pipeline", "pass");
            {
                let _a = tel.span("analyze", "pass");
                tel.counter("cfa.steps", 120);
                tel.histogram("cfa.valset", &[("1", 10), ("2-3", 4)]);
            }
            tel.instant("cache.parse", "engine", &[("hit", "true".to_string())]);
            tel.decision(&DecisionRecord {
                site_label: "l4".to_string(),
                contour: "·".to_string(),
                callee: "f".to_string(),
                verdict: crate::Verdict::Inlined,
                reason: DecisionReason::Inlined {
                    specialized_size: 7,
                },
            });
        }
        sink.snapshot()
    }

    #[test]
    fn exported_trace_validates() {
        let trace = chrome_trace(&sample_events());
        let summary = validate_chrome_trace(&trace).expect("trace validates");
        assert_eq!(summary.events, 8);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 2);
        assert_eq!(summary.counters, 2);
        assert_eq!(summary.decisions, 1);
        assert_eq!(summary.max_depth, 2);
    }

    #[test]
    fn validator_rejects_structural_violations() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"events\":[]}").is_err());
        // Unknown phase.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("phase"));
        // End without begin.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("no open span"));
        // Unclosed begin.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"B","cat":"t","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
        // Mismatched nesting.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","cat":"t","ts":0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("open span"));
        // Missing ts.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"i","s":"t","pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("ts"));
    }

    #[test]
    fn jsonl_event_encoding_parses_back() {
        for ev in sample_events() {
            let line = event_json(&ev);
            let doc = crate::json::parse(&line).expect("event_json output parses");
            assert!(doc.get("type").is_some(), "{line}");
        }
    }

    #[test]
    fn decision_trace_names_use_stable_keys() {
        let trace = chrome_trace(&sample_events());
        assert!(trace.contains("\"decision:inlined\""));
        assert!(REASON_KEYS.contains(&"inlined"));
    }
}
