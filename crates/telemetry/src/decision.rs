//! Per-call-site inlining decision provenance.
//!
//! The paper's evaluation turns on *why* each candidate call site was or
//! wasn't inlined — Condition 1 (unique closure), Condition 2 (free
//! variables / closed up to top level), the `Inline?` size threshold, and
//! the loop map. A [`DecisionRecord`] captures one such verdict with a
//! typed [`DecisionReason`], so tools can aggregate ([`DecisionTotals`]),
//! explain (`fdi explain`), and trend (engine sweeps) without parsing
//! free-form strings.

use std::fmt;

/// Did the site get inlined?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The call was replaced by a specialized copy of the callee body.
    Inlined,
    /// The call was left in place.
    Rejected,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Inlined => "inlined",
            Verdict::Rejected => "rejected",
        })
    }
}

/// Why a candidate call site got its verdict.
///
/// Exactly one reason per decision; [`DecisionReason::key`] gives the stable
/// snake_case identifier used in JSON output and aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionReason {
    /// The site was inlined; the specialized body measured this size.
    Inlined {
        /// Size of the specialized callee body (AST node count).
        specialized_size: usize,
    },
    /// Condition 1 failed: the flow analysis did not prove a single
    /// `(code, contour)` pair flows to the operator (or the arity of the
    /// unique closure did not accept the call).
    NonUniqueClosure,
    /// The specialized body was larger than the inliner's size threshold.
    ThresholdExceeded {
        /// Measured specialized size when the limit tripped.
        size: usize,
        /// The configured threshold it exceeded.
        limit: usize,
    },
    /// Condition 2 failed: the callee has free variables that are not
    /// closed up to top level at this site.
    OpenProcedure {
        /// How many free variables blocked the substitution.
        free_vars: usize,
    },
    /// The loop map suppressed the site: inlining here would unfold a
    /// letrec-bound loop beyond the configured unroll budget.
    LoopGuard,
    /// The inliner's own recursion-depth budget was exhausted before the
    /// site could be considered.
    BudgetDenied,
    /// The run's size budget ran out before this site's turn: under
    /// budgeted (profile-guided or static) ordering, hotter/earlier sites
    /// consumed the shared specialized-size allowance first.
    SizeBudgetExhausted {
        /// Specialized size this site would have added.
        size: usize,
        /// The configured whole-run size budget.
        budget: usize,
    },
}

/// Stable reason keys, in canonical aggregation order. Index `i` matches
/// `DecisionTotals` slot `i` and `DecisionReason::key()` values.
pub const REASON_KEYS: [&str; 7] = [
    "inlined",
    "non_unique_closure",
    "threshold_exceeded",
    "open_procedure",
    "loop_guard",
    "budget_denied",
    "size_budget_exhausted",
];

impl DecisionReason {
    fn index(&self) -> usize {
        match self {
            DecisionReason::Inlined { .. } => 0,
            DecisionReason::NonUniqueClosure => 1,
            DecisionReason::ThresholdExceeded { .. } => 2,
            DecisionReason::OpenProcedure { .. } => 3,
            DecisionReason::LoopGuard => 4,
            DecisionReason::BudgetDenied => 5,
            DecisionReason::SizeBudgetExhausted { .. } => 6,
        }
    }

    /// Stable snake_case identifier (one of [`REASON_KEYS`]).
    pub fn key(&self) -> &'static str {
        REASON_KEYS[self.index()]
    }

    /// The verdict this reason implies.
    pub fn verdict(&self) -> Verdict {
        match self {
            DecisionReason::Inlined { .. } => Verdict::Inlined,
            _ => Verdict::Rejected,
        }
    }
}

impl fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionReason::Inlined { specialized_size } => {
                write!(f, "inlined(size={specialized_size})")
            }
            DecisionReason::NonUniqueClosure => f.write_str("non-unique-closure"),
            DecisionReason::ThresholdExceeded { size, limit } => {
                write!(f, "threshold-exceeded(size={size}, limit={limit})")
            }
            DecisionReason::OpenProcedure { free_vars } => {
                write!(f, "open-procedure(free-vars={free_vars})")
            }
            DecisionReason::LoopGuard => f.write_str("loop-guard"),
            DecisionReason::BudgetDenied => f.write_str("budget-denied"),
            DecisionReason::SizeBudgetExhausted { size, budget } => {
                write!(f, "size-budget-exhausted(size={size}, budget={budget})")
            }
        }
    }
}

/// One inlining decision at one candidate call site in one contour.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecisionRecord {
    /// The call expression's label, e.g. `"l17"`.
    pub site_label: String,
    /// The abstract contour the site was considered in, e.g. `"κ3"` or `"·"`.
    pub contour: String,
    /// Human-readable callee, e.g. the operator variable or `"λl9"`.
    pub callee: String,
    /// The outcome.
    pub verdict: Verdict,
    /// Why.
    pub reason: DecisionReason,
}

impl DecisionRecord {
    /// Renders the record as one JSON object with stable key order.
    pub fn to_json(&self) -> String {
        let mut extra = String::new();
        match self.reason {
            DecisionReason::Inlined { specialized_size } => {
                extra = format!(",\"specialized_size\":{specialized_size}");
            }
            DecisionReason::ThresholdExceeded { size, limit } => {
                extra = format!(",\"size\":{size},\"limit\":{limit}");
            }
            DecisionReason::OpenProcedure { free_vars } => {
                extra = format!(",\"free_vars\":{free_vars}");
            }
            DecisionReason::SizeBudgetExhausted { size, budget } => {
                extra = format!(",\"size\":{size},\"budget\":{budget}");
            }
            _ => {}
        }
        format!(
            "{{\"site\":{},\"contour\":{},\"callee\":{},\"verdict\":\"{}\",\"reason\":\"{}\"{}}}",
            crate::trace::json_string(&self.site_label),
            crate::trace::json_string(&self.contour),
            crate::trace::json_string(&self.callee),
            self.verdict,
            self.reason.key(),
            extra,
        )
    }
}

impl fmt::Display for DecisionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} -> {}: {} [{}]",
            self.site_label, self.contour, self.callee, self.verdict, self.reason
        )
    }
}

/// Decision counts bucketed by reason key, in [`REASON_KEYS`] order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionTotals {
    counts: [u64; REASON_KEYS.len()],
}

impl DecisionTotals {
    /// Totals over an iterator of records.
    pub fn tally<'a, I: IntoIterator<Item = &'a DecisionRecord>>(records: I) -> DecisionTotals {
        let mut t = DecisionTotals::default();
        for r in records {
            t.record(&r.reason);
        }
        t
    }

    /// Counts one decision.
    pub fn record(&mut self, reason: &DecisionReason) {
        self.counts[reason.index()] += 1;
    }

    /// Adds `n` decisions under a stable reason key — the inverse of
    /// [`DecisionTotals::to_json`], for consumers that rebuild totals from
    /// a serialized snapshot. Unknown keys are ignored (a snapshot written
    /// by a future reason catalogue still loads).
    pub fn add(&mut self, key: &str, n: u64) {
        if let Some(i) = REASON_KEYS.iter().position(|k| *k == key) {
            self.counts[i] += n;
        }
    }

    /// Adds another total into this one.
    pub fn merge(&mut self, other: &DecisionTotals) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The count for a stable reason key; 0 for unknown keys.
    pub fn get(&self, key: &str) -> u64 {
        REASON_KEYS
            .iter()
            .position(|k| *k == key)
            .map_or(0, |i| self.counts[i])
    }

    /// Sites inlined.
    pub fn inlined(&self) -> u64 {
        self.counts[0]
    }

    /// Sites rejected, across all rejection reasons.
    pub fn rejected(&self) -> u64 {
        self.counts[1..].iter().sum()
    }

    /// All decisions counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(key, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        REASON_KEYS.iter().copied().zip(self.counts.iter().copied())
    }

    /// One JSON object, keys in canonical order.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.iter().map(|(k, n)| format!("\"{k}\":{n}")).collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(reason: DecisionReason) -> DecisionRecord {
        DecisionRecord {
            site_label: "l1".to_string(),
            contour: "·".to_string(),
            callee: "f".to_string(),
            verdict: reason.verdict(),
            reason,
        }
    }

    #[test]
    fn keys_are_stable_and_exhaustive() {
        let reasons = [
            DecisionReason::Inlined {
                specialized_size: 3,
            },
            DecisionReason::NonUniqueClosure,
            DecisionReason::ThresholdExceeded { size: 9, limit: 4 },
            DecisionReason::OpenProcedure { free_vars: 2 },
            DecisionReason::LoopGuard,
            DecisionReason::BudgetDenied,
            DecisionReason::SizeBudgetExhausted { size: 5, budget: 2 },
        ];
        let keys: Vec<&str> = reasons.iter().map(|r| r.key()).collect();
        assert_eq!(keys, REASON_KEYS);
        assert_eq!(reasons[0].verdict(), Verdict::Inlined);
        assert!(reasons[1..]
            .iter()
            .all(|r| r.verdict() == Verdict::Rejected));
    }

    #[test]
    fn totals_tally_merge_and_report() {
        let records = [
            rec(DecisionReason::Inlined {
                specialized_size: 3,
            }),
            rec(DecisionReason::Inlined {
                specialized_size: 5,
            }),
            rec(DecisionReason::LoopGuard),
            rec(DecisionReason::ThresholdExceeded { size: 9, limit: 4 }),
        ];
        let mut t = DecisionTotals::tally(&records);
        assert_eq!(t.inlined(), 2);
        assert_eq!(t.rejected(), 2);
        assert_eq!(t.get("loop_guard"), 1);
        assert_eq!(t.get("nonsense"), 0);
        let mut u = DecisionTotals::default();
        u.record(&DecisionReason::LoopGuard);
        t.merge(&u);
        assert_eq!(t.get("loop_guard"), 2);
        assert_eq!(t.total(), 5);
        assert!(t.to_json().starts_with("{\"inlined\":2,"));
    }

    #[test]
    fn add_rebuilds_totals_from_keys() {
        let mut t = DecisionTotals::default();
        t.add("inlined", 4);
        t.add("loop_guard", 2);
        t.add("not_a_reason", 9); // ignored, not counted
        assert_eq!(t.inlined(), 4);
        assert_eq!(t.rejected(), 2);
        assert_eq!(t.total(), 6);
        // Round-trip shape: every key in to_json is addable back.
        let mut u = DecisionTotals::default();
        for (key, n) in t.iter() {
            u.add(key, n);
        }
        assert_eq!(t, u);
    }

    #[test]
    fn record_json_carries_reason_payload() {
        let j = rec(DecisionReason::ThresholdExceeded { size: 9, limit: 4 }).to_json();
        assert!(j.contains("\"reason\":\"threshold_exceeded\""), "{j}");
        assert!(j.contains("\"size\":9,\"limit\":4"), "{j}");
        let j = rec(DecisionReason::OpenProcedure { free_vars: 2 }).to_json();
        assert!(j.contains("\"free_vars\":2"), "{j}");
    }
}
