//! A process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms with sliding time-window aggregation.
//!
//! [`MetricsRegistry`] is a [`Collector`]: install it on a [`crate::Telemetry`]
//! handle (alone or fanned out with [`crate::Fanout`]) and every instant,
//! counter, histogram, and decision already emitted by the pipeline lands in
//! the registry for free. Instants become windowed event counters (a
//! `hit`/`miss` argument splits the name into `.hit`/`.miss` series), counter
//! samples accumulate, span begin/end pairs feed per-span duration histograms
//! in microseconds, and decision records tally into a
//! [`DecisionTotals`]. Gauges are set explicitly by the owner (the serve
//! daemon mirrors its engine's resource footprint in before every scrape).
//!
//! Windowing: each counter and histogram keeps, next to its cumulative
//! total, a ring of [`WINDOW_SLOTS`] buckets of [`WINDOW_SLOT_SECS`] seconds
//! of monotonic clock. Slots are stamped with their absolute index and
//! lazily reset on reuse, so an idle series costs nothing to age out. The
//! exported `1m`/`5m` figures sum the last 12 / 60 whole slots.
//!
//! Exposition is dual: [`MetricsRegistry::to_json`] renders one JSON object
//! (the `{"op":"metrics"}` payload), and
//! [`MetricsRegistry::to_prometheus_text`] renders the Prometheus text
//! exposition format — hand-rolled, std-only, like the crate's JSON writer.
//!
//! The registry self-accounts: [`MetricsRegistry::overhead`] reports how
//! many events it absorbed and the cumulative wall time spent in
//! [`Collector::record`], which the daemon surfaces as its telemetry
//! overhead estimate in `{"op":"health"}`.

use crate::trace::json_string;
use crate::{Collector, DecisionTotals, Event};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// Seconds of monotonic clock per window slot.
pub const WINDOW_SLOT_SECS: u64 = 5;
/// Slots in the ring; must cover the widest exported window (5 m = 60).
pub const WINDOW_SLOTS: usize = 64;
/// Whole slots summed for the 1-minute window.
const SLOTS_1M: u64 = 12;
/// Whole slots summed for the 5-minute window.
const SLOTS_5M: u64 = 60;

/// Histogram bucket upper bounds, in microseconds. The `+Inf` bucket is
/// implicit (one extra count slot past the last bound).
pub const DURATION_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
const NBUCKETS: usize = DURATION_BUCKETS_US.len() + 1;

/// A cumulative total plus a slot ring for windowed readings.
#[derive(Debug, Clone)]
struct Windowed {
    total: u64,
    /// `(absolute slot index, count)`; a stale stamp means the slot is free.
    ring: [(u64, u64); WINDOW_SLOTS],
}

impl Windowed {
    fn new() -> Windowed {
        Windowed {
            total: 0,
            ring: [(u64::MAX, 0); WINDOW_SLOTS],
        }
    }

    fn add(&mut self, n: u64, slot: u64) {
        self.total += n;
        let cell = &mut self.ring[(slot % WINDOW_SLOTS as u64) as usize];
        if cell.0 != slot {
            *cell = (slot, 0);
        }
        cell.1 += n;
    }

    /// Sum of the last `slots` whole slots, the current one included.
    fn window(&self, slots: u64, now_slot: u64) -> u64 {
        let oldest = now_slot.saturating_sub(slots.saturating_sub(1));
        self.ring
            .iter()
            .filter(|(stamp, _)| *stamp >= oldest && *stamp <= now_slot)
            .map(|(_, n)| n)
            .sum()
    }
}

/// One span-duration histogram: fixed µs buckets, windowed count and sum.
#[derive(Debug, Clone)]
struct Histo {
    buckets: [u64; NBUCKETS],
    sum_us: u64,
    count: Windowed,
    sum_ring: Windowed,
}

impl Histo {
    fn new() -> Histo {
        Histo {
            buckets: [0; NBUCKETS],
            sum_us: 0,
            count: Windowed::new(),
            sum_ring: Windowed::new(),
        }
    }

    fn observe(&mut self, us: u64, slot: u64) {
        let i = DURATION_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NBUCKETS - 1);
        self.buckets[i] += 1;
        self.sum_us += us;
        self.count.add(1, slot);
        self.sum_ring.add(us, slot);
    }
}

#[derive(Default)]
struct RegistryState {
    counters: BTreeMap<String, Windowed>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histo>,
    /// Labelled-bucket snapshots (e.g. `cfa.valset_sizes`), merged by label.
    labelled: BTreeMap<String, BTreeMap<String, u64>>,
    decisions: DecisionTotals,
    /// Open span begins, id → ts_us, so an end can compute its duration.
    open_spans: HashMap<u64, u64>,
}

/// The registry. Cheap to share behind an `Arc`; all methods take `&self`.
pub struct MetricsRegistry {
    started: Instant,
    state: Mutex<RegistryState>,
    events: AtomicU64,
    record_ns: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry; its window clock starts now.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            started: Instant::now(),
            state: Mutex::new(RegistryState::default()),
            events: AtomicU64::new(0),
            record_ns: AtomicU64::new(0),
        }
    }

    fn now_slot(&self) -> u64 {
        self.started.elapsed().as_secs() / WINDOW_SLOT_SECS
    }

    /// Adds `n` to the windowed counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.add_at(name, n, self.now_slot());
    }

    fn add_at(&self, name: &str, n: u64, slot: u64) {
        let mut state = self.state.lock().unwrap();
        state
            .counters
            .entry(name.to_string())
            .or_insert_with(Windowed::new)
            .add(n, slot);
    }

    /// Sets the gauge `name` to `value`, creating it on first use.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.state
            .lock()
            .unwrap()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Feeds one duration observation into the histogram `name`.
    pub fn observe_us(&self, name: &str, us: u64) {
        self.observe_at(name, us, self.now_slot());
    }

    fn observe_at(&self, name: &str, us: u64, slot: u64) {
        let mut state = self.state.lock().unwrap();
        state
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histo::new)
            .observe(us, slot);
    }

    /// `(events absorbed, nanoseconds spent in record)` — the registry's own
    /// cost, for the daemon's telemetry overhead estimate.
    pub fn overhead(&self) -> (u64, u64) {
        (self.events.load(Relaxed), self.record_ns.load(Relaxed))
    }

    /// The cumulative total of counter `name` (0 if absent). For tests and
    /// embedding callers; exposition goes through the renderers.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.state
            .lock()
            .unwrap()
            .counters
            .get(name)
            .map_or(0, |w| w.total)
    }

    /// Renders the whole registry as one JSON object.
    pub fn to_json(&self) -> String {
        let now_slot = self.now_slot();
        let state = self.state.lock().unwrap();
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"uptime_s\":{},\"window_slot_secs\":{WINDOW_SLOT_SECS},",
            self.started.elapsed().as_secs()
        ));
        let (events, ns) = self.overhead();
        out.push_str(&format!(
            "\"overhead\":{{\"events\":{events},\"record_us\":{}}},",
            ns / 1_000
        ));
        let counters: Vec<String> = state
            .counters
            .iter()
            .map(|(name, w)| {
                format!(
                    "{}:{{\"total\":{},\"w1m\":{},\"w5m\":{}}}",
                    json_string(name),
                    w.total,
                    w.window(SLOTS_1M, now_slot),
                    w.window(SLOTS_5M, now_slot)
                )
            })
            .collect();
        out.push_str(&format!("\"counters\":{{{}}},", counters.join(",")));
        let gauges: Vec<String> = state
            .gauges
            .iter()
            .map(|(name, v)| format!("{}:{}", json_string(name), fmt_f64(*v)))
            .collect();
        out.push_str(&format!("\"gauges\":{{{}}},", gauges.join(",")));
        let histograms: Vec<String> = state
            .histograms
            .iter()
            .map(|(name, h)| {
                let bounds: Vec<String> =
                    DURATION_BUCKETS_US.iter().map(|b| b.to_string()).collect();
                let counts: Vec<String> = h.buckets.iter().map(|n| n.to_string()).collect();
                format!(
                    concat!(
                        "{}:{{\"bounds_us\":[{}],\"counts\":[{}],",
                        "\"sum_us\":{},\"count\":{},",
                        "\"w1m\":{{\"count\":{},\"sum_us\":{}}},",
                        "\"w5m\":{{\"count\":{},\"sum_us\":{}}}}}"
                    ),
                    json_string(name),
                    bounds.join(","),
                    counts.join(","),
                    h.sum_us,
                    h.count.total,
                    h.count.window(SLOTS_1M, now_slot),
                    h.sum_ring.window(SLOTS_1M, now_slot),
                    h.count.window(SLOTS_5M, now_slot),
                    h.sum_ring.window(SLOTS_5M, now_slot),
                )
            })
            .collect();
        out.push_str(&format!("\"histograms\":{{{}}},", histograms.join(",")));
        let labelled: Vec<String> = state
            .labelled
            .iter()
            .map(|(name, buckets)| {
                let pairs: Vec<String> = buckets
                    .iter()
                    .map(|(label, n)| format!("{}:{n}", json_string(label)))
                    .collect();
                format!("{}:{{{}}}", json_string(name), pairs.join(","))
            })
            .collect();
        out.push_str(&format!("\"labelled\":{{{}}},", labelled.join(",")));
        out.push_str(&format!("\"decisions\":{}}}", state.decisions.to_json()));
        out
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Counters become `fdi_<name>_total` (with `_1m`/`_5m` gauges for the
    /// windows), gauges become `fdi_<name>`, span histograms become one
    /// `fdi_span_duration_us` family labelled by span with cumulative `le`
    /// buckets, and decision totals become `fdi_inline_decisions_total`
    /// labelled by reason.
    pub fn to_prometheus_text(&self) -> String {
        let now_slot = self.now_slot();
        let state = self.state.lock().unwrap();
        let mut out = String::with_capacity(2048);
        for (name, w) in &state.counters {
            let m = sanitize(name);
            out.push_str(&format!(
                "# TYPE fdi_{m}_total counter\nfdi_{m}_total {}\n",
                w.total
            ));
            out.push_str(&format!(
                "# TYPE fdi_{m}_1m gauge\nfdi_{m}_1m {}\n",
                w.window(SLOTS_1M, now_slot)
            ));
            out.push_str(&format!(
                "# TYPE fdi_{m}_5m gauge\nfdi_{m}_5m {}\n",
                w.window(SLOTS_5M, now_slot)
            ));
        }
        for (name, v) in &state.gauges {
            let m = sanitize(name);
            out.push_str(&format!("# TYPE fdi_{m} gauge\nfdi_{m} {}\n", fmt_f64(*v)));
        }
        if !state.histograms.is_empty() {
            out.push_str("# TYPE fdi_span_duration_us histogram\n");
            for (name, h) in &state.histograms {
                let span = sanitize(name);
                let mut cumulative = 0u64;
                for (i, count) in h.buckets.iter().enumerate() {
                    cumulative += count;
                    let le = match DURATION_BUCKETS_US.get(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!(
                        "fdi_span_duration_us_bucket{{span=\"{span}\",le=\"{le}\"}} {cumulative}\n"
                    ));
                }
                out.push_str(&format!(
                    "fdi_span_duration_us_sum{{span=\"{span}\"}} {}\n",
                    h.sum_us
                ));
                out.push_str(&format!(
                    "fdi_span_duration_us_count{{span=\"{span}\"}} {}\n",
                    h.count.total
                ));
            }
        }
        if state.decisions.total() > 0 {
            out.push_str("# TYPE fdi_inline_decisions_total counter\n");
            for (key, n) in state.decisions.iter() {
                out.push_str(&format!(
                    "fdi_inline_decisions_total{{reason=\"{}\"}} {n}\n",
                    sanitize(key)
                ));
            }
        }
        let (events, ns) = self.overhead();
        out.push_str(&format!(
            "# TYPE fdi_telemetry_events_total counter\nfdi_telemetry_events_total {events}\n"
        ));
        out.push_str(&format!(
            "# TYPE fdi_telemetry_record_us_total counter\nfdi_telemetry_record_us_total {}\n",
            ns / 1_000
        ));
        out
    }

    fn absorb(&self, event: Event, slot: u64) {
        let mut state = self.state.lock().unwrap();
        match event {
            Event::SpanBegin { id, ts_us, .. } => {
                state.open_spans.insert(id, ts_us);
            }
            Event::SpanEnd {
                id, name, ts_us, ..
            } => {
                if let Some(begin) = state.open_spans.remove(&id) {
                    state
                        .histograms
                        .entry(name)
                        .or_insert_with(Histo::new)
                        .observe(ts_us.saturating_sub(begin), slot);
                }
            }
            Event::Instant { name, args, .. } => {
                // A hit/miss argument splits the series; anything else (error
                // strings, paths) stays out of the name to bound cardinality.
                let series = match args.iter().find(|(k, _)| k == "hit") {
                    Some((_, v)) if v == "true" => format!("{name}.hit"),
                    Some(_) => format!("{name}.miss"),
                    None => name,
                };
                state
                    .counters
                    .entry(series)
                    .or_insert_with(Windowed::new)
                    .add(1, slot);
            }
            Event::Counter { name, value, .. } => {
                state
                    .counters
                    .entry(name)
                    .or_insert_with(Windowed::new)
                    .add(value, slot);
            }
            Event::Histogram { name, buckets, .. } => {
                let merged = state.labelled.entry(name).or_default();
                for (label, n) in buckets {
                    *merged.entry(label).or_insert(0) += n;
                }
            }
            Event::Decision { record, .. } => {
                state.decisions.record(&record.reason);
            }
        }
    }
}

impl Collector for MetricsRegistry {
    fn record(&self, event: Event) {
        let start = Instant::now();
        self.absorb(event, self.now_slot());
        self.events.fetch_add(1, Relaxed);
        self.record_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Relaxed);
    }
}

/// A metric-name-safe rendering: every byte outside `[a-zA-Z0-9_]` → `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders an f64 the way the registry's JSON needs it: integral values
/// without a trailing `.0` mismatch risk, everything finite as shortest
/// round-trip, non-finite as 0 (JSON has no NaN/Inf).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecisionReason, DecisionRecord};

    fn instant(name: &str, args: &[(&str, &str)]) -> Event {
        Event::Instant {
            name: name.to_string(),
            cat: "t",
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            ts_us: 0,
            tid: 1,
        }
    }

    #[test]
    fn instants_become_windowed_counters_with_hit_miss_split() {
        let reg = MetricsRegistry::new();
        reg.record(instant("cache.parse", &[("hit", "true")]));
        reg.record(instant("cache.parse", &[("hit", "true")]));
        reg.record(instant("cache.parse", &[("hit", "false")]));
        reg.record(instant("job.retry", &[("error", "boom")]));
        assert_eq!(reg.counter_total("cache.parse.hit"), 2);
        assert_eq!(reg.counter_total("cache.parse.miss"), 1);
        assert_eq!(reg.counter_total("job.retry"), 1);
        assert_eq!(reg.counter_total("absent"), 0);
        let (events, _) = reg.overhead();
        assert_eq!(events, 4);
    }

    #[test]
    fn window_ages_out_old_slots() {
        let mut w = Windowed::new();
        w.add(5, 0);
        assert_eq!(w.window(SLOTS_1M, 0), 5);
        // Eleven slots later the event is still inside the 1m window…
        assert_eq!(w.window(SLOTS_1M, 11), 5);
        // …one more and it ages out of 1m but stays in 5m…
        assert_eq!(w.window(SLOTS_1M, 12), 0);
        assert_eq!(w.window(SLOTS_5M, 12), 5);
        // …and far past 5m it is gone from every window but the total.
        assert_eq!(w.window(SLOTS_5M, 60), 0);
        assert_eq!(w.total, 5);
        // Ring reuse after a full wrap does not resurrect the old slot.
        w.add(1, WINDOW_SLOTS as u64);
        assert_eq!(w.window(1, WINDOW_SLOTS as u64), 1);
        assert_eq!(w.total, 6);
    }

    #[test]
    fn spans_feed_duration_histograms() {
        let reg = MetricsRegistry::new();
        reg.record(Event::SpanBegin {
            id: 7,
            name: "job".to_string(),
            cat: "engine",
            ts_us: 100,
            tid: 1,
        });
        reg.record(Event::SpanEnd {
            id: 7,
            name: "job".to_string(),
            ts_us: 600,
            tid: 1,
        });
        let json = reg.to_json();
        let doc = crate::json::parse(&json).expect("registry JSON parses");
        let job = doc
            .get("histograms")
            .and_then(|h| h.get("job"))
            .expect("job histogram");
        assert_eq!(job.get("count").and_then(|n| n.as_num()), Some(1.0));
        assert_eq!(job.get("sum_us").and_then(|n| n.as_num()), Some(500.0));
        let w1m = job.get("w1m").expect("1m window");
        assert_eq!(w1m.get("count").and_then(|n| n.as_num()), Some(1.0));
        // An end without a begin (begin evicted, handle reused) is dropped.
        reg.record(Event::SpanEnd {
            id: 99,
            name: "job".to_string(),
            ts_us: 700,
            tid: 1,
        });
        assert_eq!((reg.overhead().0), 3);
    }

    #[test]
    fn json_is_wellformed_and_carries_windows() {
        let reg = MetricsRegistry::new();
        reg.add("serve.requests", 3);
        reg.set_gauge("inflight", 2.0);
        reg.set_gauge("spec_hit_rate", 0.75);
        reg.observe_us("request", 1234);
        reg.record(Event::Decision {
            record: DecisionRecord {
                site_label: "l1".to_string(),
                contour: "·".to_string(),
                callee: "f".to_string(),
                verdict: DecisionReason::LoopGuard.verdict(),
                reason: DecisionReason::LoopGuard,
            },
            ts_us: 0,
            tid: 1,
        });
        let doc = crate::json::parse(&reg.to_json()).expect("parses");
        let counters = doc.get("counters").expect("counters");
        let sr = counters.get("serve.requests").expect("series");
        assert_eq!(sr.get("total").and_then(|n| n.as_num()), Some(3.0));
        assert_eq!(sr.get("w1m").and_then(|n| n.as_num()), Some(3.0));
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("spec_hit_rate"))
                .and_then(|n| n.as_num()),
            Some(0.75)
        );
        assert_eq!(
            doc.get("decisions")
                .and_then(|d| d.get("loop_guard"))
                .and_then(|n| n.as_num()),
            Some(1.0)
        );
    }

    #[test]
    fn prometheus_text_is_wellformed() {
        let reg = MetricsRegistry::new();
        reg.add("cache.parse.hit", 2);
        reg.set_gauge("cache_bytes_used", 4096.0);
        reg.observe_us("job", 50);
        reg.observe_us("job", 2_000_000);
        let text = reg.to_prometheus_text();
        assert!(text.contains("# TYPE fdi_cache_parse_hit_total counter\n"));
        assert!(text.contains("fdi_cache_parse_hit_total 2\n"));
        assert!(text.contains("fdi_cache_bytes_used 4096\n"));
        assert!(text.contains("fdi_span_duration_us_bucket{span=\"job\",le=\"100\"} 1\n"));
        assert!(text.contains("fdi_span_duration_us_bucket{span=\"job\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("fdi_span_duration_us_count{span=\"job\"} 2\n"));
        // Buckets are cumulative: every line's value is ≥ its predecessor's.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("fdi_span_duration_us_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        // Every sample line is `name value` or `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
        }
    }
}
