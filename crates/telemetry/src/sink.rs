//! Built-in [`Collector`] implementations.

use crate::{Collector, Event};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded in-memory collector: keeps the most recent `capacity` events,
/// evicting the oldest and counting drops. This is the default sink for the
/// CLI's `--trace-out` and for tests.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::with_capacity(1 << 20)
    }
}

impl Collector for RingSink {
    fn record(&self, event: Event) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }
}

/// A tee: replicates every event to each downstream collector, in order.
/// This is how the serve daemon feeds one [`crate::Telemetry`] handle into
/// the metrics registry and the flight recorder at once.
pub struct Fanout {
    sinks: Vec<std::sync::Arc<dyn Collector>>,
}

impl Fanout {
    /// A fanout over `sinks`; an empty list is a valid black hole.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Collector>>) -> Fanout {
        Fanout { sinks }
    }
}

impl Collector for Fanout {
    fn record(&self, event: Event) {
        let Some((last, rest)) = self.sinks.split_last() else {
            return;
        };
        for sink in rest {
            sink.record(event.clone());
        }
        last.record(event);
    }
}

/// A streaming collector: writes one JSON object per event per line.
/// Suitable for piping long runs to disk without buffering them.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; each recorded event becomes one line of JSON.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap();
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Collector for JsonLinesSink<W> {
    fn record(&self, event: Event) {
        let line = crate::trace::event_json(&event);
        let mut w = self.writer.lock().unwrap();
        // Telemetry must never fail the pipeline; drop writes on error.
        let _ = writeln!(w, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, value: u64) -> Event {
        Event::Counter {
            name: name.to_string(),
            value,
            ts_us: value,
            tid: 7,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let sink = RingSink::with_capacity(3);
        for i in 0..5 {
            sink.record(counter("c", i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let kept: Vec<u64> = sink
            .snapshot()
            .iter()
            .map(|e| match e {
                Event::Counter { value, .. } => *value,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(kept, [2, 3, 4]);
        assert_eq!(sink.drain().len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(counter("a", 1));
        sink.record(counter("b", 2));
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("each line parses as JSON");
        }
    }
}
