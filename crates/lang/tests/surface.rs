//! Surface-language conformance tests: every derived form must expand,
//! lower, validate, and round-trip through the unparser.

use fdi_lang::{parse_and_lower, unparse, validate, ExprKind, PrimOp};

fn roundtrips(src: &str) {
    let p = parse_and_lower(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    validate(&p).unwrap_or_else(|e| panic!("{src}: {e}"));
    // The unparsed program is closed, so re-lower it without prelude
    // injection (prelude names appearing as bound variables would otherwise
    // pull library code in a second time).
    let printed = unparse(&p).to_string();
    let data = fdi_sexpr::parse(&printed).unwrap();
    let core = fdi_lang::expand_program(&data).unwrap();
    let p2 = fdi_lang::lower_program(&core).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
    validate(&p2).unwrap_or_else(|e| panic!("revalidate {printed}: {e}"));
    assert_eq!(p.size(), p2.size(), "size drift through unparse: {src}");
}

#[test]
fn all_derived_forms_roundtrip() {
    for src in [
        "(cond ((= 1 2) 'a) ((= 2 2) 'b) (else 'c))",
        "(cond (#f 'x) (42))",
        "(cond ((assq 'k '((k 1))) => cdr) (else 'no))",
        "(case (* 2 3) ((2 3 5 7) 'prime) ((1 4 6 8 9) 'composite))",
        "(case 9 ((1) 'one) (else 'many))",
        "(and 1 2 3)",
        "(or #f #f 3)",
        "(when (= 1 1) (display 1) 2)",
        "(unless (= 1 2) 'fine)",
        "(let* ((a 1) (b (+ a 1)) (c (+ b 1))) c)",
        "(let loop ((i 0) (acc '())) (if (= i 3) acc (loop (+ i 1) (cons i acc))))",
        "(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 10) s) (display i))",
        "(letrec ((f (lambda (x) (g x))) (g (lambda (x) x))) (f 1))",
        "((lambda args (length args)) 1 2 3)",
        "((lambda (a b . rest) (cons a rest)) 1 2 3 4)",
        "`(1 ,(+ 1 1) ,@(list 3 4) 5)",
        "'(nested (quoted (structure)))",
        "'#(1 2 (3 . 4))",
        "(define x 1) (define (f) x) (define (g) (f)) (g)",
        "(begin)",
        "(if (< 1 2) 'then)",
        "(apply max 1 2 '(3 4))",
    ] {
        roundtrips(src);
    }
}

#[test]
fn internal_defines_nest_correctly() {
    let p = parse_and_lower(
        "(define (outer x)
           (define (helper y) (* y y))
           (define k 10)
           (+ (helper x) k))
         (outer 3)",
    )
    .unwrap();
    assert!(validate(&p).is_ok());
}

#[test]
fn body_with_trailing_define_is_rejected() {
    assert!(parse_and_lower("(lambda (x) (define y 1))").is_err());
}

#[test]
fn duplicate_parameter_names_shadow_consistently() {
    // R4RS forbids duplicate formals; our lowering keeps last-binding-wins
    // scoping, which the unique-binding property makes unambiguous.
    let p = parse_and_lower("(let ((x 1)) (let ((x 2)) x))").unwrap();
    assert!(validate(&p).is_ok());
}

#[test]
fn quoted_data_shares_hoisted_structure() {
    // The same literal appearing twice still yields two hoisted bindings
    // (no accidental label sharing).
    let p = parse_and_lower("(cons '(1 2) '(1 2))").unwrap();
    assert!(validate(&p).is_ok());
    let conses = p
        .reachable()
        .iter()
        .filter(|&&l| matches!(p.expr(l), ExprKind::Prim(PrimOp::Cons, _)))
        .count();
    assert!(
        conses >= 5,
        "two hoisted lists plus the outer cons: {conses}"
    );
}

#[test]
fn deeply_nested_quotes_lower() {
    let src = format!("(length '({}))", "x ".repeat(500));
    let p = parse_and_lower(&src).unwrap();
    assert!(validate(&p).is_ok());
}

#[test]
fn prelude_is_tree_shaken() {
    let small = parse_and_lower("(+ 1 2)").unwrap();
    let with_map = parse_and_lower("(map car '((1)))").unwrap();
    assert!(
        with_map.size() > small.size() + 50,
        "map and its dependencies should be prepended only when used"
    );
}

#[test]
fn size_metric_is_stable_across_alpha_renaming() {
    let a = parse_and_lower("(lambda (x) (lambda (y) (cons x y)))").unwrap();
    let b = parse_and_lower("(lambda (q) (lambda (r) (cons q r)))").unwrap();
    assert_eq!(a.size(), b.size());
}

#[test]
fn line_count_reflects_pretty_printing() {
    let p = parse_and_lower("(define (f x) (if (zero? x) 'a 'b)) (f 1)").unwrap();
    assert!(p.line_count() >= 1);
}

#[test]
fn errors_name_the_offending_construct() {
    for (src, needle) in [
        ("(lambda)", "lambda"),
        ("(if 1)", "if"),
        ("(let ((1 2)) 3)", "let"),
        ("(case)", "case"),
        ("(cond bad-clause)", "cond"),
        ("(do x y)", "do"),
        ("(quote)", "quote"),
        ("(set! x 1)", "set!"),
        ("(unquote x)", "unquote"),
    ] {
        let err = parse_and_lower(src).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "error for {src} should mention {needle}: {err}"
        );
    }
}

#[test]
fn eta_expanded_variadic_prims_have_rest_wrappers() {
    // `+` as a value must accept any arity ≥ 2, so its η expansion is a
    // genuinely variadic wrapper (the VM-level behaviour is covered by
    // fdi-vm's `variadic_and_apply` test).
    let p = parse_and_lower("(apply + '(1 2 3 4 5))").unwrap();
    assert!(validate(&p).is_ok());
    let has_variadic_wrapper = p.labels().any(|l| match p.expr(l) {
        ExprKind::Lambda(lam) => lam.rest.is_some() && lam.params.len() == 2,
        _ => false,
    });
    assert!(has_variadic_wrapper, "variadic η wrapper missing");
}

#[test]
fn adversarial_nesting_errors_instead_of_overflowing() {
    // Reader-level nesting: caught by the parser's depth guard.
    let parens = format!("{}1{}", "(car ".repeat(100_000), ")".repeat(100_000));
    assert!(parse_and_lower(&parens).is_err());
    // Expansion-level nesting: a wide let* re-enters the expander once per
    // binding, so width becomes depth past the reader's cap.
    let bindings: String = (0..5_000).map(|i| format!("(a{i} 1)")).collect();
    let wide_let_star = format!("(let* ({bindings}) 0)");
    let e = parse_and_lower(&wide_let_star).unwrap_err();
    assert!(e.to_string().contains("deeper"), "{e}");
    // Lowering-level nesting: sequential non-lambda defines assemble into
    // nested lets without re-entering the expander.
    let defines: String = (0..100_000).map(|i| format!("(define d{i} 1)")).collect();
    let deep_defines = format!("{defines} 0");
    let e = parse_and_lower(&deep_defines).unwrap_err();
    assert!(e.to_string().contains("deeper"), "{e}");
}
