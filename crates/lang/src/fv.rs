//! Free-variable computation (§3.1's FV, used by §3.5's free-variable lists).

use crate::ast::{ExprKind, Label, Program, VarId};
use std::collections::{HashMap, HashSet};

/// Free variables of every λ-expression in `program`, each list ordered by
/// first occurrence in the body (the order `cl-ref` indexes use).
#[derive(Debug, Clone, Default)]
pub struct FreeVars {
    per_lambda: HashMap<Label, Vec<VarId>>,
}

impl FreeVars {
    /// Computes free variables for all λs reachable from the root.
    pub fn compute(program: &Program) -> FreeVars {
        let mut fv = FreeVars::default();
        for label in program.reachable() {
            if let ExprKind::Lambda(lam) = program.expr(label) {
                let mut bound: HashSet<VarId> = lam.params.iter().copied().collect();
                bound.extend(lam.rest);
                let mut order = Vec::new();
                let mut seen = HashSet::new();
                collect(program, lam.body, &mut bound, &mut seen, &mut order);
                fv.per_lambda.insert(label, order);
            }
        }
        fv
    }

    /// The ordered free-variable list of the λ at `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not a reachable λ of the analyzed program.
    pub fn of(&self, label: Label) -> &[VarId] {
        &self.per_lambda[&label]
    }

    /// Like [`FreeVars::of`] but returns `None` for non-λ labels.
    pub fn get(&self, label: Label) -> Option<&[VarId]> {
        self.per_lambda.get(&label).map(Vec::as_slice)
    }
}

/// Collects variables free in `label` given `bound`, appending first
/// occurrences to `order`.
///
/// Driven by an explicit worklist rather than recursion: program depth is
/// unbounded from this function's point of view (inlining can deepen what
/// the reader's nesting cap admitted), so a deep program must cost heap,
/// not stack. Scope save/restore is properly nested, so `Bind`/`Unbind`
/// markers on the same stack reconstruct the recursive discipline exactly.
fn collect(
    program: &Program,
    label: Label,
    bound: &mut HashSet<VarId>,
    seen: &mut HashSet<VarId>,
    order: &mut Vec<VarId>,
) {
    enum Task {
        Visit(Label),
        /// Inserts the vars into `bound`, remembering which were new.
        Bind(Vec<VarId>),
        /// Removes the most recent `Bind`'s additions.
        Unbind,
        /// Records a λ's pinned captures (after its body, inside its scope).
        Pinned(Label),
    }
    let mut free = |bound: &HashSet<VarId>, seen: &mut HashSet<VarId>, v: VarId| {
        if !bound.contains(&v) && seen.insert(v) {
            order.push(v);
        }
    };
    let mut tasks = vec![Task::Visit(label)];
    let mut scopes: Vec<Vec<VarId>> = Vec::new();
    while let Some(task) = tasks.pop() {
        match task {
            Task::Visit(l) => match program.expr(l) {
                ExprKind::Var(v) => free(bound, seen, *v),
                ExprKind::Const(_) => {}
                ExprKind::Lambda(lam) => {
                    // A nested λ's *pinned* captures (§3.5 target language)
                    // must be materializable at its creation site, so they
                    // count as free mentions in every enclosing λ even when
                    // no direct reference remains in the body.
                    tasks.push(Task::Unbind);
                    tasks.push(Task::Pinned(l));
                    tasks.push(Task::Visit(lam.body));
                    tasks.push(Task::Bind(
                        lam.params.iter().copied().chain(lam.rest).collect(),
                    ));
                }
                ExprKind::Let(bindings, body) => {
                    tasks.push(Task::Unbind);
                    tasks.push(Task::Visit(*body));
                    tasks.push(Task::Bind(bindings.iter().map(|&(v, _)| v).collect()));
                    for &(_, e) in bindings.iter().rev() {
                        tasks.push(Task::Visit(e));
                    }
                }
                ExprKind::Letrec(bindings, body) => {
                    tasks.push(Task::Unbind);
                    tasks.push(Task::Visit(*body));
                    for &(_, e) in bindings.iter().rev() {
                        tasks.push(Task::Visit(e));
                    }
                    tasks.push(Task::Bind(bindings.iter().map(|&(v, _)| v).collect()));
                }
                _ => {
                    let mut kids = Vec::new();
                    program.for_each_child(l, |c| kids.push(c));
                    for c in kids.into_iter().rev() {
                        tasks.push(Task::Visit(c));
                    }
                }
            },
            Task::Bind(vars) => {
                let added: Vec<VarId> = vars.into_iter().filter(|v| bound.insert(*v)).collect();
                scopes.push(added);
            }
            Task::Unbind => {
                for v in scopes.pop().expect("balanced bind/unbind") {
                    bound.remove(&v);
                }
            }
            Task::Pinned(l) => {
                for &v in program.pinned_captures(l).unwrap_or(&[]) {
                    free(bound, seen, v);
                }
            }
        }
    }
}

/// Convenience: the free variables of a single λ computed in isolation.
///
/// # Examples
///
/// ```
/// use fdi_lang::parse_and_lower;
///
/// let p = parse_and_lower("(lambda (x) (lambda (y) (cons x y)))").unwrap();
/// // the outer lambda is closed; the inner one has {x} free
/// ```
pub fn free_vars_of_lambda(program: &Program, lambda: Label) -> Vec<VarId> {
    FreeVars::compute(program)
        .get(lambda)
        .map(<[VarId]>::to_vec)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_lower;

    fn lambdas(p: &Program) -> Vec<Label> {
        p.reachable()
            .into_iter()
            .filter(|&l| matches!(p.expr(l), ExprKind::Lambda(_)))
            .collect()
    }

    #[test]
    fn closed_lambda_has_no_free_vars() {
        let p = parse_and_lower("(lambda (x) x)").unwrap();
        let fv = FreeVars::compute(&p);
        assert_eq!(fv.of(p.root()), &[]);
    }

    #[test]
    fn nested_lambda_captures_outer_param() {
        let p = parse_and_lower("(lambda (x) (lambda (y) (cons x y)))").unwrap();
        let fv = FreeVars::compute(&p);
        let ls = lambdas(&p);
        assert_eq!(ls.len(), 2);
        let inner = ls
            .iter()
            .copied()
            .find(|&l| !fv.of(l).is_empty())
            .expect("one lambda captures x");
        assert_eq!(fv.of(inner).len(), 1);
        assert_eq!(p.var_name(fv.of(inner)[0]), "x");
    }

    #[test]
    fn let_bound_vars_are_not_free_in_body() {
        let p = parse_and_lower("(lambda (z) (let ((a z)) a))").unwrap();
        let fv = FreeVars::compute(&p);
        assert_eq!(fv.of(p.root()), &[]);
    }

    #[test]
    fn let_rhs_sees_outer_scope_only() {
        // In (let ((a a0)) ...) the RHS `a0` refers to an outer binding.
        let p = parse_and_lower("(lambda (a) (lambda (b) (let ((a (cons a b))) a)))").unwrap();
        let fv = FreeVars::compute(&p);
        let ls = lambdas(&p);
        let inner = ls
            .iter()
            .copied()
            .find(|&l| fv.of(l).len() == 1)
            .expect("inner lambda frees outer a");
        assert_eq!(p.var_name(fv.of(inner)[0]), "a");
    }

    #[test]
    fn letrec_binds_in_rhs() {
        let p = parse_and_lower("(letrec ((f (lambda (n) (f n)))) (f 1))").unwrap();
        let fv = FreeVars::compute(&p);
        let ls = lambdas(&p);
        // f's lambda has f free (bound by the letrec, so free *in the λ*).
        assert_eq!(ls.len(), 1);
        assert_eq!(p.var_name(fv.of(ls[0])[0]), "f");
    }

    #[test]
    fn order_is_first_occurrence() {
        let p = parse_and_lower("(lambda (a b c) (lambda () (cons c (cons a b))))").unwrap();
        let fv = FreeVars::compute(&p);
        let ls = lambdas(&p);
        let inner = ls
            .iter()
            .copied()
            .find(|&l| fv.of(l).len() == 3)
            .expect("inner lambda");
        let names: Vec<&str> = fv.of(inner).iter().map(|&v| p.var_name(v)).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }
}
