//! The code-size metric behind the `Inline?` threshold predicate (§3.7).
//!
//! The paper estimates "the size of the generated code for the inlined
//! procedure at a particular call site". We charge one unit per expression
//! node with small extra charges for binding structure, so that thresholds
//! have roughly the granularity of the paper's (where `(map car m)` becomes
//! inlinable above threshold 60).

use crate::ast::{ExprKind, Label, Program};

/// Size charged for a single node of the given kind (children not included).
pub fn node_size(kind: &ExprKind) -> usize {
    match kind {
        ExprKind::Const(_) | ExprKind::Var(_) => 1,
        ExprKind::Prim(..) | ExprKind::Call(_) | ExprKind::Apply(..) => 1,
        ExprKind::Begin(_) | ExprKind::If(..) => 1,
        // Binding forms pay one unit per binding: each binding compiles to
        // a register move / closure slot.
        ExprKind::Let(bindings, _) | ExprKind::Letrec(bindings, _) => 1 + bindings.len(),
        // A λ pays for closure creation plus one slot per parameter.
        ExprKind::Lambda(lam) => 2 + lam.params.len() + lam.rest.is_some() as usize,
        ExprKind::ClRef(..) => 1,
    }
}

/// Size of the subtree rooted at `label`.
///
/// # Examples
///
/// ```
/// let p = fdi_lang::parse_and_lower("(+ 1 2)").unwrap();
/// assert_eq!(fdi_lang::expr_size(&p, p.root()), 3);
/// ```
pub fn expr_size(program: &Program, label: Label) -> usize {
    subtree_size(program, label)
}

pub(crate) fn subtree_size(program: &Program, root: Label) -> usize {
    let mut total = 0;
    let mut stack = vec![root];
    while let Some(l) = stack.pop() {
        total += node_size(program.expr(l));
        program.for_each_child(l, |c| stack.push(c));
    }
    total
}

#[cfg(test)]
mod tests {
    use crate::parse_and_lower;

    #[test]
    fn constants_and_vars_are_unit_size() {
        let p = parse_and_lower("1").unwrap();
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn lambda_charges_for_params() {
        let one = parse_and_lower("(lambda (x) 1)").unwrap();
        let two = parse_and_lower("(lambda (x y) 1)").unwrap();
        assert_eq!(two.size(), one.size() + 1);
    }

    #[test]
    fn let_charges_per_binding() {
        let one = parse_and_lower("(let ((a 1)) a)").unwrap();
        let two = parse_and_lower("(let ((a 1) (b 2)) a)").unwrap();
        // One more binding: +1 for the slot, +1 for the extra constant.
        assert_eq!(two.size(), one.size() + 2);
    }

    #[test]
    fn size_is_sum_over_reachable_tree() {
        let p = parse_and_lower("(if (null? '()) 1 2)").unwrap();
        // if + prim + nil + 1 + 2
        assert_eq!(p.size(), 5);
    }
}
