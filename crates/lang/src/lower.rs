//! Lowering: core S-expressions → labeled, α-renamed [`Program`]s.
//!
//! Lowering establishes the two uniqueness properties the paper assumes in
//! §3.1 (unique labels, distinct variables), resolves primitive names, and
//! η-expands primitives used as values so that `(map car m)` passes a real
//! closure — which the flow analysis can then track and the inliner inline.

use crate::ast::{Binder, ExprKind, Label, LambdaInfo, Program, VarId, VarInfo};
use crate::consts::Const;
use crate::intern::Interner;
use crate::prims::PrimOp;
use fdi_sexpr::Datum;
use std::fmt;

/// An error during lowering (scope resolution or arity checking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lower error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(message: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError {
        message: message.into(),
    })
}

/// Names with core-form or surface-form meaning; binding them is rejected so
/// shadowing bugs fail loudly at lowering time instead of misparsing.
const RESERVED: &[&str] = &[
    "define",
    "lambda",
    "if",
    "begin",
    "let",
    "let*",
    "letrec",
    "letrec*",
    "cond",
    "case",
    "and",
    "or",
    "when",
    "unless",
    "do",
    "quote",
    "quasiquote",
    "unquote",
    "unquote-splicing",
    "set!",
    "apply",
    "cl-ref",
    "else",
    "=>",
    "unspecified",
];

/// Lowers one fully-expanded core expression into a [`Program`].
///
/// # Errors
///
/// Returns [`LowerError`] for unbound variables, reserved-name bindings, bad
/// primitive arities, and malformed core forms.
///
/// # Examples
///
/// ```
/// let data = fdi_sexpr::parse("(let ((x 1)) x)").unwrap();
/// let core = fdi_lang::expand_program(&data).unwrap();
/// let p = fdi_lang::lower_program(&core).unwrap();
/// assert!(matches!(p.expr(p.root()), fdi_lang::ExprKind::Let(..)));
/// ```
pub fn lower_program(core: &Datum) -> Result<Program, LowerError> {
    let mut lowerer = Lowerer {
        program: Program::new(Interner::new()),
        scope: Vec::new(),
        depth: 0,
    };
    let root = lowerer.lower(core, true)?;
    lowerer.program.set_root(root);
    Ok(lowerer.program)
}

/// Maximum lowering recursion depth. Expansion can deepen wide forms
/// (`let*`, `cond`) well past the reader's nesting cap, so the lowerer
/// carries its own guard and fails with a [`LowerError`] instead of
/// overflowing the stack. Sized so the full descent fits a 2 MiB thread
/// stack (the test-harness default) with room for the expander above it.
const MAX_LOWER_DEPTH: usize = 600;

struct Lowerer {
    program: Program,
    scope: Vec<(String, VarId)>,
    depth: usize,
}

impl Lowerer {
    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn bind(&mut self, name: &str, binder: Binder, top_level: bool) -> Result<VarId, LowerError> {
        if RESERVED.contains(&name) {
            return err(format!("cannot bind reserved name '{name}'"));
        }
        let sym = self.program.interner_mut().intern(name);
        let v = self.program.add_var(VarInfo {
            name: sym,
            binder,
            top_level,
        });
        self.scope.push((name.to_string(), v));
        Ok(v)
    }

    fn konst(&mut self, c: Const) -> Label {
        self.program.add_expr(ExprKind::Const(c))
    }

    fn lower(&mut self, d: &Datum, at_top: bool) -> Result<Label, LowerError> {
        if self.depth >= MAX_LOWER_DEPTH {
            return err(format!(
                "expression nests deeper than {MAX_LOWER_DEPTH} levels"
            ));
        }
        self.depth += 1;
        let result = self.lower_inner(d, at_top);
        self.depth -= 1;
        result
    }

    fn lower_inner(&mut self, d: &Datum, at_top: bool) -> Result<Label, LowerError> {
        match d {
            Datum::Bool(b) => Ok(self.konst(Const::Bool(*b))),
            Datum::Int(n) => Ok(self.konst(Const::Int(*n))),
            Datum::Float(x) => Ok(self.konst(Const::float(*x))),
            Datum::Char(c) => Ok(self.konst(Const::Char(*c))),
            Datum::Str(s) => {
                let sym = self.program.interner_mut().intern(s);
                Ok(self.konst(Const::Str(sym)))
            }
            Datum::Sym(name) => self.lower_var(name),
            Datum::Nil => err("() is not an expression"),
            Datum::Vector(_) => err("vector literals must be quoted"),
            Datum::Improper(..) => err(format!("bad expression: {d}")),
            Datum::List(parts) => self.lower_form(parts, at_top),
        }
    }

    fn lower_var(&mut self, name: &str) -> Result<Label, LowerError> {
        if let Some(v) = self.lookup(name) {
            return Ok(self.program.add_expr(ExprKind::Var(v)));
        }
        if let Some(p) = PrimOp::from_name(name) {
            return self.eta_expand(p);
        }
        err(format!("unbound variable '{name}'"))
    }

    /// A primitive used as a value becomes a procedure wrapper.
    ///
    /// Fixed-arity primitives η-expand directly. Variadic folding primitives
    /// (`+`, `*`, …) and chained comparisons (`<`, `=`, …) get genuinely
    /// variadic wrappers so `(apply + lst)` behaves like R4RS — these accept
    /// two or more arguments.
    fn eta_expand(&mut self, p: PrimOp) -> Result<Label, LowerError> {
        use PrimOp::*;
        let name = p.name();
        let src = match p {
            Add | Sub | Mul | Div | Min | Max | StringAppend => format!(
                "(lambda (a b . rest)
                   (letrec ((go (lambda (acc l)
                                  (if (null? l)
                                      acc
                                      (go ({name} acc (car l)) (cdr l))))))
                     (go ({name} a b) rest)))"
            ),
            NumEq | Lt | Gt | Le | Ge => format!(
                "(lambda (a b . rest)
                   (letrec ((go (lambda (prev l)
                                  (if (null? l)
                                      #t
                                      (if ({name} prev (car l))
                                          (go (car l) (cdr l))
                                          #f)))))
                     (if ({name} a b) (go b rest) #f)))"
            ),
            _ => {
                let sig = p.sig();
                let arity = match sig.max_args {
                    Some(m) if m as usize == sig.min_args as usize => sig.min_args as usize,
                    // Other variadic primitives (e.g. `vector`) specialize to
                    // the common binary use.
                    _ => (sig.min_args as usize).max(2),
                };
                let params: Vec<String> = (0..arity).map(|i| format!("%eta{i}")).collect();
                format!(
                    "(lambda ({params}) ({name} {params}))",
                    params = params.join(" ")
                )
            }
        };
        let datum = fdi_sexpr::parse_one(&src).expect("eta template parses");
        // The template binds every name it references except the primitive
        // itself, which must not be shadowed here — guaranteed because η
        // expansion only triggers for unshadowed primitive references.
        self.lower(&datum, false)
    }

    fn set(&mut self, label: Label, kind: ExprKind) {
        self.program.set_expr(label, kind);
    }

    fn lower_form(&mut self, parts: &[Datum], at_top: bool) -> Result<Label, LowerError> {
        debug_assert!(!parts.is_empty());
        match parts[0].as_sym() {
            Some("quote") => self.lower_quote(parts),
            Some("unspecified") if parts.len() == 1 => Ok(self.konst(Const::Unspecified)),
            Some("lambda") => self.lower_lambda(parts),
            Some("if") => {
                if parts.len() != 4 {
                    return err("if: expected 3 subexpressions");
                }
                let c = self.lower(&parts[1], false)?;
                let t = self.lower(&parts[2], false)?;
                let e = self.lower(&parts[3], false)?;
                Ok(self.program.add_expr(ExprKind::If(c, t, e)))
            }
            Some("begin") => {
                if parts.len() < 2 {
                    return err("begin: empty");
                }
                let mut labels = Vec::new();
                for (i, e) in parts[1..].iter().enumerate() {
                    let last = i == parts.len() - 2;
                    labels.push(self.lower(e, at_top && last)?);
                }
                Ok(self.program.add_expr(ExprKind::Begin(labels)))
            }
            Some("let") => self.lower_let(parts, at_top),
            Some("letrec") => self.lower_letrec(parts, at_top),
            Some("apply") => self.lower_apply(parts),
            Some("cl-ref") => {
                if parts.len() != 3 {
                    return err("cl-ref: expected 2 subexpressions");
                }
                let e = self.lower(&parts[1], false)?;
                let Datum::Int(n) = parts[2] else {
                    return err("cl-ref: index must be an integer literal");
                };
                if n < 0 {
                    return err("cl-ref: negative index");
                }
                Ok(self.program.add_expr(ExprKind::ClRef(e, n as u32)))
            }
            Some(name) if self.lookup(name).is_none() && PrimOp::from_name(name).is_some() => {
                let p = PrimOp::from_name(name).unwrap();
                if !p.sig().accepts(parts.len() - 1) {
                    return err(format!(
                        "primitive {name} applied to {} arguments",
                        parts.len() - 1
                    ));
                }
                let mut args = Vec::new();
                for a in &parts[1..] {
                    args.push(self.lower(a, false)?);
                }
                Ok(self.program.add_expr(ExprKind::Prim(p, args)))
            }
            _ => {
                let mut labels = Vec::new();
                for e in parts {
                    labels.push(self.lower(e, false)?);
                }
                Ok(self.program.add_expr(ExprKind::Call(labels)))
            }
        }
    }

    fn lower_quote(&mut self, parts: &[Datum]) -> Result<Label, LowerError> {
        if parts.len() != 2 {
            return err("quote: bad syntax");
        }
        match &parts[1] {
            Datum::Sym(s) => {
                let sym = self.program.interner_mut().intern(s);
                Ok(self.konst(Const::Symbol(sym)))
            }
            Datum::Nil => Ok(self.konst(Const::Nil)),
            Datum::Bool(b) => Ok(self.konst(Const::Bool(*b))),
            Datum::Int(n) => Ok(self.konst(Const::Int(*n))),
            Datum::Float(x) => Ok(self.konst(Const::float(*x))),
            Datum::Char(c) => Ok(self.konst(Const::Char(*c))),
            Datum::Str(s) => {
                let sym = self.program.interner_mut().intern(s);
                Ok(self.konst(Const::Str(sym)))
            }
            other => err(format!(
                "compound quote not hoisted by the expander: {other}"
            )),
        }
    }

    fn lower_lambda(&mut self, parts: &[Datum]) -> Result<Label, LowerError> {
        if parts.len() != 3 {
            return err("lambda: expected exactly one body expression after expansion");
        }
        let (required, rest_name): (Vec<&str>, Option<&str>) = match &parts[1] {
            Datum::Sym(r) => (Vec::new(), Some(r.as_str())),
            Datum::Nil => (Vec::new(), None),
            Datum::List(ps) => {
                let names = ps
                    .iter()
                    .map(|p| {
                        p.as_sym().ok_or_else(|| LowerError {
                            message: format!("lambda: bad parameter {p}"),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                (names, None)
            }
            Datum::Improper(ps, tail) => {
                let names = ps
                    .iter()
                    .map(|p| {
                        p.as_sym().ok_or_else(|| LowerError {
                            message: format!("lambda: bad parameter {p}"),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let rest = tail.as_sym().ok_or_else(|| LowerError {
                    message: format!("lambda: bad rest parameter {tail}"),
                })?;
                (names, Some(rest))
            }
            other => return err(format!("lambda: bad formals {other}")),
        };
        let lam = self.program.add_expr(ExprKind::Const(Const::Unspecified));
        let mark = self.scope.len();
        let mut params = Vec::new();
        for name in required {
            params.push(self.bind(name, Binder::Lambda(lam), false)?);
        }
        let rest = rest_name
            .map(|n| self.bind(n, Binder::Lambda(lam), false))
            .transpose()?;
        let body = self.lower(&parts[2], false)?;
        self.scope.truncate(mark);
        self.set(lam, ExprKind::Lambda(LambdaInfo { params, rest, body }));
        Ok(lam)
    }

    fn lower_let(&mut self, parts: &[Datum], at_top: bool) -> Result<Label, LowerError> {
        if parts.len() != 3 {
            return err("let: expected bindings and one body expression");
        }
        let bindings = parts[1].as_list().ok_or_else(|| LowerError {
            message: "let: bad bindings".into(),
        })?;
        let mut rhs_labels = Vec::new();
        let mut names = Vec::new();
        for b in bindings {
            let pair = b
                .as_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| LowerError {
                    message: format!("let: bad binding {b}"),
                })?;
            let name = pair[0].as_sym().ok_or_else(|| LowerError {
                message: "let: binding name must be a symbol".into(),
            })?;
            names.push(name);
            rhs_labels.push(self.lower(&pair[1], false)?);
        }
        let label = self.program.add_expr(ExprKind::Const(Const::Unspecified));
        let mark = self.scope.len();
        let mut bound = Vec::new();
        for (name, rhs) in names.into_iter().zip(rhs_labels) {
            let v = self.bind(name, Binder::Let(label), at_top)?;
            bound.push((v, rhs));
        }
        let body = self.lower(&parts[2], at_top)?;
        self.scope.truncate(mark);
        self.set(label, ExprKind::Let(bound, body));
        Ok(label)
    }

    fn lower_letrec(&mut self, parts: &[Datum], at_top: bool) -> Result<Label, LowerError> {
        if parts.len() != 3 {
            return err("letrec: expected bindings and one body expression");
        }
        let bindings = parts[1].as_list().ok_or_else(|| LowerError {
            message: "letrec: bad bindings".into(),
        })?;
        let label = self.program.add_expr(ExprKind::Const(Const::Unspecified));
        let mark = self.scope.len();
        let mut vars = Vec::new();
        for b in bindings {
            let pair = b
                .as_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| LowerError {
                    message: format!("letrec: bad binding {b}"),
                })?;
            let name = pair[0].as_sym().ok_or_else(|| LowerError {
                message: "letrec: binding name must be a symbol".into(),
            })?;
            vars.push(self.bind(name, Binder::Letrec(label), at_top)?);
        }
        let mut bound = Vec::new();
        for (i, b) in bindings.iter().enumerate() {
            let pair = b.as_list().unwrap();
            if !pair[1].is_form("lambda") {
                return err("letrec: right-hand side must be a lambda");
            }
            let rhs = self.lower(&pair[1], false)?;
            bound.push((vars[i], rhs));
        }
        let body = self.lower(&parts[2], at_top)?;
        self.scope.truncate(mark);
        self.set(label, ExprKind::Letrec(bound, body));
        Ok(label)
    }

    fn lower_apply(&mut self, parts: &[Datum]) -> Result<Label, LowerError> {
        if parts.len() < 3 {
            return err("apply: expected a procedure and at least one argument");
        }
        let f = self.lower(&parts[1], false)?;
        // (apply f a b lst) ≡ (apply f (cons a (cons b lst)))
        let last = self.lower(parts.last().unwrap(), false)?;
        let mut arg = last;
        for fixed in parts[2..parts.len() - 1].iter().rev() {
            let a = self.lower(fixed, false)?;
            arg = self
                .program
                .add_expr(ExprKind::Prim(PrimOp::Cons, vec![a, arg]));
        }
        Ok(self.program.add_expr(ExprKind::Apply(f, arg)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_lower;

    #[test]
    fn resolves_lexical_scope() {
        let p = parse_and_lower("(let ((x 1)) (let ((x 2)) x))").unwrap();
        // The inner x reference must point at the inner binding.
        let ExprKind::Let(outer, body) = p.expr(p.root()) else {
            panic!("expected let")
        };
        let outer_var = outer[0].0;
        let ExprKind::Let(inner, body2) = p.expr(*body) else {
            panic!("expected inner let")
        };
        let inner_var = inner[0].0;
        assert_ne!(outer_var, inner_var);
        let ExprKind::Var(used) = p.expr(*body2) else {
            panic!("expected var")
        };
        assert_eq!(*used, inner_var);
    }

    #[test]
    fn prim_head_becomes_prim_node() {
        let p = parse_and_lower("(+ 1 2)").unwrap();
        assert!(matches!(p.expr(p.root()), ExprKind::Prim(PrimOp::Add, args) if args.len() == 2));
    }

    #[test]
    fn shadowed_prim_becomes_call() {
        let p = parse_and_lower("(let ((car (lambda (x) x))) (car 5))").unwrap();
        let ExprKind::Let(_, body) = p.expr(p.root()) else {
            panic!()
        };
        assert!(matches!(p.expr(*body), ExprKind::Call(_)));
    }

    #[test]
    fn prim_as_value_eta_expands() {
        let p = parse_and_lower("(map car m-is-unbound)");
        // m-is-unbound is unbound → error; use a bound var.
        assert!(p.is_err());
        let p = parse_and_lower("(let ((m '())) (map car m))").unwrap();
        // find an eta lambda wrapping Car
        let found = p.labels().any(|l| match p.expr(l) {
            ExprKind::Lambda(lam) => {
                matches!(p.expr(lam.body), ExprKind::Prim(PrimOp::Car, _))
            }
            _ => false,
        });
        assert!(found, "car was not eta-expanded");
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = parse_and_lower("nope").unwrap_err();
        assert!(e.to_string().contains("unbound"), "{e}");
    }

    #[test]
    fn reserved_names_cannot_be_bound() {
        let e = parse_and_lower("(let ((if 1)) if)").unwrap_err();
        assert!(e.to_string().contains("reserved"), "{e}");
    }

    #[test]
    fn bad_prim_arity_is_an_error() {
        let e = parse_and_lower("(cons 1)").unwrap_err();
        assert!(e.to_string().contains("applied to 1 argument"), "{e}");
    }

    #[test]
    fn apply_desugars_fixed_args() {
        let p = parse_and_lower("(let ((f (lambda (a b c) a)) (l '())) (apply f 1 2 l))").unwrap();
        let apply = p
            .labels()
            .find(|&l| matches!(p.expr(l), ExprKind::Apply(..)))
            .expect("apply node");
        let ExprKind::Apply(_, arg) = p.expr(apply) else {
            unreachable!()
        };
        // Argument is (cons 1 (cons 2 l)).
        assert!(matches!(p.expr(*arg), ExprKind::Prim(PrimOp::Cons, _)));
    }

    #[test]
    fn top_level_marking() {
        let p = parse_and_lower("(define (f x) x) (define n 3) (f n)").unwrap();
        let mut top = 0;
        let mut non_top = 0;
        for i in 0..p.var_count() {
            if p.var(crate::VarId(i as u32)).top_level {
                top += 1;
            } else {
                non_top += 1;
            }
        }
        assert_eq!(top, 2, "f and n are top-level");
        assert!(non_top >= 1, "x is not");
    }

    #[test]
    fn variadic_lambda_forms() {
        let p = parse_and_lower("(lambda args args)").unwrap();
        let ExprKind::Lambda(lam) = p.expr(p.root()) else {
            panic!()
        };
        assert!(lam.params.is_empty());
        assert!(lam.rest.is_some());
        let p = parse_and_lower("(lambda (a b . r) r)").unwrap();
        let ExprKind::Lambda(lam) = p.expr(p.root()) else {
            panic!()
        };
        assert_eq!(lam.params.len(), 2);
        assert!(lam.rest.is_some());
    }

    #[test]
    fn quote_symbols_and_nil() {
        let p = parse_and_lower("'hello").unwrap();
        assert!(matches!(
            p.expr(p.root()),
            ExprKind::Const(Const::Symbol(_))
        ));
        let p = parse_and_lower("'()").unwrap();
        assert!(matches!(p.expr(p.root()), ExprKind::Const(Const::Nil)));
    }
}
