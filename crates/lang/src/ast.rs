//! Arena-based labeled AST.
//!
//! Every subexpression of a program carries a unique [`Label`] (§3.1: "each
//! subterm of a program must have a unique label") and every binding occurrence
//! a unique [`VarId`] ("all free and bound variables in a program are
//! distinct"). Both properties are established by lowering and preserved by
//! the inliner and simplifier, which build fresh programs through the same
//! arena API.

use crate::consts::Const;
use crate::intern::{Interner, Sym};
use crate::prims::PrimOp;
use std::fmt;

/// A label naming one subexpression — an index into the program's expression
/// arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A renamed variable — an index into the program's variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Which form binds a variable. The flow analysis splits contours at uses of
/// `Let`/`Letrec`-bound variables (polymorphic splitting), keyed by the
/// binding expression's label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binder {
    /// Bound by the λ-expression with this label.
    Lambda(Label),
    /// Bound by the `let` expression with this label.
    Let(Label),
    /// Bound by the `letrec` expression with this label.
    Letrec(Label),
}

impl Binder {
    /// The label of the binding expression.
    pub fn label(self) -> Label {
        match self {
            Binder::Lambda(l) | Binder::Let(l) | Binder::Letrec(l) => l,
        }
    }

    /// The same binder kind with its label mapped through `f`.
    pub fn map_label(self, f: impl FnOnce(Label) -> Label) -> Binder {
        match self {
            Binder::Lambda(l) => Binder::Lambda(f(l)),
            Binder::Let(l) => Binder::Let(f(l)),
            Binder::Letrec(l) => Binder::Letrec(f(l)),
        }
    }
}

/// Rebuild an expression with every child [`Label`] mapped through `fl` and
/// every [`VarId`] mapped through `fv`. Used to relocate expressions between
/// arenas (specialization-cache replay, parallel inlining-unit merge).
pub fn map_expr_refs(
    kind: &ExprKind,
    mut fl: impl FnMut(Label) -> Label,
    mut fv: impl FnMut(VarId) -> VarId,
) -> ExprKind {
    match kind {
        ExprKind::Const(c) => ExprKind::Const(*c),
        ExprKind::Var(v) => ExprKind::Var(fv(*v)),
        ExprKind::Prim(op, args) => ExprKind::Prim(*op, args.iter().map(|&l| fl(l)).collect()),
        ExprKind::Call(parts) => ExprKind::Call(parts.iter().map(|&l| fl(l)).collect()),
        ExprKind::Apply(f, a) => ExprKind::Apply(fl(*f), fl(*a)),
        ExprKind::Begin(es) => ExprKind::Begin(es.iter().map(|&l| fl(l)).collect()),
        ExprKind::If(c, t, e) => ExprKind::If(fl(*c), fl(*t), fl(*e)),
        ExprKind::Let(binds, body) => ExprKind::Let(
            binds.iter().map(|&(v, l)| (fv(v), fl(l))).collect(),
            fl(*body),
        ),
        ExprKind::Letrec(binds, body) => ExprKind::Letrec(
            binds.iter().map(|&(v, l)| (fv(v), fl(l))).collect(),
            fl(*body),
        ),
        ExprKind::Lambda(lam) => ExprKind::Lambda(LambdaInfo {
            params: lam.params.iter().map(|&v| fv(v)).collect(),
            rest: lam.rest.map(&mut fv),
            body: fl(lam.body),
        }),
        ExprKind::ClRef(e, n) => ExprKind::ClRef(fl(*e), *n),
    }
}

/// Metadata for one variable binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarInfo {
    /// Source name (for unparsing).
    pub name: Sym,
    /// The binding form.
    pub binder: Binder,
    /// True for variables bound by the outermost `let`/`letrec` chain that
    /// lowering builds from top-level `define`s (including the prelude).
    /// The paper's evaluated configuration inlines only procedures *closed up
    /// to top-level variables* (§4).
    pub top_level: bool,
}

/// A λ-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LambdaInfo {
    /// Required parameters.
    pub params: Vec<VarId>,
    /// Rest parameter for variadic procedures, e.g. `(lambda (f al . args) …)`.
    pub rest: Option<VarId>,
    /// Body expression.
    pub body: Label,
}

impl LambdaInfo {
    /// True when a call with `n` arguments matches this arity.
    pub fn accepts(&self, n: usize) -> bool {
        if self.rest.is_some() {
            n >= self.params.len()
        } else {
            n == self.params.len()
        }
    }
}

/// One core-language expression form.
///
/// This is the paper's Fig. 4 grammar plus the extensions documented in
/// `DESIGN.md`: variadic λ, `apply`, vectors (folded into [`PrimOp`]), and
/// the target-language `cl-ref` form of §3.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// A constant `c`.
    Const(Const),
    /// A variable reference `x`. The *use label* that polymorphic splitting
    /// substitutes into contours is this node's own label.
    Var(VarId),
    /// A primitive application `(p e1 … en)`.
    Prim(PrimOp, Vec<Label>),
    /// A procedure call `(call e0 e1 … en)`; element 0 is the operator.
    Call(Vec<Label>),
    /// `(apply e0 e1)` — call `e0` with the elements of list `e1`.
    Apply(Label, Label),
    /// `(begin e1 … en)`, non-empty.
    Begin(Vec<Label>),
    /// `(if e1 e2 e3)`.
    If(Label, Label, Label),
    /// `(let ((x e) …) body)`.
    Let(Vec<(VarId, Label)>, Label),
    /// `(letrec ((y f) …) body)` — every right-hand side is a `Lambda`.
    Letrec(Vec<(VarId, Label)>, Label),
    /// `(lambda (x … [. r]) body)`.
    Lambda(LambdaInfo),
    /// `(cl-ref e n)` — the n-th captured free variable of closure `e`
    /// (target language of §3.5; produced only by the inliner in open mode).
    ClRef(Label, u32),
}

/// A closed program: an expression arena, a variable table, and a root.
///
/// # Examples
///
/// ```
/// use fdi_lang::parse_and_lower;
///
/// let p = parse_and_lower("((lambda (x) x) 1)").unwrap();
/// assert!(matches!(p.expr(p.root()), fdi_lang::ExprKind::Call(_)));
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    exprs: Vec<ExprKind>,
    vars: Vec<VarInfo>,
    interner: Interner,
    root: Label,
    /// Pinned capture layouts: the target language of §3.5 annotates each
    /// λ with an ordered free-variable list `[z1 … zm]` so `cl-ref` indices
    /// stay meaningful under later transformation. `None` (absent) means the
    /// layout is the λ's first-occurrence free-variable order.
    pinned_captures: std::collections::HashMap<Label, Vec<VarId>>,
}

impl Program {
    /// Creates an empty program (no expressions yet; the root defaults to the
    /// first expression added).
    pub fn new(interner: Interner) -> Program {
        Program {
            exprs: Vec::new(),
            vars: Vec::new(),
            interner,
            root: Label(0),
            pinned_captures: std::collections::HashMap::new(),
        }
    }

    /// Pins the capture layout of the λ at `label` (the `[z1 … zm]`
    /// annotation of §3.5's target language). `cl-ref` indices into this λ
    /// refer to positions in this list; the VM lays captures out as this
    /// list followed by any remaining free variables.
    pub fn pin_captures(&mut self, label: Label, vars: Vec<VarId>) {
        self.pinned_captures.insert(label, vars);
    }

    /// The pinned capture layout of a λ, if any.
    pub fn pinned_captures(&self, label: Label) -> Option<&[VarId]> {
        self.pinned_captures.get(&label).map(Vec::as_slice)
    }

    /// All variables appearing in pinned capture lists (they must stay
    /// materialized: the simplifier may not substitute them away).
    pub fn pinned_capture_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.pinned_captures.values().flatten().copied()
    }

    /// Every pinned capture layout, keyed by λ label. Iteration order is
    /// unspecified; callers that merge layouts into another program get the
    /// same *map contents* regardless of order.
    pub fn pinned_captures_all(&self) -> impl Iterator<Item = (Label, &[VarId])> {
        self.pinned_captures
            .iter()
            .map(|(&l, vs)| (l, vs.as_slice()))
    }

    /// The root expression.
    pub fn root(&self) -> Label {
        self.root
    }

    /// Sets the root expression.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn set_root(&mut self, label: Label) {
        assert!((label.0 as usize) < self.exprs.len(), "root out of range");
        self.root = label;
    }

    /// Adds an expression, returning its fresh label.
    pub fn add_expr(&mut self, kind: ExprKind) -> Label {
        let l = Label(self.exprs.len() as u32);
        self.exprs.push(kind);
        l
    }

    /// Overwrites an expression in place. Used by passes that must allocate
    /// a binding form's label before lowering its children (the label is the
    /// binder recorded in each [`VarInfo`]).
    pub fn set_expr(&mut self, label: Label, kind: ExprKind) {
        self.exprs[label.0 as usize] = kind;
    }

    /// Adds a variable binding, returning its fresh id.
    pub fn add_var(&mut self, info: VarInfo) -> VarId {
        let v = VarId(self.vars.len() as u32);
        self.vars.push(info);
        v
    }

    /// Looks up an expression.
    pub fn expr(&self, label: Label) -> &ExprKind {
        &self.exprs[label.0 as usize]
    }

    /// Looks up a variable.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.0 as usize]
    }

    /// Patches a variable's binder (used when a transform re-parents a
    /// binding, e.g. the loop `letrec` the inliner introduces).
    pub fn set_var_binder(&mut self, v: VarId, binder: Binder) {
        self.vars[v.0 as usize].binder = binder;
    }

    /// The variable's source name.
    pub fn var_name(&self, v: VarId) -> &str {
        self.interner.name(self.vars[v.0 as usize].name)
    }

    /// Number of expressions in the arena (labels are `0..count`).
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Number of variables (ids are `0..count`).
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Iterates over all labels in the arena. Note that transforms may leave
    /// unreachable (dead) nodes in the arena; use [`Program::reachable`] for
    /// the live set.
    pub fn labels(&self) -> impl Iterator<Item = Label> {
        (0..self.exprs.len() as u32).map(Label)
    }

    /// The string interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (for transforms that invent names).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Calls `f` on each direct child label of `label`, in evaluation order.
    pub fn for_each_child(&self, label: Label, mut f: impl FnMut(Label)) {
        match self.expr(label) {
            ExprKind::Const(_) | ExprKind::Var(_) => {}
            ExprKind::Prim(_, args) => args.iter().copied().for_each(&mut f),
            ExprKind::Call(parts) | ExprKind::Begin(parts) => {
                parts.iter().copied().for_each(&mut f)
            }
            ExprKind::Apply(e0, e1) => {
                f(*e0);
                f(*e1);
            }
            ExprKind::If(c, t, e) => {
                f(*c);
                f(*t);
                f(*e);
            }
            ExprKind::Let(bindings, body) | ExprKind::Letrec(bindings, body) => {
                bindings.iter().for_each(|&(_, e)| f(e));
                f(*body);
            }
            ExprKind::Lambda(lam) => f(lam.body),
            ExprKind::ClRef(e, _) => f(*e),
        }
    }

    /// Labels reachable from the root, in preorder.
    pub fn reachable(&self) -> Vec<Label> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        let mut seen = vec![false; self.exprs.len()];
        while let Some(l) = stack.pop() {
            if std::mem::replace(&mut seen[l.0 as usize], true) {
                continue;
            }
            out.push(l);
            let mut kids = Vec::new();
            self.for_each_child(l, |c| kids.push(c));
            // Push reversed so preorder pops left-to-right.
            stack.extend(kids.into_iter().rev());
        }
        out
    }

    /// Size of the whole program under the paper's code-size metric
    /// (see [`crate::expr_size`]).
    pub fn size(&self) -> usize {
        crate::size::subtree_size(self, self.root)
    }

    /// Number of source lines this program would occupy when pretty-printed —
    /// the "Lines" column of Table 1.
    pub fn line_count(&self) -> usize {
        fdi_sexpr::pretty(&crate::unparse::unparse(self))
            .lines()
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        let mut interner = Interner::new();
        let x = interner.intern("x");
        let mut p = Program::new(interner);
        let lam_label_guess = Label(2); // the lambda will be the third node
        let v = p.add_var(VarInfo {
            name: x,
            binder: Binder::Lambda(lam_label_guess),
            top_level: false,
        });
        let body = p.add_expr(ExprKind::Var(v));
        let one = p.add_expr(ExprKind::Const(Const::Int(1)));
        let lam = p.add_expr(ExprKind::Lambda(LambdaInfo {
            params: vec![v],
            rest: None,
            body,
        }));
        assert_eq!(lam, lam_label_guess);
        let call = p.add_expr(ExprKind::Call(vec![lam, one]));
        p.set_root(call);
        p
    }

    #[test]
    fn arena_roundtrip() {
        let p = tiny();
        assert_eq!(p.expr_count(), 4);
        assert_eq!(p.var_count(), 1);
        assert!(matches!(p.expr(p.root()), ExprKind::Call(parts) if parts.len() == 2));
        assert_eq!(p.var_name(VarId(0)), "x");
    }

    #[test]
    fn children_in_eval_order() {
        let p = tiny();
        let mut kids = Vec::new();
        p.for_each_child(p.root(), |c| kids.push(c));
        assert_eq!(kids, vec![Label(2), Label(1)]);
    }

    #[test]
    fn reachable_is_preorder_and_complete() {
        let p = tiny();
        let r = p.reachable();
        assert_eq!(r, vec![Label(3), Label(2), Label(0), Label(1)]);
    }

    #[test]
    fn lambda_arity() {
        let fixed = LambdaInfo {
            params: vec![VarId(0), VarId(1)],
            rest: None,
            body: Label(0),
        };
        assert!(fixed.accepts(2));
        assert!(!fixed.accepts(1));
        assert!(!fixed.accepts(3));
        let var = LambdaInfo {
            params: vec![VarId(0)],
            rest: Some(VarId(1)),
            body: Label(0),
        };
        assert!(var.accepts(1));
        assert!(var.accepts(4));
        assert!(!var.accepts(0));
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn set_root_validates() {
        let mut p = Program::new(Interner::new());
        p.set_root(Label(0));
    }
}
