//! Macro expansion from the R4RS-like surface syntax to the core forms of
//! the paper's Fig. 4 grammar.
//!
//! Derived forms (`define`, named `let`, `let*`, `cond`, `case`, `and`, `or`,
//! `when`, `unless`, `do`, depth-1 `quasiquote`) expand into applications of
//! the core forms. Compound `quote` literals are hoisted to top-level
//! bindings so that a literal inside a loop is allocated once, matching the
//! storage behaviour of compiled Scheme.

use fdi_sexpr::Datum;
use std::fmt;

/// An error during macro expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expand error: {}", self.message)
    }
}

impl std::error::Error for ExpandError {}

fn err<T>(message: impl Into<String>) -> Result<T, ExpandError> {
    Err(ExpandError {
        message: message.into(),
    })
}

fn sym(s: &str) -> Datum {
    Datum::sym(s)
}

fn list(items: Vec<Datum>) -> Datum {
    Datum::list(items)
}

/// The core datum `(unspecified)` — lowered to `Const::Unspecified`.
fn unspecified() -> Datum {
    list(vec![sym("unspecified")])
}

/// Expands a whole top-level program into one core expression.
///
/// Top-level `define`s become nested `let`/`letrec` scopes: maximal runs of
/// consecutive procedure definitions form one (mutually recursive) `letrec`;
/// value definitions form `let`s; interleaved expressions are sequenced with
/// `begin`. The final value is the last top-level expression.
///
/// # Errors
///
/// Returns [`ExpandError`] for malformed special forms or unsupported syntax
/// (`set!`, nested `quasiquote`).
///
/// # Examples
///
/// ```
/// let data = fdi_sexpr::parse("(define (f x) x) (f 1)").unwrap();
/// let core = fdi_lang::expand_program(&data).unwrap();
/// assert!(core.is_form("letrec"));
/// ```
pub fn expand_program(forms: &[Datum]) -> Result<Datum, ExpandError> {
    let mut exp = Expander::default();
    let mut items = Vec::new();
    for form in forms {
        items.push(exp.expand_top(form)?);
    }
    // Prepend hoisted literal bindings as value definitions.
    let mut all = Vec::new();
    for (name, build) in std::mem::take(&mut exp.hoisted) {
        all.push(Item::Define {
            name,
            value: build,
            is_lambda: false,
        });
    }
    all.extend(items);
    check_define_depth(&all)?;
    Ok(assemble_body(all))
}

/// Maximum number of definitions one body may chain.
///
/// `assemble_body` nests one `let`/`letrec` per definition (runs of lambda
/// defines collapse into a shared `letrec`), so a long define sequence
/// becomes a deep core form without ever re-entering the recursive
/// expander. Capping it here keeps every downstream recursive pass — and
/// the eventual `Drop` of the assembled tree — within stack bounds.
const MAX_BODY_DEFINES: usize = 1_000;

/// Rejects bodies whose assembled form would nest too deeply.
fn check_define_depth(items: &[Item]) -> Result<(), ExpandError> {
    let defines = items
        .iter()
        .filter(|i| matches!(i, Item::Define { .. }))
        .count();
    if defines > MAX_BODY_DEFINES {
        return err(format!(
            "body chains {defines} definitions; the assembled program would nest \
             deeper than {MAX_BODY_DEFINES} levels"
        ));
    }
    Ok(())
}

/// Expands a single expression (no top-level defines). Mostly for tests.
///
/// # Errors
///
/// Returns [`ExpandError`] on malformed input.
pub fn expand_expr_standalone(d: &Datum) -> Result<Datum, ExpandError> {
    expand_program(std::slice::from_ref(d))
}

/// One processed top-level or body item.
enum Item {
    Define {
        name: String,
        value: Datum,
        is_lambda: bool,
    },
    Expr(Datum),
}

/// Folds a define/expression sequence into nested `letrec`/`let`/`begin`.
fn assemble_body(items: Vec<Item>) -> Datum {
    // Walk backwards, accumulating the continuation expression.
    let mut rest: Option<Datum> = None;
    let mut i = items.len();
    while i > 0 {
        i -= 1;
        match &items[i] {
            Item::Expr(e) => {
                rest = Some(match rest {
                    None => e.clone(),
                    Some(r) => match r {
                        // Flatten nested begins as we build them.
                        Datum::List(mut parts) if parts[0].as_sym() == Some("begin") => {
                            parts.insert(1, e.clone());
                            Datum::List(parts)
                        }
                        r => list(vec![sym("begin"), e.clone(), r]),
                    },
                });
            }
            Item::Define {
                is_lambda: true, ..
            } => {
                // Collect the maximal run of consecutive lambda defines.
                let mut start = i;
                while start > 0 {
                    if let Item::Define {
                        is_lambda: true, ..
                    } = items[start - 1]
                    {
                        start -= 1;
                    } else {
                        break;
                    }
                }
                let bindings: Vec<Datum> = items[start..=i]
                    .iter()
                    .map(|it| match it {
                        Item::Define { name, value, .. } => list(vec![sym(name), value.clone()]),
                        Item::Expr(_) => unreachable!("run contains only defines"),
                    })
                    .collect();
                let body = rest.unwrap_or(Datum::Bool(true));
                rest = Some(list(vec![sym("letrec"), list(bindings), body]));
                i = start;
            }
            Item::Define {
                name,
                value,
                is_lambda: false,
            } => {
                let body = rest.unwrap_or(Datum::Bool(true));
                rest = Some(list(vec![
                    sym("let"),
                    list(vec![list(vec![sym(name), value.clone()])]),
                    body,
                ]));
            }
        }
    }
    rest.unwrap_or(Datum::Bool(true))
}

/// Maximum expansion recursion depth.
///
/// Matches the reader's nesting cap: expansion recurses subexpression-wise,
/// so parser-legal input keeps it below this bound; anything deeper fails
/// with an [`ExpandError`] instead of overflowing the stack.
const MAX_EXPAND_DEPTH: usize = 400;

/// Maximum number of elements a width-folding derived form may carry.
///
/// `let*`, `cond`, `and`, `or`, `case`, quasiquote templates, and hoisted
/// compound literals each fold a flat sequence into one nested core form,
/// so input *width* becomes output *depth* — past what the reader's nesting
/// cap admits. Capping the width bounds the depth every downstream
/// recursive pass (and the eventual `Drop` of the tree) must tolerate; the
/// value is sized so those descents fit a 2 MiB thread stack (the
/// test-harness default).
const MAX_EXPAND_WIDTH: usize = 512;

/// Rejects a folding form whose expansion would nest deeper than the cap.
fn check_width(count: usize, what: &str) -> Result<(), ExpandError> {
    if count > MAX_EXPAND_WIDTH {
        return err(format!(
            "{what} folds {count} elements; the expansion would nest deeper \
             than {MAX_EXPAND_WIDTH} levels"
        ));
    }
    Ok(())
}

#[derive(Default)]
struct Expander {
    counter: u32,
    hoisted: Vec<(String, Datum)>,
    depth: usize,
}

impl Expander {
    fn fresh(&mut self, hint: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("%{hint}{n}")
    }

    fn expand_top(&mut self, d: &Datum) -> Result<Item, ExpandError> {
        if d.is_form("define") {
            let (name, value, is_lambda) = self.expand_define(d.as_list().unwrap())?;
            Ok(Item::Define {
                name,
                value,
                is_lambda,
            })
        } else {
            Ok(Item::Expr(self.expand(d)?))
        }
    }

    /// `(define (f . args) body…)` or `(define x e)` → (name, value, is_lambda).
    fn expand_define(&mut self, parts: &[Datum]) -> Result<(String, Datum, bool), ExpandError> {
        match parts {
            [_, Datum::Sym(name), value] => {
                let v = self.expand(value)?;
                let is_lambda = v.is_form("lambda");
                Ok((name.clone(), v, is_lambda))
            }
            [_, Datum::Sym(name)] => Ok((name.clone(), unspecified(), false)),
            [_, header, body @ ..] if !body.is_empty() => {
                // (define (f a b . r) body...) — the header may be improper.
                let (name, formals) = match header {
                    Datum::List(hs) => {
                        let name = hs[0]
                            .as_sym()
                            .ok_or_else(|| ExpandError {
                                message: "define: procedure name must be a symbol".into(),
                            })?
                            .to_string();
                        (name, Datum::list(hs[1..].to_vec()))
                    }
                    Datum::Improper(hs, tail) => {
                        let name = hs[0]
                            .as_sym()
                            .ok_or_else(|| ExpandError {
                                message: "define: procedure name must be a symbol".into(),
                            })?
                            .to_string();
                        let rest = hs[1..].to_vec();
                        let formals = if rest.is_empty() {
                            (**tail).clone()
                        } else {
                            Datum::Improper(rest, tail.clone())
                        };
                        (name, formals)
                    }
                    _ => return err("define: bad header"),
                };
                let lam = self.expand_lambda(&formals, body)?;
                Ok((name, lam, true))
            }
            _ => err("define: bad syntax"),
        }
    }

    /// Body sequence with internal defines → one expression.
    fn expand_body(&mut self, body: &[Datum]) -> Result<Datum, ExpandError> {
        if body.is_empty() {
            return err("empty body");
        }
        let mut items = Vec::new();
        for d in body {
            items.push(self.expand_top(d)?);
        }
        if let Some(Item::Define { .. }) = items.last() {
            return err("body ends with a definition");
        }
        check_define_depth(&items)?;
        Ok(assemble_body(items))
    }

    fn expand_lambda(&mut self, formals: &Datum, body: &[Datum]) -> Result<Datum, ExpandError> {
        let body = self.expand_body(body)?;
        Ok(list(vec![sym("lambda"), formals.clone(), body]))
    }

    fn expand_all(&mut self, ds: &[Datum]) -> Result<Vec<Datum>, ExpandError> {
        ds.iter().map(|d| self.expand(d)).collect()
    }

    /// Hoists a compound literal, returning a variable reference.
    fn hoist_literal(&mut self, d: &Datum) -> Result<Datum, ExpandError> {
        let name = self.fresh("lit");
        let build = build_literal(d)?;
        self.hoisted.push((name.clone(), build));
        Ok(sym(&name))
    }

    fn expand_quote(&mut self, d: &Datum) -> Result<Datum, ExpandError> {
        Ok(match d {
            Datum::List(_) | Datum::Improper(..) | Datum::Vector(_) => self.hoist_literal(d)?,
            Datum::Nil | Datum::Sym(_) => list(vec![sym("quote"), d.clone()]),
            atom => atom.clone(),
        })
    }

    fn expand(&mut self, d: &Datum) -> Result<Datum, ExpandError> {
        if self.depth >= MAX_EXPAND_DEPTH {
            return err(format!(
                "expression nests deeper than {MAX_EXPAND_DEPTH} levels during expansion"
            ));
        }
        self.depth += 1;
        let result = self.expand_inner(d);
        self.depth -= 1;
        result
    }

    fn expand_inner(&mut self, d: &Datum) -> Result<Datum, ExpandError> {
        let Some(parts) = d.as_list() else {
            // Atoms self-evaluate; symbols are variable references.
            return match d {
                Datum::Improper(..) => err(format!("bad expression: {d}")),
                other => Ok(other.clone()),
            };
        };
        if parts.is_empty() {
            return err("() is not an expression");
        }
        let head = parts[0].as_sym();
        match head {
            Some("quote") => {
                if parts.len() != 2 {
                    return err("quote: bad syntax");
                }
                self.expand_quote(&parts[1])
            }
            Some("quasiquote") => {
                if parts.len() != 2 {
                    return err("quasiquote: bad syntax");
                }
                self.expand_quasi(&parts[1])
            }
            Some("unquote") | Some("unquote-splicing") => err("unquote outside quasiquote"),
            Some("lambda") => {
                if parts.len() < 3 {
                    return err("lambda: bad syntax");
                }
                self.expand_lambda(&parts[1], &parts[2..])
            }
            Some("if") => match parts.len() {
                3 => Ok(list(vec![
                    sym("if"),
                    self.expand(&parts[1])?,
                    self.expand(&parts[2])?,
                    unspecified(),
                ])),
                4 => Ok(list(vec![
                    sym("if"),
                    self.expand(&parts[1])?,
                    self.expand(&parts[2])?,
                    self.expand(&parts[3])?,
                ])),
                _ => err("if: bad syntax"),
            },
            Some("begin") => {
                if parts.len() == 1 {
                    return Ok(unspecified());
                }
                let body = self.expand_all(&parts[1..])?;
                if body.len() == 1 {
                    Ok(body.into_iter().next().unwrap())
                } else {
                    let mut items = vec![sym("begin")];
                    items.extend(body);
                    Ok(list(items))
                }
            }
            Some("let") => self.expand_let(parts),
            Some("let*") => self.expand_let_star(parts),
            Some("letrec") | Some("letrec*") => self.expand_letrec(parts),
            Some("cond") => self.expand_cond(&parts[1..]),
            Some("case") => self.expand_case(parts),
            Some("and") => self.expand_and(&parts[1..]),
            Some("or") => self.expand_or(&parts[1..]),
            Some("when") => {
                if parts.len() < 3 {
                    return err("when: bad syntax");
                }
                let mut body = vec![sym("begin")];
                body.extend(self.expand_all(&parts[2..])?);
                Ok(list(vec![
                    sym("if"),
                    self.expand(&parts[1])?,
                    if body.len() == 2 {
                        body.pop().unwrap()
                    } else {
                        list(body)
                    },
                    unspecified(),
                ]))
            }
            Some("unless") => {
                if parts.len() < 3 {
                    return err("unless: bad syntax");
                }
                let mut body = vec![sym("begin")];
                body.extend(self.expand_all(&parts[2..])?);
                Ok(list(vec![
                    sym("if"),
                    self.expand(&parts[1])?,
                    unspecified(),
                    if body.len() == 2 {
                        body.pop().unwrap()
                    } else {
                        list(body)
                    },
                ]))
            }
            Some("do") => self.expand_do(parts),
            Some("set!") => err("set! is not in the core language; use pairs or vectors"),
            Some("define") => err("define in expression position"),
            Some("unspecified") if parts.len() == 1 => Ok(unspecified()),
            _ => {
                // Application (or a core form like apply/cl-ref, which lowering
                // distinguishes by head symbol).
                Ok(list(self.expand_all(parts)?))
            }
        }
    }

    fn expand_let(&mut self, parts: &[Datum]) -> Result<Datum, ExpandError> {
        // Named let: (let loop ((v init) ...) body...)
        if parts.len() >= 4 && parts[1].as_sym().is_some() {
            let name = parts[1].as_sym().unwrap();
            let bindings = parts[2].as_list().ok_or_else(|| ExpandError {
                message: "named let: bad bindings".into(),
            })?;
            let mut vars = Vec::new();
            let mut inits = Vec::new();
            for b in bindings {
                let pair = b
                    .as_list()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| ExpandError {
                        message: "named let: bad binding".into(),
                    })?;
                vars.push(pair[0].clone());
                inits.push(pair[1].clone());
            }
            let lam = self.expand_lambda(&Datum::list(vars), &parts[3..])?;
            let mut call = vec![sym(name)];
            call.extend(self.expand_all(&inits)?);
            return Ok(list(vec![
                sym("letrec"),
                list(vec![list(vec![sym(name), lam])]),
                list(call),
            ]));
        }
        if parts.len() < 3 {
            return err("let: bad syntax");
        }
        let bindings = parts[1].as_list().ok_or_else(|| ExpandError {
            message: "let: bad bindings".into(),
        })?;
        let mut out_binds = Vec::new();
        for b in bindings {
            let pair = b
                .as_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ExpandError {
                    message: format!("let: bad binding {b}"),
                })?;
            if pair[0].as_sym().is_none() {
                return err("let: binding name must be a symbol");
            }
            out_binds.push(list(vec![pair[0].clone(), self.expand(&pair[1])?]));
        }
        let body = self.expand_body(&parts[2..])?;
        if out_binds.is_empty() {
            return Ok(body);
        }
        Ok(list(vec![sym("let"), list(out_binds), body]))
    }

    fn expand_let_star(&mut self, parts: &[Datum]) -> Result<Datum, ExpandError> {
        if parts.len() < 3 {
            return err("let*: bad syntax");
        }
        let bindings = parts[1].as_list().ok_or_else(|| ExpandError {
            message: "let*: bad bindings".into(),
        })?;
        check_width(bindings.len(), "let*")?;
        // (let* ((a x) (b y)) body) → (let ((a x)) (let ((b y)) body)),
        // folded iteratively: re-entering the expander once per binding
        // would turn width into recursion depth.
        let mut expanded = Vec::with_capacity(bindings.len());
        for b in bindings {
            let pair = b
                .as_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ExpandError {
                    message: format!("let*: bad binding {b}"),
                })?;
            if pair[0].as_sym().is_none() {
                return err("let*: binding name must be a symbol");
            }
            expanded.push((pair[0].clone(), self.expand(&pair[1])?));
        }
        let mut acc = self.expand_body(&parts[2..])?;
        for (name, rhs) in expanded.into_iter().rev() {
            acc = list(vec![sym("let"), list(vec![list(vec![name, rhs])]), acc]);
        }
        Ok(acc)
    }

    fn expand_letrec(&mut self, parts: &[Datum]) -> Result<Datum, ExpandError> {
        if parts.len() < 3 {
            return err("letrec: bad syntax");
        }
        let bindings = parts[1].as_list().ok_or_else(|| ExpandError {
            message: "letrec: bad bindings".into(),
        })?;
        let mut out_binds = Vec::new();
        for b in bindings {
            let pair = b
                .as_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ExpandError {
                    message: format!("letrec: bad binding {b}"),
                })?;
            let rhs = self.expand(&pair[1])?;
            if !rhs.is_form("lambda") {
                return err(format!(
                    "letrec: right-hand side of {} must be a lambda",
                    pair[0]
                ));
            }
            out_binds.push(list(vec![pair[0].clone(), rhs]));
        }
        let body = self.expand_body(&parts[2..])?;
        if out_binds.is_empty() {
            return Ok(body);
        }
        Ok(list(vec![sym("letrec"), list(out_binds), body]))
    }

    fn expand_cond(&mut self, clauses: &[Datum]) -> Result<Datum, ExpandError> {
        check_width(clauses.len(), "cond")?;
        // Folded from the last clause backwards so width stays iteration,
        // not recursion depth.
        let mut acc: Option<Datum> = None;
        for (idx, clause) in clauses.iter().enumerate().rev() {
            let parts = clause.as_list().ok_or_else(|| ExpandError {
                message: format!("cond: bad clause {clause}"),
            })?;
            if parts.is_empty() {
                return err("cond: empty clause");
            }
            if parts[0].as_sym() == Some("else") {
                if idx + 1 != clauses.len() {
                    return err("cond: else clause must be last");
                }
                acc = Some(self.expand_body(&parts[1..])?);
                continue;
            }
            let test = self.expand(&parts[0])?;
            let rest_expr = acc.take().unwrap_or_else(unspecified);
            acc = Some(match parts.len() {
                1 => {
                    // (test) — the test's value is the result when true.
                    let t = self.fresh("t");
                    list(vec![
                        sym("let"),
                        list(vec![list(vec![sym(&t), test])]),
                        list(vec![sym("if"), sym(&t), sym(&t), rest_expr]),
                    ])
                }
                3 if parts[1].as_sym() == Some("=>") => {
                    let t = self.fresh("t");
                    let f = self.expand(&parts[2])?;
                    list(vec![
                        sym("let"),
                        list(vec![list(vec![sym(&t), test])]),
                        list(vec![sym("if"), sym(&t), list(vec![f, sym(&t)]), rest_expr]),
                    ])
                }
                _ => {
                    let body = self.expand_body(&parts[1..])?;
                    list(vec![sym("if"), test, body, rest_expr])
                }
            });
        }
        Ok(acc.unwrap_or_else(unspecified))
    }

    fn expand_case(&mut self, parts: &[Datum]) -> Result<Datum, ExpandError> {
        if parts.len() < 3 {
            return err("case: bad syntax");
        }
        check_width(parts.len() - 2, "case")?;
        let key = self.expand(&parts[1])?;
        let k = self.fresh("k");
        let mut arms: Option<Datum> = None;
        for clause in parts[2..].iter().rev() {
            let cparts = clause.as_list().ok_or_else(|| ExpandError {
                message: format!("case: bad clause {clause}"),
            })?;
            if cparts.is_empty() {
                return err("case: empty clause");
            }
            let body = self.expand_body(&cparts[1..])?;
            if cparts[0].as_sym() == Some("else") {
                if arms.is_some() {
                    return err("case: else clause must be last");
                }
                arms = Some(body);
                continue;
            }
            let datums = cparts[0].as_list().ok_or_else(|| ExpandError {
                message: "case: clause datums must be a list".into(),
            })?;
            check_width(datums.len(), "case clause")?;
            let mut test: Option<Datum> = None;
            for datum in datums.iter().rev() {
                let cmp = list(vec![sym("eqv?"), sym(&k), self.expand_quote(datum)?]);
                test = Some(match test {
                    None => cmp,
                    Some(t) => list(vec![sym("if"), cmp, Datum::Bool(true), t]),
                });
            }
            let test = test.unwrap_or(Datum::Bool(false));
            let rest = arms.unwrap_or_else(unspecified);
            arms = Some(list(vec![sym("if"), test, body, rest]));
        }
        Ok(list(vec![
            sym("let"),
            list(vec![list(vec![sym(&k), key])]),
            arms.unwrap_or_else(unspecified),
        ]))
    }

    fn expand_and(&mut self, args: &[Datum]) -> Result<Datum, ExpandError> {
        check_width(args.len(), "and")?;
        let mut exprs = self.expand_all(args)?;
        let Some(mut acc) = exprs.pop() else {
            return Ok(Datum::Bool(true));
        };
        for e in exprs.into_iter().rev() {
            acc = list(vec![sym("if"), e, acc, Datum::Bool(false)]);
        }
        Ok(acc)
    }

    fn expand_or(&mut self, args: &[Datum]) -> Result<Datum, ExpandError> {
        check_width(args.len(), "or")?;
        let mut exprs = self.expand_all(args)?;
        let Some(mut acc) = exprs.pop() else {
            return Ok(Datum::Bool(false));
        };
        for e in exprs.into_iter().rev() {
            let t = self.fresh("t");
            acc = list(vec![
                sym("let"),
                list(vec![list(vec![sym(&t), e])]),
                list(vec![sym("if"), sym(&t), sym(&t), acc]),
            ]);
        }
        Ok(acc)
    }

    /// `(do ((v init step)…) (test res…) body…)` → a `letrec` loop.
    fn expand_do(&mut self, parts: &[Datum]) -> Result<Datum, ExpandError> {
        if parts.len() < 3 {
            return err("do: bad syntax");
        }
        let specs = parts[1].as_list().ok_or_else(|| ExpandError {
            message: "do: bad variable specs".into(),
        })?;
        let mut vars = Vec::new();
        let mut inits = Vec::new();
        let mut steps = Vec::new();
        for spec in specs {
            let sp = spec.as_list().ok_or_else(|| ExpandError {
                message: format!("do: bad spec {spec}"),
            })?;
            match sp {
                [v, init] => {
                    vars.push(v.clone());
                    inits.push(init.clone());
                    steps.push(v.clone());
                }
                [v, init, step] => {
                    vars.push(v.clone());
                    inits.push(init.clone());
                    steps.push(step.clone());
                }
                _ => return err("do: bad spec"),
            }
        }
        let exit = parts[2].as_list().ok_or_else(|| ExpandError {
            message: "do: bad exit clause".into(),
        })?;
        if exit.is_empty() {
            return err("do: empty exit clause");
        }
        let loop_name = self.fresh("do-loop");
        let mut recur = vec![sym(&loop_name)];
        recur.extend(steps);
        let mut loop_body: Vec<Datum> = parts[3..].to_vec();
        loop_body.push(list(recur));
        let mut begin = vec![sym("begin")];
        begin.extend(loop_body);
        let result = if exit.len() == 1 {
            unspecified()
        } else {
            let mut b = vec![sym("begin")];
            b.extend_from_slice(&exit[1..]);
            list(b)
        };
        let lam_body = list(vec![sym("if"), exit[0].clone(), result, list(begin)]);
        let lam = list(vec![sym("lambda"), Datum::list(vars), lam_body]);
        let mut call = vec![sym(&loop_name)];
        call.extend(inits);
        let rewritten = list(vec![
            sym("letrec"),
            list(vec![list(vec![sym(&loop_name), lam])]),
            list(call),
        ]);
        self.expand(&rewritten)
    }

    /// Depth-1 quasiquote.
    fn expand_quasi(&mut self, d: &Datum) -> Result<Datum, ExpandError> {
        match d {
            Datum::List(parts) if parts[0].as_sym() == Some("unquote") && parts.len() == 2 => {
                self.expand(&parts[1])
            }
            Datum::List(parts) if parts[0].as_sym() == Some("quasiquote") => {
                err("nested quasiquote is not supported")
            }
            Datum::List(parts) => self.expand_quasi_list(parts, &Datum::Nil),
            Datum::Improper(parts, tail) => self.expand_quasi_list(parts, tail),
            Datum::Vector(items) => {
                let mut out = vec![sym("vector")];
                for item in items {
                    out.push(self.expand_quasi(item)?);
                }
                Ok(list(out))
            }
            atom => self.expand_quote(atom),
        }
    }

    fn expand_quasi_list(&mut self, parts: &[Datum], tail: &Datum) -> Result<Datum, ExpandError> {
        check_width(parts.len(), "quasiquote template")?;
        let mut acc = match tail {
            Datum::Nil => list(vec![sym("quote"), Datum::Nil]),
            t => self.expand_quasi(t)?,
        };
        for part in parts.iter().rev() {
            if let Some(ps) = part.as_list() {
                if !ps.is_empty() && ps[0].as_sym() == Some("unquote-splicing") {
                    if ps.len() != 2 {
                        return err("unquote-splicing: bad syntax");
                    }
                    let spliced = self.expand(&ps[1])?;
                    acc = list(vec![sym("append"), spliced, acc]);
                    continue;
                }
            }
            acc = list(vec![sym("cons"), self.expand_quasi(part)?, acc]);
        }
        Ok(acc)
    }
}

/// Builds the construction expression for a hoisted compound literal.
///
/// Fails when a quoted list is wide enough that its cons chain would nest
/// past [`MAX_EXPAND_WIDTH`] (width becomes depth in the built expression).
fn build_literal(d: &Datum) -> Result<Datum, ExpandError> {
    Ok(match d {
        Datum::List(items) => {
            check_width(items.len(), "quoted list")?;
            let mut acc = list(vec![sym("quote"), Datum::Nil]);
            for item in items.iter().rev() {
                acc = list(vec![sym("cons"), build_literal(item)?, acc]);
            }
            acc
        }
        Datum::Improper(items, tail) => {
            check_width(items.len(), "quoted list")?;
            let mut acc = build_literal(tail)?;
            for item in items.iter().rev() {
                acc = list(vec![sym("cons"), build_literal(item)?, acc]);
            }
            acc
        }
        Datum::Vector(items) => {
            let mut out = vec![sym("vector")];
            for item in items {
                out.push(build_literal(item)?);
            }
            list(out)
        }
        Datum::Sym(_) | Datum::Nil => list(vec![sym("quote"), d.clone()]),
        atom => atom.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_sexpr::{parse, parse_one};

    fn expand_str(src: &str) -> String {
        let data = parse(src).unwrap();
        expand_program(&data).unwrap().to_string()
    }

    #[test]
    fn defines_group_into_letrec() {
        let out = expand_str("(define (f x) (g x)) (define (g x) x) (f 1)");
        assert!(out.starts_with("(letrec ((f (lambda (x)"), "{out}");
        assert!(out.contains("(g (lambda (x) x))"), "{out}");
    }

    #[test]
    fn value_define_becomes_let() {
        let out = expand_str("(define n 10) (+ n 1)");
        assert_eq!(out, "(let ((n 10)) (+ n 1))");
    }

    #[test]
    fn interleaved_expressions_are_sequenced() {
        let out = expand_str("(display 1) (define x 2) x");
        assert_eq!(out, "(begin (display 1) (let ((x 2)) x))");
    }

    #[test]
    fn cond_expands_to_ifs() {
        let out = expand_str("(cond ((= x 1) 'a) (else 'b))");
        assert_eq!(out, "(if (= x 1) (quote a) (quote b))");
    }

    #[test]
    fn cond_arrow_and_test_only() {
        let out = expand_str("(cond (x => f) (y))");
        assert!(out.contains("(f %t"), "{out}");
        assert!(out.contains("(let ((%t"), "{out}");
    }

    #[test]
    fn case_expands_to_eqv_dispatch() {
        let out = expand_str("(case m ((open) 1) ((close shut) 2) (else 3))");
        assert!(out.contains("(eqv? %k0 (quote open))"), "{out}");
        assert!(out.contains("(eqv? %k0 (quote shut))"), "{out}");
        assert!(out.ends_with("3)))"), "{out}");
    }

    #[test]
    fn and_or_expand() {
        assert_eq!(expand_str("(and)"), "#t");
        assert_eq!(expand_str("(or)"), "#f");
        assert_eq!(expand_str("(and a b)"), "(if a b #f)");
        let or = expand_str("(or a b)");
        assert!(or.contains("(if %t"), "{or}");
    }

    #[test]
    fn named_let_becomes_letrec() {
        let out = expand_str("(let loop ((i 0)) (if (= i 3) i (loop (+ i 1))))");
        assert!(out.starts_with("(letrec ((loop (lambda (i)"), "{out}");
        assert!(out.ends_with("(loop 0))"), "{out}");
    }

    #[test]
    fn let_star_nests() {
        let out = expand_str("(let* ((a 1) (b a)) b)");
        assert_eq!(out, "(let ((a 1)) (let ((b a)) b))");
    }

    #[test]
    fn do_becomes_loop() {
        let out = expand_str("(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 4) s))");
        assert!(out.contains("letrec"), "{out}");
        assert!(out.contains("%do-loop"), "{out}");
    }

    #[test]
    fn compound_quotes_are_hoisted() {
        let out = expand_str("(car '(1 2))");
        assert_eq!(
            out,
            "(let ((%lit0 (cons 1 (cons 2 (quote ()))))) (car %lit0))"
        );
    }

    #[test]
    fn atom_quotes_stay_inline() {
        assert_eq!(expand_str("'x"), "(quote x)");
        assert_eq!(expand_str("'()"), "(quote ())");
        assert_eq!(expand_str("'5"), "5");
    }

    #[test]
    fn quoted_vector_hoists_to_vector_build() {
        let out = expand_str("'#(1 (2))");
        assert!(out.contains("(vector 1 (cons 2 (quote ())))"), "{out}");
    }

    #[test]
    fn quasiquote_with_unquote() {
        let out = expand_str("`(a ,b)");
        assert_eq!(out, "(cons (quote a) (cons b (quote ())))");
    }

    #[test]
    fn quasiquote_with_splicing() {
        let out = expand_str("`(a ,@bs c)");
        assert_eq!(
            out,
            "(cons (quote a) (append bs (cons (quote c) (quote ()))))"
        );
    }

    #[test]
    fn internal_defines_expand_in_bodies() {
        let out = expand_str("(lambda (x) (define (h y) y) (h x))");
        assert!(out.contains("(letrec ((h (lambda (y) y))) (h x))"), "{out}");
    }

    #[test]
    fn if_without_else_gets_unspecified() {
        let out = expand_str("(if a b)");
        assert_eq!(out, "(if a b (unspecified))");
    }

    #[test]
    fn when_unless_expand() {
        assert_eq!(expand_str("(when a b)"), "(if a b (unspecified))");
        assert_eq!(expand_str("(unless a b)"), "(if a (unspecified) b)");
    }

    #[test]
    fn errors_are_reported() {
        for src in [
            "(set! x 1)",
            "(define x 1)(define)",
            "(cond (else 1) (2 3))",
            "``x",
            "(lambda (x))",
            "(let ((x)) x)",
            "(letrec ((f 5)) f)",
        ] {
            let data = parse(src).unwrap();
            assert!(expand_program(&data).is_err(), "{src}");
        }
    }

    #[test]
    fn empty_program_is_true() {
        assert_eq!(expand_str(""), "#t");
        let d = parse_one("#t").unwrap();
        assert_eq!(expand_program(&[d]).unwrap().to_string(), "#t");
    }
}
