//! The core labeled language of *Flow-directed Inlining* (PLDI 1996), §3.1.
//!
//! This crate provides:
//!
//! * an arena-based abstract syntax tree ([`Program`], [`ExprKind`]) in which
//!   every expression carries a unique [`Label`] and every binding a unique
//!   [`VarId`] — the two name spaces the flow analysis is keyed on;
//! * a macro expander ([`expand_program`]) from the R4RS-like
//!   surface syntax (`define`, `cond`, `case`, `let*`, named `let`, `do`,
//!   `and`, `or`, `quote`, …) into the core forms of the paper's Fig. 4
//!   grammar;
//! * a lowering pass ([`lower_program`]) performing
//!   scope resolution and α-renaming, with a tree-shaken Scheme prelude of
//!   library procedures (`map`, `assq`, `append`, …) prepended exactly as the
//!   paper prepends "necessary library procedures" to its benchmarks;
//! * free-variable computation, the size metric driving the `Inline?`
//!   threshold predicate, an unparser back to S-expressions, and a
//!   well-formedness validator used to check transformation outputs.
//!
//! # Examples
//!
//! ```
//! use fdi_lang::parse_and_lower;
//!
//! let program = parse_and_lower("(define (id x) x) (id 42)").unwrap();
//! assert!(program.size() > 0);
//! ```

mod ast;
mod consts;
mod error;
mod expand;
mod fv;
mod intern;
mod lower;
mod passes;
mod prelude;
mod prims;
mod size;
mod unparse;
mod validate;

pub use ast::{map_expr_refs, Binder, ExprKind, Label, LambdaInfo, Program, VarId, VarInfo};
pub use consts::Const;
pub use error::FrontendError;
pub use expand::{expand_expr_standalone, expand_program, ExpandError};
pub use fv::{free_vars_of_lambda, FreeVars};
pub use intern::{Interner, Sym};
pub use lower::{lower_program, LowerError};
pub use passes::{ExpandPass, LowerPass, ParsePass, UnparsePass, ValidatePass};
pub use prelude::{with_prelude, PRELUDE};
pub use prims::{ArgKind, PrimOp, PrimSig};
pub use size::{expr_size, node_size};
pub use unparse::{unparse, unparse_expr};
pub use validate::{validate, ValidateError};

/// Parses, expands, and lowers a surface program in one step.
///
/// This is the front end used throughout the workspace: reader → macro
/// expander → prelude injection → α-renaming/labeling.
///
/// # Errors
///
/// Returns a typed [`FrontendError`] when the reader, expander, or lowerer
/// rejects the program.
///
/// # Examples
///
/// ```
/// let p = fdi_lang::parse_and_lower("(let ((x 1)) (+ x x))").unwrap();
/// assert!(fdi_lang::validate(&p).is_ok());
/// ```
pub fn parse_and_lower(src: &str) -> Result<Program, FrontendError> {
    PARSE_COUNT.with(|c| c.set(c.get() + 1));
    let data = fdi_sexpr::parse(src)?;
    let data = with_prelude(&data);
    let core = expand_program(&data)?;
    let program = lower_program(&core)?;
    debug_assert!(
        validate(&program).is_ok(),
        "lowering produced ill-formed AST: {:?}",
        validate(&program)
    );
    Ok(program)
}

thread_local! {
    static PARSE_COUNT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`parse_and_lower`] runs performed **by this thread** since it
/// started.
///
/// A diagnostics counter for reuse-regression tests: code that should parse
/// a source once and reuse the lowered program (threshold sweeps, fixpoint
/// iteration, the batch engine's artifact cache) asserts the delta across a
/// call. Thread-local on purpose — concurrent tests and worker pools don't
/// pollute each other's counts.
///
/// # Examples
///
/// ```
/// let before = fdi_lang::parse_count();
/// fdi_lang::parse_and_lower("(+ 1 2)").unwrap();
/// assert_eq!(fdi_lang::parse_count() - before, 1);
/// ```
pub fn parse_count() -> u64 {
    PARSE_COUNT.with(std::cell::Cell::get)
}
