//! The primitive operations `p` of the paper's grammar.
//!
//! The paper treats `cons`/`car`/`cdr`/`set-car!`/`set-cdr!` as core forms
//! and everything else as primitives with an `AbstractResultOf`. We fold the
//! pair (and vector) operations into [`PrimOp`] as well; the flow analysis
//! and VM give them the special treatment the paper's Fig. 4 rules describe.

use std::fmt;

macro_rules! prims {
    ($( $variant:ident => ($name:literal, $min:literal, $max:expr, $pure:literal, $nofail:literal) ),+ $(,)?) => {
        /// A primitive operation.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum PrimOp {
            $(
                #[doc = concat!("The `", $name, "` primitive.")]
                $variant,
            )+
        }

        impl PrimOp {
            /// All primitives, in declaration order.
            pub const ALL: &'static [PrimOp] = &[$(PrimOp::$variant),+];

            /// The Scheme-level name.
            pub fn name(self) -> &'static str {
                match self {
                    $(PrimOp::$variant => $name,)+
                }
            }

            /// Looks a primitive up by Scheme-level name.
            pub fn from_name(name: &str) -> Option<PrimOp> {
                match name {
                    $($name => Some(PrimOp::$variant),)+
                    _ => None,
                }
            }

            /// Arity and effect signature.
            pub fn sig(self) -> PrimSig {
                match self {
                    $(PrimOp::$variant => PrimSig {
                        min_args: $min,
                        max_args: $max,
                        pure: $pure,
                        no_fail: $nofail,
                    },)+
                }
            }
        }

        impl fmt::Display for PrimOp {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.name())
            }
        }
    };
}

// (name, min_args, max_args(None = variadic), pure, cannot-fail)
//
// `pure` means no heap mutation, no I/O, no dependence on mutable state —
// the expression may be reordered or duplicated. `no_fail` additionally
// means evaluation cannot signal a run-time error on any inputs, so an
// unused application may be discarded entirely (§3.8 "discarding purely
// functional expressions whose result is never used").
prims! {
    // Pairs (core data forms in the paper's grammar).
    Cons      => ("cons", 2, Some(2), true, true),
    Car       => ("car", 1, Some(1), false, false),
    Cdr       => ("cdr", 1, Some(1), false, false),
    SetCar    => ("set-car!", 2, Some(2), false, false),
    SetCdr    => ("set-cdr!", 2, Some(2), false, false),
    // Vectors (extension; records in the benchmarks are built on these).
    MakeVector => ("make-vector", 1, Some(2), true, false),
    Vector     => ("vector", 0, None, true, true),
    VectorRef  => ("vector-ref", 2, Some(2), false, false),
    VectorSet  => ("vector-set!", 3, Some(3), false, false),
    VectorLength => ("vector-length", 1, Some(1), true, false),
    // Arithmetic.
    Add       => ("+", 0, None, true, false),
    Sub       => ("-", 1, None, true, false),
    Mul       => ("*", 0, None, true, false),
    Div       => ("/", 1, None, true, false),
    Quotient  => ("quotient", 2, Some(2), true, false),
    Remainder => ("remainder", 2, Some(2), true, false),
    Modulo    => ("modulo", 2, Some(2), true, false),
    Abs       => ("abs", 1, Some(1), true, false),
    Min       => ("min", 1, None, true, false),
    Max       => ("max", 1, None, true, false),
    Gcd       => ("gcd", 2, Some(2), true, false),
    Sqrt      => ("sqrt", 1, Some(1), true, false),
    Expt      => ("expt", 2, Some(2), true, false),
    Exp       => ("exp", 1, Some(1), true, false),
    Log       => ("log", 1, Some(1), true, false),
    Sin       => ("sin", 1, Some(1), true, false),
    Cos       => ("cos", 1, Some(1), true, false),
    Atan      => ("atan", 1, Some(2), true, false),
    Floor     => ("floor", 1, Some(1), true, false),
    Ceiling   => ("ceiling", 1, Some(1), true, false),
    Truncate  => ("truncate", 1, Some(1), true, false),
    Round     => ("round", 1, Some(1), true, false),
    ExactToInexact => ("exact->inexact", 1, Some(1), true, false),
    InexactToExact => ("inexact->exact", 1, Some(1), true, false),
    // Numeric comparisons and predicates.
    NumEq     => ("=", 2, None, true, false),
    Lt        => ("<", 2, None, true, false),
    Gt        => (">", 2, None, true, false),
    Le        => ("<=", 2, None, true, false),
    Ge        => (">=", 2, None, true, false),
    ZeroP     => ("zero?", 1, Some(1), true, false),
    PositiveP => ("positive?", 1, Some(1), true, false),
    NegativeP => ("negative?", 1, Some(1), true, false),
    EvenP     => ("even?", 1, Some(1), true, false),
    OddP      => ("odd?", 1, Some(1), true, false),
    // Type predicates and equality — these never fail.
    Not       => ("not", 1, Some(1), true, true),
    NullP     => ("null?", 1, Some(1), true, true),
    PairP     => ("pair?", 1, Some(1), true, true),
    VectorP   => ("vector?", 1, Some(1), true, true),
    NumberP   => ("number?", 1, Some(1), true, true),
    IntegerP  => ("integer?", 1, Some(1), true, true),
    BooleanP  => ("boolean?", 1, Some(1), true, true),
    SymbolP   => ("symbol?", 1, Some(1), true, true),
    StringP   => ("string?", 1, Some(1), true, true),
    CharP     => ("char?", 1, Some(1), true, true),
    ProcedureP => ("procedure?", 1, Some(1), true, true),
    EqP       => ("eq?", 2, Some(2), true, true),
    EqvP      => ("eqv?", 2, Some(2), true, true),
    EqualP    => ("equal?", 2, Some(2), true, true),
    // Strings, symbols, characters.
    StringLength => ("string-length", 1, Some(1), true, false),
    StringRef    => ("string-ref", 2, Some(2), true, false),
    StringAppend => ("string-append", 0, None, true, false),
    SubstringOp  => ("substring", 3, Some(3), true, false),
    StringEqP    => ("string=?", 2, Some(2), true, false),
    StringLtP    => ("string<?", 2, Some(2), true, false),
    SymbolToString => ("symbol->string", 1, Some(1), true, false),
    StringToSymbol => ("string->symbol", 1, Some(1), true, false),
    NumberToString => ("number->string", 1, Some(1), true, false),
    CharToInteger => ("char->integer", 1, Some(1), true, false),
    IntegerToChar => ("integer->char", 1, Some(1), true, false),
    CharEqP      => ("char=?", 2, Some(2), true, false),
    CharLtP      => ("char<?", 2, Some(2), true, false),
    // I/O and control.
    Display   => ("display", 1, Some(1), false, true),
    Write     => ("write", 1, Some(1), false, true),
    Newline   => ("newline", 0, Some(0), false, true),
    ErrorOp   => ("error", 0, None, false, false),
    Random    => ("random", 1, Some(1), false, false),
}

/// Arity and effect signature of a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimSig {
    /// Minimum argument count.
    pub min_args: u8,
    /// Maximum argument count; `None` means variadic.
    pub max_args: Option<u8>,
    /// No mutation, I/O, or hidden state.
    pub pure: bool,
    /// Cannot raise a run-time error; safe to discard when unused.
    pub no_fail: bool,
}

impl PrimSig {
    /// True when `n` arguments are acceptable.
    pub fn accepts(self, n: usize) -> bool {
        n >= self.min_args as usize && self.max_args.is_none_or(|m| n <= m as usize)
    }
}

/// The dynamic type a checked primitive argument must have at run time.
///
/// Used by the check-elimination pass (the optimization of the companion
/// paper "Effective Flow Analysis for Avoiding Run-Time Checks", cited as
/// future work in §6) and by the VM's check-cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgKind {
    /// Any number.
    Num,
    /// An exact integer.
    Int,
    /// A pair.
    Pair,
    /// A vector.
    Vector,
    /// A string.
    Str,
    /// A character.
    Char,
    /// A procedure.
    Proc,
}

impl PrimOp {
    /// The run-time tag checks a safe implementation of this primitive
    /// performs: `(argument index, required kind)` pairs. Variadic numeric
    /// primitives check every argument; those are encoded with the sentinel
    /// index `u8::MAX` meaning "each argument".
    pub fn checked_args(self) -> &'static [(u8, ArgKind)] {
        use ArgKind::{Char, Int, Num, Pair, Str, Vector as Vec_};
        use PrimOp::*;
        const EACH: u8 = u8::MAX;
        match self {
            Car | Cdr => &[(0, Pair)],
            SetCar | SetCdr => &[(0, Pair)],
            Add | Sub | Mul | Div | Min | Max | NumEq | Lt | Gt | Le | Ge => &[(EACH, Num)],
            Quotient | Remainder | Modulo | Gcd => &[(0, Int), (1, Int)],
            Abs | Sqrt | Exp | Log | Sin | Cos | Floor | Ceiling | Truncate | Round | ZeroP
            | PositiveP | NegativeP | ExactToInexact | InexactToExact => &[(0, Num)],
            Atan | Expt => &[(EACH, Num)],
            EvenP | OddP | Random => &[(0, Int)],
            MakeVector => &[(0, Int)],
            VectorRef => &[(0, Vec_), (1, Int)],
            VectorSet => &[(0, Vec_), (1, Int)],
            VectorLength => &[(0, Vec_)],
            StringLength | SymbolToString | StringToSymbol => match self {
                StringLength => &[(0, Str)],
                StringToSymbol => &[(0, Str)],
                _ => &[],
            },
            StringRef => &[(0, Str), (1, Int)],
            SubstringOp => &[(0, Str), (1, Int), (2, Int)],
            StringAppend => &[(EACH, Str)],
            StringEqP | StringLtP => &[(0, Str), (1, Str)],
            NumberToString => &[(0, Num)],
            CharToInteger | CharEqP | CharLtP => match self {
                CharToInteger => &[(0, Char)],
                _ => &[(0, Char), (1, Char)],
            },
            IntegerToChar => &[(0, Int)],
            _ => &[],
        }
    }

    /// Number of run-time checks an application with `argc` arguments pays
    /// when none are eliminated.
    pub fn check_count(self, argc: usize) -> usize {
        self.checked_args()
            .iter()
            .map(|&(i, _)| if i == u8::MAX { argc } else { 1 })
            .sum()
    }

    /// True when this primitive allocates heap storage (for the VM's
    /// allocation accounting).
    pub fn allocates(self) -> bool {
        matches!(
            self,
            PrimOp::Cons
                | PrimOp::MakeVector
                | PrimOp::Vector
                | PrimOp::StringAppend
                | PrimOp::SubstringOp
                | PrimOp::NumberToString
                | PrimOp::SymbolToString
        )
    }

    /// True for pair and vector operations, which the flow analysis models
    /// with per-(label, contour) content nodes rather than `AbstractResultOf`.
    pub fn is_data_op(self) -> bool {
        matches!(
            self,
            PrimOp::Cons
                | PrimOp::Car
                | PrimOp::Cdr
                | PrimOp::SetCar
                | PrimOp::SetCdr
                | PrimOp::MakeVector
                | PrimOp::Vector
                | PrimOp::VectorRef
                | PrimOp::VectorSet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(PrimOp::from_name("cons"), Some(PrimOp::Cons));
        assert_eq!(PrimOp::from_name("set-car!"), Some(PrimOp::SetCar));
        assert_eq!(PrimOp::from_name("frobnicate"), None);
    }

    #[test]
    fn names_roundtrip() {
        for &p in PrimOp::ALL {
            assert_eq!(PrimOp::from_name(p.name()), Some(p), "{p}");
        }
    }

    #[test]
    fn arity_checks() {
        assert!(PrimOp::Cons.sig().accepts(2));
        assert!(!PrimOp::Cons.sig().accepts(1));
        assert!(!PrimOp::Cons.sig().accepts(3));
        assert!(PrimOp::Add.sig().accepts(0));
        assert!(PrimOp::Add.sig().accepts(7));
        assert!(!PrimOp::Sub.sig().accepts(0));
        assert!(PrimOp::MakeVector.sig().accepts(1));
        assert!(PrimOp::MakeVector.sig().accepts(2));
        assert!(!PrimOp::MakeVector.sig().accepts(3));
    }

    #[test]
    fn effect_flags_are_sensible() {
        assert!(PrimOp::Cons.sig().pure && PrimOp::Cons.sig().no_fail);
        assert!(!PrimOp::Car.sig().no_fail);
        assert!(!PrimOp::SetCar.sig().pure);
        assert!(!PrimOp::Display.sig().pure);
        assert!(PrimOp::NullP.sig().no_fail);
        assert!(!PrimOp::Div.sig().no_fail);
    }

    #[test]
    fn checked_args_table() {
        use ArgKind::*;
        assert_eq!(PrimOp::Car.checked_args(), &[(0, Pair)]);
        assert_eq!(PrimOp::Add.checked_args(), &[(u8::MAX, Num)]);
        assert_eq!(PrimOp::Cons.checked_args(), &[] as &[(u8, ArgKind)]);
        assert_eq!(PrimOp::VectorRef.checked_args().len(), 2);
        assert_eq!(
            PrimOp::SymbolToString.checked_args(),
            &[] as &[(u8, ArgKind)]
        );
    }

    #[test]
    fn check_counts() {
        assert_eq!(PrimOp::Add.check_count(3), 3);
        assert_eq!(PrimOp::Car.check_count(1), 1);
        assert_eq!(PrimOp::NullP.check_count(1), 0);
        assert_eq!(PrimOp::VectorSet.check_count(3), 2);
    }

    #[test]
    fn data_op_classification() {
        assert!(PrimOp::Cons.is_data_op());
        assert!(PrimOp::VectorSet.is_data_op());
        assert!(!PrimOp::Add.is_data_op());
        assert!(PrimOp::Cons.allocates());
        assert!(!PrimOp::Car.allocates());
    }
}
