//! String interning for variable and symbol names.

use std::collections::HashMap;
use std::fmt;

/// An interned string.
///
/// `Sym` is a cheap copyable handle; resolve it with [`Interner::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Interns strings to [`Sym`] handles.
///
/// # Examples
///
/// ```
/// use fdi_lang::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("car");
/// let b = i.intern("car");
/// assert_eq!(a, b);
/// assert_eq!(i.name(a), "car");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `name`, returning its handle.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Resolves a handle to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(b), "y");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("z"), None);
        let z = i.intern("z");
        assert_eq!(i.get("z"), Some(z));
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
