//! Frontend and observation passes, packaged for the unified pass manager.
//!
//! `fdi-core`'s pass manager drives the pipeline through a uniform `Pass`
//! trait, but the trait itself lives in `fdi-core` (which depends on this
//! crate). Each stage is therefore exported here as a plain struct with a
//! stable [`NAME`](ParsePass::NAME), a [`SALT`](ParsePass::SALT) versioning
//! its behaviour inside schedule fingerprints, and an `apply` method wrapping
//! the underlying function; `fdi-core` implements its `Pass` trait for these
//! types.
//!
//! The salts are arbitrary fixed constants: bump one when the corresponding
//! stage's output changes for the same input, and cached artifacts keyed by
//! schedule fingerprint are invalidated.

use crate::{FrontendError, Program, ValidateError};
use fdi_sexpr::Datum;

/// The reader stage: source text to data, with the library prelude
/// prepended (the paper prepends "necessary library procedures" the same
/// way).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParsePass;

impl ParsePass {
    /// Stable pass name; also resolves the fault-injection point.
    pub const NAME: &'static str = "parse";
    /// Schedule-fingerprint salt for this pass's behaviour version.
    pub const SALT: u64 = 0x70a5_5e01;

    /// Reads `src` and prepends the prelude.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] when the reader rejects the text.
    pub fn apply(&self, src: &str) -> Result<Vec<Datum>, FrontendError> {
        let data = fdi_sexpr::parse(src)?;
        Ok(crate::with_prelude(&data))
    }
}

/// The macro expander stage: surface data to the core-form program datum.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpandPass;

impl ExpandPass {
    /// Stable pass name; also resolves the fault-injection point.
    pub const NAME: &'static str = "expand";
    /// Schedule-fingerprint salt for this pass's behaviour version.
    pub const SALT: u64 = 0x70a5_5e02;

    /// Expands surface forms into the core grammar.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] when a form does not expand.
    pub fn apply(&self, data: &[Datum]) -> Result<Datum, FrontendError> {
        Ok(crate::expand_program(data)?)
    }
}

/// The lowering stage: core-form datum to the labeled, α-renamed [`Program`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerPass;

impl LowerPass {
    /// Stable pass name; also resolves the fault-injection point.
    pub const NAME: &'static str = "lower";
    /// Schedule-fingerprint salt for this pass's behaviour version.
    pub const SALT: u64 = 0x70a5_5e03;

    /// Lowers the expanded program.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] on scope-resolution failures.
    pub fn apply(&self, core: &Datum) -> Result<Program, FrontendError> {
        Ok(crate::lower_program(core)?)
    }
}

/// The well-formedness checkpoint run after every rewriting pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidatePass;

impl ValidatePass {
    /// Stable pass name; also resolves the fault-injection point.
    pub const NAME: &'static str = "validate";
    /// Schedule-fingerprint salt for this pass's behaviour version.
    pub const SALT: u64 = 0x70a5_5e04;

    /// Checks `program` for well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn apply(&self, program: &Program) -> Result<(), ValidateError> {
        crate::validate(program)
    }
}

/// The unparser, as an observation pass: renders a program back to source
/// text. The pass manager also uses it as its fixpoint detector (two
/// programs are "the same" when they unparse identically).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnparsePass;

impl UnparsePass {
    /// Stable pass name.
    pub const NAME: &'static str = "unparse";
    /// Schedule-fingerprint salt for this pass's behaviour version.
    pub const SALT: u64 = 0x70a5_5e05;

    /// Renders `program` as source text.
    pub fn apply(&self, program: &Program) -> String {
        crate::unparse(program).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_stages_compose_to_parse_and_lower() {
        let src = "(define (sq x) (* x x)) (sq 7)";
        let data = ParsePass.apply(src).unwrap();
        let core = ExpandPass.apply(&data).unwrap();
        let staged = LowerPass.apply(&core).unwrap();
        let fused = crate::parse_and_lower(src).unwrap();
        assert_eq!(
            UnparsePass.apply(&staged),
            UnparsePass.apply(&fused),
            "staged frontend must agree with the fused one"
        );
        assert!(ValidatePass.apply(&staged).is_ok());
    }
}
