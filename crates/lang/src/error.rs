//! The typed front-end error: everything that can go wrong between source
//! text and a lowered [`crate::Program`].

use crate::expand::ExpandError;
use crate::lower::LowerError;
use std::fmt;

/// Why the front end rejected a program.
///
/// Each variant wraps the phase-specific error so callers can react to the
/// failing phase (the pipeline maps all three onto
/// `PipelineError::Frontend`) while `Display` keeps the old human-readable
/// messages intact.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// The reader rejected the S-expression syntax.
    Parse(fdi_sexpr::ParseError),
    /// The macro expander rejected a special form.
    Expand(ExpandError),
    /// Scope resolution / α-renaming failed.
    Lower(LowerError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Expand(e) => write!(f, "{e}"),
            FrontendError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Parse(e) => Some(e),
            FrontendError::Expand(e) => Some(e),
            FrontendError::Lower(e) => Some(e),
        }
    }
}

impl From<fdi_sexpr::ParseError> for FrontendError {
    fn from(e: fdi_sexpr::ParseError) -> FrontendError {
        FrontendError::Parse(e)
    }
}

impl From<ExpandError> for FrontendError {
    fn from(e: ExpandError) -> FrontendError {
        FrontendError::Expand(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> FrontendError {
        FrontendError::Lower(e)
    }
}
