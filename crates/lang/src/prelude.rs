//! The Scheme prelude: library procedures prepended to every program.
//!
//! Table 1's "Lines" column counts each benchmark "after prepending necessary
//! library procedures"; we reproduce that by tree-shaking this prelude
//! against the program's referenced names and prepending only what is used.
//! `map` is the paper's own implementation from Fig. 1 — the worked example
//! `(map car m)` of Figs. 1–3 runs through exactly this code.

use fdi_sexpr::Datum;
use std::collections::{HashMap, HashSet};

/// Source text of the prelude.
pub const PRELUDE: &str = r#"
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cdr (cdr p))))
(define (cdddr p) (cdr (cdr (cdr p))))
(define (cadddr p) (car (cdr (cdr (cdr p)))))
(define (list . xs) xs)
(define (length l)
  (letrec ((len (lambda (l n) (if (null? l) n (len (cdr l) (+ n 1))))))
    (len l 0)))
(define (append2 a b)
  (if (null? a) b (cons (car a) (append2 (cdr a) b))))
(define (append . ls)
  (cond ((null? ls) '())
        ((null? (cdr ls)) (car ls))
        (else (append2 (car ls) (apply append (cdr ls))))))
(define (reverse l)
  (letrec ((rev (lambda (l acc) (if (null? l) acc (rev (cdr l) (cons (car l) acc))))))
    (rev l '())))
(define (list-tail l k)
  (if (zero? k) l (list-tail (cdr l) (- k 1))))
(define (list-ref l k) (car (list-tail l k)))
(define (last-pair l)
  (if (null? (cdr l)) l (last-pair (cdr l))))
(define (list? x)
  (cond ((null? x) #t)
        ((pair? x) (list? (cdr x)))
        (else #f)))
(define (memq x l)
  (cond ((null? l) #f)
        ((eq? x (car l)) l)
        (else (memq x (cdr l)))))
(define (memv x l)
  (cond ((null? l) #f)
        ((eqv? x (car l)) l)
        (else (memv x (cdr l)))))
(define (member x l)
  (cond ((null? l) #f)
        ((equal? x (car l)) l)
        (else (member x (cdr l)))))
(define (assq x l)
  (cond ((null? l) #f)
        ((eq? x (caar l)) (car l))
        (else (assq x (cdr l)))))
(define (assv x l)
  (cond ((null? l) #f)
        ((eqv? x (caar l)) (car l))
        (else (assv x (cdr l)))))
(define (assoc x l)
  (cond ((null? l) #f)
        ((equal? x (caar l)) (car l))
        (else (assoc x (cdr l)))))
(define (map f al . args)
  (letrec ((map1 (lambda (f l)
                   (if (null? l)
                       '()
                       (cons (f (car l)) (map1 f (cdr l))))))
           (map* (lambda (lists)
                   (if (null? (car lists))
                       '()
                       (cons (apply f (map1 car lists))
                             (map* (map1 cdr lists)))))))
    (if (null? args)
        (map1 f al)
        (map* (cons al args)))))
(define (for-each f al . args)
  (letrec ((fe1 (lambda (l)
                  (if (null? l)
                      #t
                      (begin (f (car l)) (fe1 (cdr l))))))
           (fe* (lambda (lists)
                  (if (null? (car lists))
                      #t
                      (begin (apply f (map car lists))
                             (fe* (map cdr lists)))))))
    (if (null? args)
        (fe1 al)
        (fe* (cons al args)))))
(define (filter keep? l)
  (cond ((null? l) '())
        ((keep? (car l)) (cons (car l) (filter keep? (cdr l))))
        (else (filter keep? (cdr l)))))
(define (foldl f acc l)
  (if (null? l) acc (foldl f (f acc (car l)) (cdr l))))
(define (foldr f acc l)
  (if (null? l) acc (f (car l) (foldr f acc (cdr l)))))
(define (iota n)
  (letrec ((up (lambda (i) (if (= i n) '() (cons i (up (+ i 1)))))))
    (up 0)))
(define (list->vector l)
  (let ((v (make-vector (length l) 0)))
    (letrec ((fill (lambda (l i)
                     (if (null? l)
                         v
                         (begin (vector-set! v i (car l)) (fill (cdr l) (+ i 1)))))))
      (fill l 0))))
(define (vector->list v)
  (letrec ((grab (lambda (i acc)
                   (if (< i 0) acc (grab (- i 1) (cons (vector-ref v i) acc))))))
    (grab (- (vector-length v) 1) '())))
(define (vector-fill! v x)
  (letrec ((fill (lambda (i)
                   (if (< i 0) v (begin (vector-set! v i x) (fill (- i 1)))))))
    (fill (- (vector-length v) 1))))
(define (sort l less?)
  (letrec ((merge (lambda (a b)
                    (cond ((null? a) b)
                          ((null? b) a)
                          ((less? (car b) (car a))
                           (cons (car b) (merge a (cdr b))))
                          (else (cons (car a) (merge (cdr a) b))))))
           (split (lambda (l)
                    (if (or (null? l) (null? (cdr l)))
                        (cons l '())
                        (let ((rest (split (cddr l))))
                          (cons (cons (car l) (car rest))
                                (cons (cadr l) (cdr rest)))))))
           (msort (lambda (l)
                    (if (or (null? l) (null? (cdr l)))
                        l
                        (let ((halves (split l)))
                          (merge (msort (car halves)) (msort (cdr halves))))))))
    (msort l)))
"#;

/// Parses the prelude into `(name, define-form)` pairs, in order.
fn prelude_defines() -> Vec<(String, Datum)> {
    let forms = fdi_sexpr::parse(PRELUDE).expect("prelude parses");
    forms
        .into_iter()
        .map(|form| {
            let parts = form.as_list().expect("prelude form is a list");
            assert!(form.is_form("define"), "prelude contains only defines");
            let name = match &parts[1] {
                Datum::Sym(s) => s.clone(),
                Datum::List(hs) | Datum::Improper(hs, _) => {
                    hs[0].as_sym().expect("prelude name").to_string()
                }
                other => panic!("bad prelude header {other}"),
            };
            (name, form)
        })
        .collect()
}

/// Every symbol occurring anywhere in a datum (conservative reference scan).
fn symbols_in(d: &Datum, out: &mut HashSet<String>) {
    match d {
        Datum::Sym(s) => {
            out.insert(s.clone());
        }
        Datum::List(items) | Datum::Vector(items) => {
            items.iter().for_each(|i| symbols_in(i, out));
        }
        Datum::Improper(items, tail) => {
            items.iter().for_each(|i| symbols_in(i, out));
            symbols_in(tail, out);
        }
        _ => {}
    }
}

/// Prepends the prelude procedures transitively referenced by `forms`.
///
/// The scan is conservative (any symbol occurrence counts as a reference, so
/// `'(map of the world)` pulls in `map`), which can only add unused library
/// code, never omit needed code. Programs using `quasiquote` additionally
/// pull in `append`.
///
/// # Examples
///
/// ```
/// let user = fdi_sexpr::parse("(length '(1 2 3))").unwrap();
/// let all = fdi_lang::with_prelude(&user);
/// assert!(all.len() > user.len());
/// assert!(all[0].to_string().contains("length"));
/// ```
pub fn with_prelude(forms: &[Datum]) -> Vec<Datum> {
    let defs = prelude_defines();
    let index: HashMap<&str, usize> = defs
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.as_str(), i))
        .collect();
    let mut referenced = HashSet::new();
    for form in forms {
        symbols_in(form, &mut referenced);
    }
    if referenced.contains("quasiquote") || referenced.contains("unquote-splicing") {
        referenced.insert("append".to_string());
    }
    // Transitively close over prelude-internal references.
    let mut needed: Vec<usize> = Vec::new();
    let mut included = vec![false; defs.len()];
    let mut work: Vec<usize> = defs
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| referenced.contains(name))
        .map(|(i, _)| i)
        .collect();
    while let Some(i) = work.pop() {
        if std::mem::replace(&mut included[i], true) {
            continue;
        }
        needed.push(i);
        let mut refs = HashSet::new();
        symbols_in(&defs[i].1, &mut refs);
        for r in refs {
            if let Some(&j) = index.get(r.as_str()) {
                if !included[j] {
                    work.push(j);
                }
            }
        }
    }
    needed.sort_unstable();
    let mut out: Vec<Datum> = needed.into_iter().map(|i| defs[i].1.clone()).collect();
    out.extend_from_slice(forms);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_parses_and_every_form_is_a_define() {
        let defs = prelude_defines();
        assert!(defs.len() >= 30);
        assert!(defs.iter().any(|(n, _)| n == "map"));
        assert!(defs.iter().any(|(n, _)| n == "sort"));
    }

    #[test]
    fn tree_shake_pulls_transitive_deps() {
        let user = fdi_sexpr::parse("(append '(1) '(2))").unwrap();
        let all = with_prelude(&user);
        let names: Vec<String> = all
            .iter()
            .filter(|f| f.is_form("define"))
            .map(|f| f.to_string())
            .collect();
        // append depends on append2.
        assert!(
            names.iter().any(|n| n.contains("(append2 a b)")),
            "{names:?}"
        );
    }

    #[test]
    fn unreferenced_prelude_is_dropped() {
        let user = fdi_sexpr::parse("(+ 1 2)").unwrap();
        let all = with_prelude(&user);
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn prelude_definitions_keep_order() {
        let user = fdi_sexpr::parse("(map car m) (assq 'k l)").unwrap();
        let all = with_prelude(&user);
        let pos = |name: &str| {
            all.iter()
                .position(|f| f.to_string().contains(&format!("({name} ")))
                .unwrap_or(usize::MAX)
        };
        // map's map* path references car through (map car lists).
        assert!(pos("assq") < all.len());
        assert!(pos("map") < all.len());
    }

    #[test]
    fn full_prelude_lowers() {
        // Reference everything at once; the combined program must lower.
        let every: String = prelude_defines()
            .iter()
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>()
            .join(" ");
        let user = fdi_sexpr::parse(&format!("(list {every})")).unwrap();
        let all = with_prelude(&user);
        let core = crate::expand_program(&all).unwrap();
        let program = crate::lower_program(&core).unwrap();
        assert!(crate::validate(&program).is_ok());
    }
}
