//! Unparser from core programs back to S-expressions.
//!
//! Variable names are made unique by suffixing `%<id>` when two distinct
//! bindings share a source name, so that unparsed output can be re-lowered
//! (used by the source-to-source tests and the printed examples).

use crate::ast::{ExprKind, Label, Program, VarId};
use crate::consts::Const;
use fdi_sexpr::Datum;
use std::collections::HashMap;

/// Renders the whole program.
///
/// # Examples
///
/// ```
/// let p = fdi_lang::parse_and_lower("(if #t 1 2)").unwrap();
/// assert_eq!(fdi_lang::unparse(&p).to_string(), "(if #t 1 2)");
/// ```
pub fn unparse(program: &Program) -> Datum {
    Unparser::new(program).expr(program.root())
}

/// Renders a single subexpression.
pub fn unparse_expr(program: &Program, label: Label) -> Datum {
    Unparser::new(program).expr(label)
}

struct Unparser<'a> {
    program: &'a Program,
    display_names: HashMap<VarId, String>,
}

impl<'a> Unparser<'a> {
    fn new(program: &'a Program) -> Unparser<'a> {
        // A name is ambiguous if two reachable bindings share it.
        let mut uses: HashMap<&str, Vec<VarId>> = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        for label in program.reachable() {
            let mut record = |v: VarId| {
                if seen.insert(v) {
                    uses.entry(program.var_name(v)).or_default().push(v);
                }
            };
            match program.expr(label) {
                ExprKind::Lambda(lam) => lam
                    .params
                    .iter()
                    .copied()
                    .chain(lam.rest)
                    .for_each(&mut record),
                ExprKind::Let(bindings, _) | ExprKind::Letrec(bindings, _) => {
                    bindings.iter().for_each(|&(v, _)| record(v))
                }
                _ => {}
            }
        }
        let mut display_names = HashMap::new();
        for (name, vars) in uses {
            if vars.len() == 1 {
                display_names.insert(vars[0], name.to_string());
            } else {
                for v in vars {
                    display_names.insert(v, format!("{name}%{}", v.0));
                }
            }
        }
        Unparser {
            program,
            display_names,
        }
    }

    fn var(&self, v: VarId) -> Datum {
        let name = self
            .display_names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| format!("{}%{}", self.program.var_name(v), v.0));
        Datum::Sym(name)
    }

    fn konst(&self, c: Const) -> Datum {
        match c {
            Const::Bool(b) => Datum::Bool(b),
            Const::Int(n) => Datum::Int(n),
            Const::Float(bits) => Datum::Float(f64::from_bits(bits)),
            Const::Char(ch) => Datum::Char(ch),
            Const::Str(s) => Datum::Str(self.program.interner().name(s).to_string()),
            Const::Symbol(s) => Datum::List(vec![
                Datum::sym("quote"),
                Datum::sym(self.program.interner().name(s)),
            ]),
            Const::Nil => Datum::List(vec![Datum::sym("quote"), Datum::Nil]),
            Const::Unspecified => Datum::List(vec![Datum::sym("quote"), Datum::sym("unspecified")]),
        }
    }

    /// The labels of `label`'s subexpressions, in source order.
    fn children(&self, label: Label) -> Vec<Label> {
        match self.program.expr(label) {
            ExprKind::Const(_) | ExprKind::Var(_) => Vec::new(),
            ExprKind::Prim(_, args) => args.clone(),
            ExprKind::Call(parts) => parts.clone(),
            ExprKind::Apply(f, arg) => vec![*f, *arg],
            ExprKind::Begin(parts) => parts.clone(),
            ExprKind::If(c, t, e) => vec![*c, *t, *e],
            ExprKind::Let(bindings, body) | ExprKind::Letrec(bindings, body) => {
                let mut out: Vec<Label> = bindings.iter().map(|&(_, e)| e).collect();
                out.push(*body);
                out
            }
            ExprKind::Lambda(lam) => vec![lam.body],
            ExprKind::ClRef(e, _) => vec![*e],
        }
    }

    /// Assembles the datum for `label` from its already-rendered children.
    fn assemble(&self, label: Label, kids: Vec<Datum>) -> Datum {
        match self.program.expr(label) {
            ExprKind::Const(c) => self.konst(*c),
            ExprKind::Var(v) => self.var(*v),
            ExprKind::Prim(p, _) => {
                let mut items = vec![Datum::sym(p.name())];
                items.extend(kids);
                Datum::List(items)
            }
            ExprKind::Call(_) => Datum::List(kids),
            ExprKind::Apply(..) => {
                let mut items = vec![Datum::sym("apply")];
                items.extend(kids);
                Datum::List(items)
            }
            ExprKind::Begin(_) => {
                let mut items = vec![Datum::sym("begin")];
                items.extend(kids);
                Datum::List(items)
            }
            ExprKind::If(..) => {
                let mut items = vec![Datum::sym("if")];
                items.extend(kids);
                Datum::List(items)
            }
            ExprKind::Let(bindings, _) => self.binding_form("let", bindings, kids),
            ExprKind::Letrec(bindings, _) => self.binding_form("letrec", bindings, kids),
            ExprKind::Lambda(lam) => {
                let params: Vec<Datum> = lam.params.iter().map(|&v| self.var(v)).collect();
                let formals = match lam.rest {
                    None => Datum::list(params),
                    Some(r) => {
                        if params.is_empty() {
                            self.var(r)
                        } else {
                            Datum::Improper(params, Box::new(self.var(r)))
                        }
                    }
                };
                let body = kids.into_iter().next().expect("lambda body rendered");
                Datum::List(vec![Datum::sym("lambda"), formals, body])
            }
            ExprKind::ClRef(_, n) => {
                let e = kids.into_iter().next().expect("cl-ref argument rendered");
                Datum::List(vec![Datum::sym("cl-ref"), e, Datum::Int(*n as i64)])
            }
        }
    }

    /// Renders `label` with an explicit post-order worklist: program depth is
    /// unbounded from the unparser's point of view (inlining can deepen
    /// what the reader's nesting cap admitted), so no recursion here.
    fn expr(&self, label: Label) -> Datum {
        enum Task {
            Visit(Label),
            Reduce(Label, usize),
        }
        let mut tasks = vec![Task::Visit(label)];
        let mut vals: Vec<Datum> = Vec::new();
        while let Some(task) = tasks.pop() {
            match task {
                Task::Visit(l) => {
                    let kids = self.children(l);
                    tasks.push(Task::Reduce(l, kids.len()));
                    for &k in kids.iter().rev() {
                        tasks.push(Task::Visit(k));
                    }
                }
                Task::Reduce(l, n) => {
                    let kids = vals.split_off(vals.len() - n);
                    vals.push(self.assemble(l, kids));
                }
            }
        }
        vals.pop().expect("root rendered")
    }

    fn binding_form(&self, head: &str, bindings: &[(VarId, Label)], mut kids: Vec<Datum>) -> Datum {
        let body = kids.pop().expect("binding body rendered");
        let binds = bindings
            .iter()
            .zip(kids)
            .map(|(&(v, _), rhs)| Datum::List(vec![self.var(v), rhs]))
            .collect();
        Datum::List(vec![Datum::sym(head), Datum::list(binds), body])
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_and_lower;

    #[test]
    fn unparses_core_forms() {
        for (src, expect) in [
            ("(if #t 1 2)", "(if #t 1 2)"),
            ("(begin 1 2)", "(begin 1 2)"),
            ("(cons 1 '())", "(cons 1 (quote ()))"),
            ("(lambda (x) x)", "(lambda (x) x)"),
            ("(lambda args args)", "(lambda args args)"),
            ("(lambda (a . r) r)", "(lambda (a . r) r)"),
            ("'sym", "(quote sym)"),
        ] {
            let p = parse_and_lower(src).unwrap();
            assert_eq!(crate::unparse(&p).to_string(), expect, "{src}");
        }
    }

    #[test]
    fn shadowed_names_get_unique_suffixes() {
        let p = parse_and_lower("(let ((x 1)) (let ((x 2)) x))").unwrap();
        let out = crate::unparse(&p).to_string();
        assert!(out.contains("x%"), "{out}");
        // And the output re-lowers cleanly.
        assert!(parse_and_lower(&out).is_ok(), "{out}");
    }

    #[test]
    fn unparse_relower_preserves_size() {
        let src =
            "(letrec ((f (lambda (n acc) (if (zero? n) acc (f (- n 1) (* acc n)))))) (f 5 1))";
        let p = parse_and_lower(src).unwrap();
        let p2 = parse_and_lower(&crate::unparse(&p).to_string()).unwrap();
        assert_eq!(p.size(), p2.size());
    }
}
