//! Well-formedness checks for [`Program`]s.
//!
//! The inliner and simplifier both produce fresh programs; tests and debug
//! assertions run [`validate`] on their outputs to catch scoping or arity
//! mistakes immediately rather than as downstream miscompiles.

use crate::ast::{Binder, ExprKind, Label, Program, VarId};
use std::collections::HashSet;
use std::fmt;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// The offending expression.
    pub label: Label,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ill-formed program at {}: {}", self.label, self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Checks that `program` is well formed:
///
/// * every variable reference is in scope;
/// * no label is shared between two parents (unique-label property, §3.1);
/// * no variable is bound twice (unique-binding property, §3.1);
/// * `letrec` right-hand sides are λ-expressions;
/// * `begin`/`call` have at least the required subexpressions;
/// * primitive applications match the primitive's arity.
///
/// # Errors
///
/// Returns the first violation found in a preorder walk.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let mut seen_labels = HashSet::new();
    let mut bound_once = HashSet::new();
    let mut scope = Vec::new();
    check(
        program,
        program.root(),
        &mut scope,
        &mut seen_labels,
        &mut bound_once,
    )
}

fn err(label: Label, message: impl Into<String>) -> ValidateError {
    ValidateError {
        label,
        message: message.into(),
    }
}

fn check(
    program: &Program,
    label: Label,
    scope: &mut Vec<VarId>,
    seen_labels: &mut HashSet<Label>,
    bound_once: &mut HashSet<VarId>,
) -> Result<(), ValidateError> {
    if !seen_labels.insert(label) {
        return Err(err(label, "label reachable through two parents"));
    }
    let bind = |v: VarId,
                binder_label: Label,
                scope: &mut Vec<VarId>,
                bound_once: &mut HashSet<VarId>|
     -> Result<(), ValidateError> {
        if !bound_once.insert(v) {
            return Err(err(binder_label, format!("variable {v} bound twice")));
        }
        let info = program.var(v);
        if info.binder.label() != binder_label {
            return Err(err(
                binder_label,
                format!(
                    "variable {v} has binder {} but is bound at {binder_label}",
                    info.binder.label()
                ),
            ));
        }
        scope.push(v);
        Ok(())
    };
    match program.expr(label) {
        ExprKind::Const(_) => {}
        ExprKind::Var(v) => {
            if !scope.contains(v) {
                return Err(err(label, format!("unbound variable {v}")));
            }
        }
        ExprKind::Prim(p, args) => {
            if !p.sig().accepts(args.len()) {
                return Err(err(
                    label,
                    format!("primitive {p} applied to {} args", args.len()),
                ));
            }
            for &a in args {
                check(program, a, scope, seen_labels, bound_once)?;
            }
        }
        ExprKind::Call(parts) => {
            if parts.is_empty() {
                return Err(err(label, "empty call"));
            }
            for &e in parts {
                check(program, e, scope, seen_labels, bound_once)?;
            }
        }
        ExprKind::Apply(f, arg) => {
            check(program, *f, scope, seen_labels, bound_once)?;
            check(program, *arg, scope, seen_labels, bound_once)?;
        }
        ExprKind::Begin(parts) => {
            if parts.is_empty() {
                return Err(err(label, "empty begin"));
            }
            for &e in parts {
                check(program, e, scope, seen_labels, bound_once)?;
            }
        }
        ExprKind::If(c, t, e) => {
            check(program, *c, scope, seen_labels, bound_once)?;
            check(program, *t, scope, seen_labels, bound_once)?;
            check(program, *e, scope, seen_labels, bound_once)?;
        }
        ExprKind::Let(bindings, body) => {
            for &(_, e) in bindings {
                check(program, e, scope, seen_labels, bound_once)?;
            }
            let mark = scope.len();
            for &(v, _) in bindings {
                if !matches!(program.var(v).binder, Binder::Let(_)) {
                    return Err(err(label, format!("{v} bound by let but marked otherwise")));
                }
                bind(v, label, scope, bound_once)?;
            }
            check(program, *body, scope, seen_labels, bound_once)?;
            scope.truncate(mark);
        }
        ExprKind::Letrec(bindings, body) => {
            let mark = scope.len();
            for &(v, _) in bindings {
                if !matches!(program.var(v).binder, Binder::Letrec(_)) {
                    return Err(err(
                        label,
                        format!("{v} bound by letrec but marked otherwise"),
                    ));
                }
                bind(v, label, scope, bound_once)?;
            }
            for &(_, e) in bindings {
                if !matches!(program.expr(e), ExprKind::Lambda(_)) {
                    return Err(err(label, "letrec right-hand side is not a lambda"));
                }
                check(program, e, scope, seen_labels, bound_once)?;
            }
            check(program, *body, scope, seen_labels, bound_once)?;
            scope.truncate(mark);
        }
        ExprKind::Lambda(lam) => {
            let mark = scope.len();
            for v in lam.params.iter().chain(lam.rest.iter()) {
                if !matches!(program.var(*v).binder, Binder::Lambda(_)) {
                    return Err(err(
                        label,
                        format!("{v} bound by lambda but marked otherwise"),
                    ));
                }
                bind(*v, label, scope, bound_once)?;
            }
            check(program, lam.body, scope, seen_labels, bound_once)?;
            scope.truncate(mark);
        }
        ExprKind::ClRef(e, _) => {
            check(program, *e, scope, seen_labels, bound_once)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LambdaInfo, VarInfo};
    use crate::consts::Const;
    use crate::intern::Interner;
    use crate::parse_and_lower;

    #[test]
    fn lowered_programs_validate() {
        for src in [
            "1",
            "(lambda (x) x)",
            "(let ((x 1) (y 2)) (+ x y))",
            "(letrec ((f (lambda (n) (if (zero? n) 0 (f (- n 1)))))) (f 3))",
            "(define (g a) (cons a a)) (g 1)",
        ] {
            let p = parse_and_lower(src).unwrap();
            assert!(validate(&p).is_ok(), "{src}");
        }
    }

    #[test]
    fn rejects_unbound_variable() {
        let mut interner = Interner::new();
        let x = interner.intern("x");
        let mut p = crate::Program::new(interner);
        let v = p.add_var(VarInfo {
            name: x,
            binder: Binder::Lambda(Label(1)),
            top_level: false,
        });
        let r = p.add_expr(ExprKind::Var(v));
        p.set_root(r);
        let e = validate(&p).unwrap_err();
        assert!(e.message.contains("unbound"));
    }

    #[test]
    fn rejects_shared_labels() {
        let mut p = crate::Program::new(Interner::new());
        let one = p.add_expr(ExprKind::Const(Const::Int(1)));
        let b = p.add_expr(ExprKind::Begin(vec![one, one]));
        p.set_root(b);
        let e = validate(&p).unwrap_err();
        assert!(e.message.contains("two parents"));
    }

    #[test]
    fn rejects_letrec_non_lambda_rhs() {
        let mut interner = Interner::new();
        let f = interner.intern("f");
        let mut p = crate::Program::new(interner);
        let one = p.add_expr(ExprKind::Const(Const::Int(1)));
        let body = p.add_expr(ExprKind::Const(Const::Int(2)));
        let v = p.add_var(VarInfo {
            name: f,
            binder: Binder::Letrec(Label(2)),
            top_level: false,
        });
        let lr = p.add_expr(ExprKind::Letrec(vec![(v, one)], body));
        p.set_root(lr);
        let e = validate(&p).unwrap_err();
        assert!(e.message.contains("not a lambda"));
    }

    #[test]
    fn rejects_double_binding() {
        let mut interner = Interner::new();
        let x = interner.intern("x");
        let mut p = crate::Program::new(interner);
        let v = p.add_var(VarInfo {
            name: x,
            binder: Binder::Lambda(Label(1)),
            top_level: false,
        });
        let body = p.add_expr(ExprKind::Var(v));
        let inner = p.add_expr(ExprKind::Lambda(LambdaInfo {
            params: vec![v],
            rest: None,
            body,
        }));
        // Rebind the same VarId in an enclosing lambda.
        let outer = p.add_expr(ExprKind::Lambda(LambdaInfo {
            params: vec![v],
            rest: None,
            body: inner,
        }));
        p.set_root(outer);
        assert!(validate(&p).is_err());
    }

    #[test]
    fn rejects_bad_prim_arity() {
        let mut p = crate::Program::new(Interner::new());
        let one = p.add_expr(ExprKind::Const(Const::Int(1)));
        let c = p.add_expr(ExprKind::Prim(crate::PrimOp::Cons, vec![one]));
        p.set_root(c);
        let e = validate(&p).unwrap_err();
        assert!(e.message.contains("applied to 1 args"));
    }
}
