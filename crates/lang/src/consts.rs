//! Constants of the core language.

use crate::intern::{Interner, Sym};
use std::fmt;

/// A literal constant.
///
/// Floats are stored as raw bits so that `Const` can be `Eq`/`Hash` (needed
/// because constants appear inside abstract values and interned AST nodes);
/// use [`Const::as_f64`] to recover the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Const {
    /// `#t` / `#f`.
    Bool(bool),
    /// Exact integer.
    Int(i64),
    /// Inexact real, stored as bits.
    Float(u64),
    /// Character.
    Char(char),
    /// String literal (interned).
    Str(Sym),
    /// Symbol literal (interned). Symbols stay precise in the abstract
    /// domain, which is what lets `case` dispatch prune.
    Symbol(Sym),
    /// The empty list.
    Nil,
    /// The unspecified value returned by side-effecting operations.
    Unspecified,
}

impl Const {
    /// Builds a float constant.
    pub fn float(x: f64) -> Const {
        Const::Float(x.to_bits())
    }

    /// Recovers a float value, if this constant is a float.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Const::Float(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// True for `#f` — the only false value in Scheme.
    pub fn is_false(self) -> bool {
        self == Const::Bool(false)
    }

    /// Renders the constant using `interner` for strings and symbols.
    pub fn display<'a>(self, interner: &'a Interner) -> ConstDisplay<'a> {
        ConstDisplay {
            konst: self,
            interner,
        }
    }
}

/// Helper returned by [`Const::display`].
#[derive(Debug)]
pub struct ConstDisplay<'a> {
    konst: Const,
    interner: &'a Interner,
}

impl fmt::Display for ConstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.konst {
            Const::Bool(true) => write!(f, "#t"),
            Const::Bool(false) => write!(f, "#f"),
            Const::Int(n) => write!(f, "{n}"),
            Const::Float(bits) => write!(f, "{}", f64::from_bits(bits)),
            Const::Char(c) => write!(f, "#\\{c}"),
            Const::Str(s) => write!(f, "{:?}", self.interner.name(s)),
            Const::Symbol(s) => write!(f, "'{}", self.interner.name(s)),
            Const::Nil => write!(f, "'()"),
            Const::Unspecified => write!(f, "#!unspecified"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip() {
        let c = Const::float(2.5);
        assert_eq!(c.as_f64(), Some(2.5));
        assert_eq!(Const::Int(1).as_f64(), None);
    }

    #[test]
    fn only_false_is_false() {
        assert!(Const::Bool(false).is_false());
        assert!(!Const::Bool(true).is_false());
        assert!(!Const::Nil.is_false());
        assert!(!Const::Int(0).is_false());
    }

    #[test]
    fn display_uses_interner() {
        let mut i = Interner::new();
        let s = i.intern("hello");
        assert_eq!(Const::Symbol(s).display(&i).to_string(), "'hello");
        assert_eq!(Const::Str(s).display(&i).to_string(), "\"hello\"");
        assert_eq!(Const::Bool(true).display(&i).to_string(), "#t");
    }
}
