//! Run-time check elimination — the optimization of the companion paper
//! ("Effective Flow Analysis for Avoiding Run-Time Checks", SAS '95) that
//! §6 of *Flow-directed Inlining* proposes combining with inlining:
//! "This combination should yield significant performance improvements
//! without compromising safety."
//!
//! A safe implementation of a dynamically-typed language tags every value
//! and checks the tags of primitive arguments (`car` checks for a pair,
//! `+` checks for numbers, …). This pass consults the same flow analysis
//! the inliner uses: a check whose argument's abstract value is contained in
//! the required kind can never fail, so the tag test is eliminated. The
//! result is a set of `(primitive label, argument index)` pairs that the
//! [`fdi_vm`](../fdi_vm) cost model exempts from its per-check charge —
//! safety is preserved because only *provably* redundant checks go.
//!
//! Because inlining specializes procedures per call site, re-analyzing the
//! inlined program proves more arguments well-typed than the original — the
//! measurable form of §6's claim (see `cargo run -p fdi-bench --bin
//! checks_experiment`).
//!
//! # Examples
//!
//! ```
//! use fdi_cfa::{analyze, Polyvariance};
//! use fdi_checks::eliminate_checks;
//!
//! let p = fdi_lang::parse_and_lower("(+ 1 (car (cons 2 '())))").unwrap();
//! let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
//! let elim = eliminate_checks(&p, &flow);
//! // All three checks (two for +, one for car) are provably redundant.
//! assert_eq!(elim.report.checks_total, 3);
//! assert_eq!(elim.report.eliminated, 3);
//! ```

use fdi_cfa::{AbsConst, AbsVal, Ctx, FlowAnalysis, ValSet};
use fdi_lang::{ArgKind, ExprKind, Label, Program};
use std::collections::HashSet;

/// Summary counts of one elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Static checked argument positions in the program.
    pub checks_total: usize,
    /// Positions proven safe (check eliminated).
    pub eliminated: usize,
    /// Positions whose argument was never reached by the analysis (dead
    /// code; trivially safe, counted inside `eliminated` as well).
    pub dead: usize,
}

impl CheckReport {
    /// Fraction of static checks eliminated (0 when there are none).
    ///
    /// # Examples
    ///
    /// ```
    /// let r = fdi_checks::CheckReport { checks_total: 4, eliminated: 3, dead: 0 };
    /// assert!((r.ratio() - 0.75).abs() < 1e-9);
    /// ```
    pub fn ratio(&self) -> f64 {
        if self.checks_total == 0 {
            0.0
        } else {
            self.eliminated as f64 / self.checks_total as f64
        }
    }
}

/// The result: which `(prim label, argument index)` tag checks are
/// redundant.
#[derive(Debug, Clone, Default)]
pub struct CheckElim {
    /// Proven-safe argument positions.
    pub safe: HashSet<(Label, usize)>,
    /// Counts.
    pub report: CheckReport,
}

/// Does every abstract value in `vals` lie within `kind`?
///
/// An empty set means the argument is never evaluated — vacuously safe.
/// `Int` is approximated by `Num` (the abstract domain merges all numbers,
/// as the paper's does), so integer-only checks eliminate whenever the
/// argument is numeric; this matches the companion paper's treatment.
pub fn kind_covers(kind: ArgKind, vals: &ValSet) -> bool {
    vals.iter().all(|v| match kind {
        ArgKind::Num | ArgKind::Int => matches!(v, AbsVal::Const(AbsConst::Num)),
        ArgKind::Pair => matches!(v, AbsVal::Pair(..)),
        ArgKind::Vector => matches!(v, AbsVal::Vector(..)),
        ArgKind::Str => matches!(v, AbsVal::Const(AbsConst::Str)),
        ArgKind::Char => matches!(v, AbsVal::Const(AbsConst::Char)),
        ArgKind::Proc => matches!(v, AbsVal::Clo(_)),
    })
}

/// Runs check elimination over every reachable primitive application.
///
/// The program must be the one `flow` was computed for.
pub fn eliminate_checks(program: &Program, flow: &FlowAnalysis) -> CheckElim {
    let mut out = CheckElim::default();
    for label in program.reachable() {
        let ExprKind::Prim(p, args) = program.expr(label) else {
            continue;
        };
        for &(idx, kind) in p.checked_args() {
            let positions: Vec<usize> = if idx == u8::MAX {
                (0..args.len()).collect()
            } else if (idx as usize) < args.len() {
                vec![idx as usize]
            } else {
                Vec::new() // optional argument not supplied
            };
            for pos in positions {
                out.report.checks_total += 1;
                let vals = flow.values(args[pos], Ctx::Top);
                if vals.is_empty() {
                    out.report.dead += 1;
                    out.report.eliminated += 1;
                    out.safe.insert((label, pos));
                } else if kind_covers(kind, &vals) {
                    out.report.eliminated += 1;
                    out.safe.insert((label, pos));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_cfa::{analyze, Polyvariance};

    fn run(src: &str) -> (Program, CheckElim) {
        let p = fdi_lang::parse_and_lower(src).unwrap();
        let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
        let elim = eliminate_checks(&p, &flow);
        (p, elim)
    }

    #[test]
    fn constant_arithmetic_is_check_free() {
        let (_, elim) = run("(+ 1 2)");
        assert_eq!(elim.report.checks_total, 2);
        assert_eq!(elim.report.eliminated, 2);
        assert!((elim.report.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn car_of_known_pair_is_check_free() {
        let (_, elim) = run("(car (cons 1 2))");
        assert_eq!(elim.report.checks_total, 1);
        assert_eq!(elim.report.eliminated, 1);
    }

    #[test]
    fn split_contexts_eliminate_even_mixed_callers() {
        // Two call sites with different argument types: polymorphic
        // splitting analyzes f's body per call site, and the conditional
        // keeps each branch's checks precise — everything eliminates.
        let (_, elim) = run("(define (f x) (if (pair? x) (car x) (+ x 1)))
             (cons (f (cons 1 2)) (f 3))");
        assert_eq!(
            elim.report.eliminated, elim.report.checks_total,
            "{:?}",
            elim.report
        );
    }

    #[test]
    fn unknown_typed_argument_keeps_its_check() {
        // A value that is number-or-pair within a single context defeats
        // the analysis: the checks must stay.
        let (_, elim) = run("(define (f x) (if (pair? x) (car x) (+ x 1)))
             (f (if (zero? (random 2)) 3 (cons 1 2)))");
        assert!(
            elim.report.eliminated < elim.report.checks_total,
            "{:?}",
            elim.report
        );
    }

    #[test]
    fn precise_flow_eliminates_after_split() {
        // With polymorphic splitting the two uses of id are distinguished,
        // but the checks are decided at the union contour: id's parameter
        // merges num and pair, so (car (id p)) keeps its check while the
        // outer (+ ... 0) on a number result... the conservative union
        // behaviour is what the §6 combination with inlining improves.
        let (_, elim) = run("(define (id x) x)
             (cons (+ (id 1) 0) (car (id (cons 2 3))))");
        assert!(elim.report.checks_total >= 3);
    }

    #[test]
    fn inlining_improves_elimination() {
        // The §6 claim in miniature: after inlining + simplification the
        // re-analysis proves strictly more checks safe.
        let src = "
            (define (add a b) (+ a b))
            (define (pick f) (f 1 2))
            (cons (pick add) (add (car (cons 4 '())) 5))";
        let p = fdi_lang::parse_and_lower(src).unwrap();
        let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
        let before = eliminate_checks(&p, &flow);
        let (inlined, _) =
            fdi_inline::inline_program(&p, &flow, &fdi_inline::InlineConfig::with_threshold(300));
        let (simple, _) = fdi_simplify::simplify(&inlined);
        let flow2 = analyze(&simple, Polyvariance::PolymorphicSplitting);
        let after = eliminate_checks(&simple, &flow2);
        // The inlined program may have *folded* checked primitives away
        // entirely (checks_total can even reach 0); the invariant is that
        // the number of *remaining* dynamic check sites never grows.
        let before_remaining = before.report.checks_total - before.report.eliminated;
        let after_remaining = after.report.checks_total - after.report.eliminated;
        assert!(
            after_remaining <= before_remaining,
            "inlining must not lose check precision: {:?} vs {:?}",
            before.report,
            after.report
        );
    }

    #[test]
    fn dead_code_checks_are_vacuously_safe() {
        let (_, elim) = run("(if #t 1 (car '()))");
        assert_eq!(elim.report.checks_total, 1);
        assert_eq!(elim.report.dead, 1);
        assert_eq!(elim.report.eliminated, 1);
    }

    #[test]
    fn kind_covers_matrix() {
        use fdi_cfa::ValSet;
        let num = ValSet::singleton(AbsVal::Const(AbsConst::Num));
        assert!(kind_covers(ArgKind::Num, &num));
        assert!(kind_covers(ArgKind::Int, &num));
        assert!(!kind_covers(ArgKind::Pair, &num));
        assert!(
            kind_covers(ArgKind::Pair, &ValSet::new()),
            "⊥ is vacuously safe"
        );
        let mut mixed = num.clone();
        mixed.insert(AbsVal::Const(AbsConst::Nil));
        assert!(!kind_covers(ArgKind::Num, &mixed));
    }

    #[test]
    fn vector_and_string_checks() {
        let (_, elim) = run("(vector-ref (vector 1 2) 0)");
        // vector check + index check, both provable.
        assert_eq!(elim.report.checks_total, 2);
        assert_eq!(elim.report.eliminated, 2);
        let (_, elim) = run("(string-length \"abc\")");
        assert_eq!(elim.report.eliminated, 1);
    }
}
