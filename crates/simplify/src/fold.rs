//! Constant folding for primitive applications (§3.8 "simple constant
//! propagation and constant folding").

use fdi_lang::{Const, PrimOp};

/// Attempts to fold `prim` applied to constant arguments.
///
/// Folding is conservative: anything that could signal a run-time error
/// (division by zero, overflow, `car` of a non-pair) is left unfolded so the
/// simplifier never changes an erroring program into a non-erroring one.
pub fn fold_prim(prim: PrimOp, args: &[Const]) -> Option<Const> {
    use Const::*;
    use PrimOp::*;
    let ints = || -> Option<Vec<i64>> {
        args.iter()
            .map(|c| match c {
                Int(n) => Some(*n),
                _ => None,
            })
            .collect()
    };
    let nums = || -> Option<Vec<f64>> {
        args.iter()
            .map(|c| match c {
                Int(n) => Some(*n as f64),
                Float(_) => c.as_f64(),
                _ => None,
            })
            .collect()
    };
    let any_float = args.iter().any(|c| matches!(c, Float(_)));
    let bool_of = |b: bool| Some(Bool(b));
    match prim {
        Add => {
            if let (Some(is), false) = (ints(), any_float) {
                let mut acc: i64 = 0;
                for n in is {
                    acc = acc.checked_add(n)?;
                }
                Some(Int(acc))
            } else {
                nums().map(|ns| Const::float(ns.iter().sum()))
            }
        }
        Mul => {
            if let (Some(is), false) = (ints(), any_float) {
                let mut acc: i64 = 1;
                for n in is {
                    acc = acc.checked_mul(n)?;
                }
                Some(Int(acc))
            } else {
                nums().map(|ns| Const::float(ns.iter().product()))
            }
        }
        Sub => {
            if let (Some(is), false) = (ints(), any_float) {
                if is.len() == 1 {
                    is[0].checked_neg().map(Int)
                } else {
                    let mut acc = is[0];
                    for &n in &is[1..] {
                        acc = acc.checked_sub(n)?;
                    }
                    Some(Int(acc))
                }
            } else {
                let ns = nums()?;
                if ns.len() == 1 {
                    Some(Const::float(-ns[0]))
                } else {
                    Some(Const::float(ns[1..].iter().fold(ns[0], |a, b| a - b)))
                }
            }
        }
        Quotient => {
            let is = ints()?;
            if is[1] == 0 {
                return None;
            }
            is[0].checked_div(is[1]).map(Int)
        }
        Remainder => {
            let is = ints()?;
            if is[1] == 0 {
                return None;
            }
            is[0].checked_rem(is[1]).map(Int)
        }
        Modulo => {
            let is = ints()?;
            if is[1] == 0 || is[1] == i64::MIN || is[0] == i64::MIN {
                return None;
            }
            Some(Int(
                is[0].rem_euclid(is[1].abs()) * if is[1] < 0 { -1 } else { 1 }
            ))
        }
        Abs => {
            if let Some(is) = ints() {
                is[0].checked_abs().map(Int)
            } else {
                nums().map(|ns| Const::float(ns[0].abs()))
            }
        }
        Min => {
            if let (Some(is), false) = (ints(), any_float) {
                is.into_iter().min().map(Int)
            } else {
                nums().map(|ns| Const::float(ns.into_iter().fold(f64::INFINITY, f64::min)))
            }
        }
        Max => {
            if let (Some(is), false) = (ints(), any_float) {
                is.into_iter().max().map(Int)
            } else {
                nums().map(|ns| Const::float(ns.into_iter().fold(f64::NEG_INFINITY, f64::max)))
            }
        }
        NumEq => cmp_chain(args, |a, b| a == b),
        Lt => cmp_chain(args, |a, b| a < b),
        Gt => cmp_chain(args, |a, b| a > b),
        Le => cmp_chain(args, |a, b| a <= b),
        Ge => cmp_chain(args, |a, b| a >= b),
        ZeroP => num1(args).map(|x| Bool(x == 0.0)),
        PositiveP => num1(args).map(|x| Bool(x > 0.0)),
        NegativeP => num1(args).map(|x| Bool(x < 0.0)),
        EvenP => match args[0] {
            Int(n) => bool_of(n % 2 == 0),
            _ => None,
        },
        OddP => match args[0] {
            Int(n) => bool_of(n % 2 != 0),
            _ => None,
        },
        Not => bool_of(args[0].is_false()),
        NullP => bool_of(args[0] == Nil),
        PairP | VectorP | ProcedureP => bool_of(false),
        NumberP | IntegerP => match args[0] {
            Int(_) => bool_of(true),
            Float(_) => bool_of(prim == NumberP),
            _ => bool_of(false),
        },
        BooleanP => bool_of(matches!(args[0], Bool(_))),
        SymbolP => bool_of(matches!(args[0], Symbol(_))),
        StringP => bool_of(matches!(args[0], Str(_))),
        CharP => bool_of(matches!(args[0], Char(_))),
        EqP | EqvP | EqualP => match (&args[0], &args[1]) {
            // Strings: eq?/eqv? compare identity, which constant folding
            // cannot decide; equal? compares contents.
            (Str(a), Str(b)) => {
                if prim == EqualP {
                    bool_of(a == b)
                } else {
                    None
                }
            }
            (a, b) => bool_of(a == b),
        },
        _ => None,
    }
}

fn num1(args: &[Const]) -> Option<f64> {
    match args[0] {
        Const::Int(n) => Some(n as f64),
        Const::Float(_) => args[0].as_f64(),
        _ => None,
    }
}

fn cmp_chain(args: &[Const], f: impl Fn(f64, f64) -> bool) -> Option<Const> {
    let ns: Option<Vec<f64>> = args
        .iter()
        .map(|c| match c {
            Const::Int(n) => Some(*n as f64),
            Const::Float(_) => c.as_f64(),
            _ => None,
        })
        .collect();
    let ns = ns?;
    Some(Const::Bool(ns.windows(2).all(|w| f(w[0], w[1]))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_lang::Interner;

    #[test]
    fn integer_arithmetic() {
        assert_eq!(
            fold_prim(PrimOp::Add, &[Const::Int(2), Const::Int(3)]),
            Some(Const::Int(5))
        );
        assert_eq!(
            fold_prim(PrimOp::Sub, &[Const::Int(2)]),
            Some(Const::Int(-2))
        );
        assert_eq!(
            fold_prim(PrimOp::Mul, &[Const::Int(4), Const::Int(5), Const::Int(2)]),
            Some(Const::Int(40))
        );
        assert_eq!(
            fold_prim(PrimOp::Quotient, &[Const::Int(7), Const::Int(2)]),
            Some(Const::Int(3))
        );
    }

    #[test]
    fn division_by_zero_does_not_fold() {
        assert_eq!(
            fold_prim(PrimOp::Quotient, &[Const::Int(7), Const::Int(0)]),
            None
        );
        assert_eq!(
            fold_prim(PrimOp::Remainder, &[Const::Int(7), Const::Int(0)]),
            None
        );
        assert_eq!(
            fold_prim(PrimOp::Modulo, &[Const::Int(7), Const::Int(0)]),
            None
        );
    }

    #[test]
    fn overflow_does_not_fold() {
        assert_eq!(
            fold_prim(PrimOp::Add, &[Const::Int(i64::MAX), Const::Int(1)]),
            None
        );
        assert_eq!(fold_prim(PrimOp::Abs, &[Const::Int(i64::MIN)]), None);
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(
            fold_prim(PrimOp::Add, &[Const::float(1.5), Const::Int(2)]),
            Some(Const::float(3.5))
        );
    }

    #[test]
    fn comparison_chains() {
        assert_eq!(
            fold_prim(PrimOp::Lt, &[Const::Int(1), Const::Int(2), Const::Int(3)]),
            Some(Const::Bool(true))
        );
        assert_eq!(
            fold_prim(PrimOp::Lt, &[Const::Int(1), Const::Int(3), Const::Int(2)]),
            Some(Const::Bool(false))
        );
    }

    #[test]
    fn predicates() {
        assert_eq!(
            fold_prim(PrimOp::NullP, &[Const::Nil]),
            Some(Const::Bool(true))
        );
        assert_eq!(
            fold_prim(PrimOp::NullP, &[Const::Int(0)]),
            Some(Const::Bool(false))
        );
        assert_eq!(
            fold_prim(PrimOp::Not, &[Const::Bool(false)]),
            Some(Const::Bool(true))
        );
        assert_eq!(
            fold_prim(PrimOp::ZeroP, &[Const::Int(0)]),
            Some(Const::Bool(true))
        );
        assert_eq!(
            fold_prim(PrimOp::EvenP, &[Const::Int(3)]),
            Some(Const::Bool(false))
        );
    }

    #[test]
    fn eqv_on_constants() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(
            fold_prim(PrimOp::EqvP, &[Const::Symbol(a), Const::Symbol(a)]),
            Some(Const::Bool(true))
        );
        assert_eq!(
            fold_prim(PrimOp::EqvP, &[Const::Symbol(a), Const::Symbol(b)]),
            Some(Const::Bool(false))
        );
        // eq? on strings is identity — not folded.
        let s = i.intern("s");
        assert_eq!(
            fold_prim(PrimOp::EqP, &[Const::Str(s), Const::Str(s)]),
            None
        );
        assert_eq!(
            fold_prim(PrimOp::EqualP, &[Const::Str(s), Const::Str(s)]),
            Some(Const::Bool(true))
        );
    }

    #[test]
    fn non_constant_kinds_do_not_fold_arithmetic() {
        assert_eq!(fold_prim(PrimOp::Add, &[Const::Nil, Const::Int(1)]), None);
    }
}
