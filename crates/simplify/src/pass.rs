//! The rebuild pass: one bottom-up copy of the program applying the §3.8
//! local simplifications.

use crate::effects::discardable;
use crate::fold::fold_prim;
use fdi_lang::{Binder, Const, ExprKind, Label, LambdaInfo, PrimOp, Program, VarId, VarInfo};
use std::collections::{HashMap, HashSet};

/// Counters for one simplification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// β-reductions turned into `let`s (direct λ applications).
    pub betas: usize,
    /// Primitive applications folded to constants.
    pub folds: usize,
    /// Conditionals with a constant test reduced to one branch.
    pub if_prunes: usize,
    /// `let`/`letrec` bindings removed (dead or propagated).
    pub dead_bindings: usize,
    /// Constant/variable copy propagations.
    pub propagations: usize,
    /// Effect-free `begin` elements discarded.
    pub begin_drops: usize,
    /// Unused formal parameters removed from known procedures.
    pub formals_removed: usize,
    /// Rebuild iterations executed.
    pub iterations: usize,
}

impl SimplifyStats {
    fn changed(&self) -> bool {
        self.betas
            + self.folds
            + self.if_prunes
            + self.dead_bindings
            + self.propagations
            + self.begin_drops
            + self.formals_removed
            > 0
    }

    fn absorb(&mut self, other: SimplifyStats) {
        self.betas += other.betas;
        self.folds += other.folds;
        self.if_prunes += other.if_prunes;
        self.dead_bindings += other.dead_bindings;
        self.propagations += other.propagations;
        self.begin_drops += other.begin_drops;
        self.formals_removed += other.formals_removed;
    }

    /// Folds another run's counters into this one, iterations included —
    /// how the pass manager accumulates a repeated simplify step. Merging
    /// into a default value reproduces `other` exactly.
    pub fn merge(&mut self, other: SimplifyStats) {
        self.absorb(other);
        self.iterations += other.iterations;
    }
}

/// Runs rebuild passes to a fixpoint (bounded by `max_iters`).
///
/// # Examples
///
/// ```
/// let p = fdi_lang::parse_and_lower("(if (null? '()) (+ 20 22) 0)").unwrap();
/// let (out, stats) = fdi_simplify::simplify_n(&p, 4);
/// assert_eq!(fdi_lang::unparse(&out).to_string(), "42");
/// assert!(stats.if_prunes >= 1);
/// ```
pub fn simplify_n(program: &Program, max_iters: usize) -> (Program, SimplifyStats) {
    let mut total = SimplifyStats::default();
    let mut current = program.clone();
    for _ in 0..max_iters {
        let (next, stats) = rebuild_once(&current);
        total.absorb(stats);
        total.iterations += 1;
        current = next;
        if !stats.changed() {
            break;
        }
    }
    (current, total)
}

fn rebuild_once(old: &Program) -> (Program, SimplifyStats) {
    let mut s = Simplifier::new(old);
    let root = s.copy(old.root());
    s.out.set_root(root);
    (s.out, s.stats)
}

#[derive(Debug, Clone, Copy)]
enum Subst {
    /// Replace with a constant.
    Const(Const),
    /// Replace with a reference to a new-program variable.
    Var(VarId),
    /// Replace with a fresh copy of an old-program λ (single-use bindings).
    LambdaAt(Label),
}

struct Simplifier<'p> {
    old: &'p Program,
    out: Program,
    /// Variables in pinned capture lists: never substituted or dropped,
    /// so cl-ref layouts stay valid.
    pinned_vars: HashSet<VarId>,
    subst: HashMap<VarId, Subst>,
    var_map: HashMap<VarId, VarId>,
    uses: HashMap<VarId, usize>,
    /// letrec-bound procedures whose unused formals are being removed:
    /// var → keep-mask over original parameters.
    param_masks: HashMap<VarId, Vec<bool>>,
    stats: SimplifyStats,
}

impl<'p> Simplifier<'p> {
    fn new(old: &'p Program) -> Simplifier<'p> {
        let mut uses: HashMap<VarId, usize> = HashMap::new();
        let mut operator_uses: HashMap<VarId, usize> = HashMap::new();
        let mut rhs_of: HashMap<VarId, Label> = HashMap::new();
        let reachable = old.reachable();
        for &l in &reachable {
            match old.expr(l) {
                ExprKind::Var(v) => {
                    *uses.entry(*v).or_default() += 1;
                }
                ExprKind::Let(bindings, _) | ExprKind::Letrec(bindings, _) => {
                    for &(v, e) in bindings {
                        rhs_of.insert(v, e);
                    }
                }
                _ => {}
            }
        }
        for &l in &reachable {
            if let ExprKind::Call(parts) = old.expr(l) {
                if let ExprKind::Var(v) = old.expr(parts[0]) {
                    if let Some(&rhs) = rhs_of.get(v) {
                        if let ExprKind::Lambda(lam) = old.expr(rhs) {
                            if lam.rest.is_none() && lam.params.len() == parts.len() - 1 {
                                *operator_uses.entry(*v).or_default() += 1;
                            }
                        }
                    }
                }
            }
        }
        // Unused-formal removal (§2.3): a parameter of a known procedure is
        // *useless* when its value can only flow into useless parameters.
        // Known procedures are letrec-bound λs whose every use is an
        // exact-arity operator position. Computed as a fixpoint: seed every
        // parameter of a known procedure as useless, then mark essential any
        // parameter with a use outside a droppable argument position (or
        // whose argument at some call site has effects), propagating through
        // direct argument flows until stable.
        // Pinned capture-list entries (§3.5 target language) are uses: the
        // closure record materializes them even without a direct reference.
        let pinned_vars: HashSet<VarId> = old.pinned_capture_vars().collect();
        for &v in &pinned_vars {
            *uses.entry(v).or_default() += 1;
        }
        let param_masks = compute_param_masks(old, &reachable, &uses, &operator_uses, &rhs_of);
        Simplifier {
            old,
            out: Program::new(old.interner().clone()),
            pinned_vars,
            subst: HashMap::new(),
            var_map: HashMap::new(),
            uses,
            param_masks,
            stats: SimplifyStats::default(),
        }
    }

    fn konst(&mut self, c: Const) -> Label {
        self.out.add_expr(ExprKind::Const(c))
    }

    /// The λ an old expression evaluates to syntactically, following
    /// single-use substitutions.
    fn resolve_lambda(&self, l: Label) -> Option<Label> {
        match self.old.expr(l) {
            ExprKind::Lambda(_) => Some(l),
            ExprKind::Var(v) => match self.subst.get(v) {
                Some(Subst::LambdaAt(ol)) => Some(*ol),
                _ => None,
            },
            _ => None,
        }
    }

    fn copy(&mut self, l: Label) -> Label {
        match self.old.expr(l).clone() {
            ExprKind::Const(c) => self.konst(c),
            ExprKind::Var(v) => match self.subst.get(&v).copied() {
                Some(Subst::Const(c)) => {
                    self.stats.propagations += 1;
                    self.konst(c)
                }
                Some(Subst::Var(nv)) => {
                    self.stats.propagations += 1;
                    self.out.add_expr(ExprKind::Var(nv))
                }
                Some(Subst::LambdaAt(ol)) => {
                    self.stats.propagations += 1;
                    self.copy(ol)
                }
                None => {
                    let nv = *self
                        .var_map
                        .get(&v)
                        .unwrap_or_else(|| panic!("unmapped variable {v}"));
                    self.out.add_expr(ExprKind::Var(nv))
                }
            },
            ExprKind::Prim(p, args) => {
                let new_args: Vec<Label> = args.iter().map(|&a| self.copy(a)).collect();
                let consts: Option<Vec<Const>> = new_args
                    .iter()
                    .map(|&a| match self.out.expr(a) {
                        ExprKind::Const(c) => Some(*c),
                        _ => None,
                    })
                    .collect();
                if let Some(cs) = consts {
                    if let Some(folded) = fold_prim(p, &cs) {
                        self.stats.folds += 1;
                        return self.konst(folded);
                    }
                }
                if let Some(simpler) = self.algebraic(p, &new_args) {
                    self.stats.folds += 1;
                    return simpler;
                }
                self.out.add_expr(ExprKind::Prim(p, new_args))
            }
            ExprKind::Call(parts) => self.copy_call(&parts),
            ExprKind::Apply(f, arg) => {
                let nf = self.copy(f);
                let na = self.copy(arg);
                self.out.add_expr(ExprKind::Apply(nf, na))
            }
            ExprKind::Begin(parts) => self.copy_begin(&parts),
            ExprKind::If(c, t, e) => {
                let nc = self.copy(c);
                if let ExprKind::Const(k) = self.out.expr(nc) {
                    let k = *k;
                    self.stats.if_prunes += 1;
                    let branch = if k.is_false() { e } else { t };
                    return self.copy(branch);
                }
                let nt = self.copy(t);
                let ne = self.copy(e);
                self.out.add_expr(ExprKind::If(nc, nt, ne))
            }
            ExprKind::Let(bindings, body) => self.copy_let(&bindings, body),
            ExprKind::Letrec(bindings, body) => self.copy_letrec(l, &bindings, body),
            ExprKind::Lambda(lam) => self.copy_lambda(l, &lam, &[]),
            ExprKind::ClRef(e, n) => {
                let ne = self.copy(e);
                self.out.add_expr(ExprKind::ClRef(ne, n))
            }
        }
    }

    /// β-conversion: `((λ (x …) body) e …)` becomes `(let ((x e) …) body)`.
    /// Extra arguments of a variadic callee build the rest list explicitly.
    /// Algebraic identities over already-copied arguments (one operand
    /// constant). Only identities valid for *numbers* are applied, and only
    /// when the non-constant operand provably evaluates to a number cannot
    /// be established syntactically — so we restrict to identities that are
    /// also type-preserving errors: `(+ x 0)`, `(- x 0)`, `(* x 1)` still
    /// require `x` numeric at run time, exactly like the original, because
    /// the remaining operand keeps its own evaluation. We therefore rewrite
    /// to `(+ x 0)` → `(+ x)`-style single-operand forms only where the
    /// primitive accepts them, or keep the form but simplify nested `not`.
    fn algebraic(&mut self, p: PrimOp, args: &[Label]) -> Option<Label> {
        use fdi_lang::Const as C;
        let konst_of = |l: Label, out: &Program| match out.expr(l) {
            ExprKind::Const(c) => Some(*c),
            _ => None,
        };
        match p {
            // (not (not e)) where e is itself a predicate result is just a
            // boolean normalization; general e is not (any value is truthy).
            // Safe special case: (not (null? e)) etc. keep as-is; only fold
            // (not #t)/(not #f) — already handled by fold_prim. Here:
            // (if-style) double negation over comparison prims.
            PrimOp::Not => {
                let inner = args[0];
                if let ExprKind::Prim(PrimOp::Not, inner_args) = self.out.expr(inner) {
                    let e = inner_args[0];
                    if let ExprKind::Prim(q, _) = self.out.expr(e) {
                        // The inner value is a genuine boolean: (not (not e)) ≡ e.
                        if matches!(
                            q,
                            PrimOp::Not
                                | PrimOp::NullP
                                | PrimOp::PairP
                                | PrimOp::VectorP
                                | PrimOp::NumberP
                                | PrimOp::IntegerP
                                | PrimOp::BooleanP
                                | PrimOp::SymbolP
                                | PrimOp::StringP
                                | PrimOp::CharP
                                | PrimOp::ProcedureP
                                | PrimOp::EqP
                                | PrimOp::EqvP
                                | PrimOp::EqualP
                                | PrimOp::NumEq
                                | PrimOp::Lt
                                | PrimOp::Gt
                                | PrimOp::Le
                                | PrimOp::Ge
                                | PrimOp::ZeroP
                                | PrimOp::EvenP
                                | PrimOp::OddP
                        ) {
                            return Some(e);
                        }
                    }
                }
                None
            }
            // (car (cons a b)) → a and (cdr (cons a b)) → b when the other
            // component is discardable *in the output program*.
            PrimOp::Car | PrimOp::Cdr => {
                let inner = args[0];
                if let ExprKind::Prim(PrimOp::Cons, cons_args) = self.out.expr(inner) {
                    let (keep, drop) = if p == PrimOp::Car {
                        (cons_args[0], cons_args[1])
                    } else {
                        (cons_args[1], cons_args[0])
                    };
                    if out_discardable(&self.out, drop) {
                        return Some(keep);
                    }
                }
                None
            }
            // Numeric identities where the result is exactly the other
            // operand and the run-time type obligation is preserved by the
            // remaining unary form: (+ x 0) → (+ x)? `+` with one argument
            // returns x but still checks it is numeric — except our `+`
            // implementation folds single args through numeric_fold, so the
            // check survives. (* x 1) likewise.
            PrimOp::Add if args.len() == 2 => {
                let z = C::Int(0);
                if konst_of(args[1], &self.out) == Some(z) {
                    return Some(
                        self.out
                            .add_expr(ExprKind::Prim(PrimOp::Add, vec![args[0]])),
                    );
                }
                if konst_of(args[0], &self.out) == Some(z) {
                    return Some(
                        self.out
                            .add_expr(ExprKind::Prim(PrimOp::Add, vec![args[1]])),
                    );
                }
                None
            }
            PrimOp::Mul if args.len() == 2 => {
                let one = C::Int(1);
                if konst_of(args[1], &self.out) == Some(one) {
                    return Some(
                        self.out
                            .add_expr(ExprKind::Prim(PrimOp::Mul, vec![args[0]])),
                    );
                }
                if konst_of(args[0], &self.out) == Some(one) {
                    return Some(
                        self.out
                            .add_expr(ExprKind::Prim(PrimOp::Mul, vec![args[1]])),
                    );
                }
                None
            }
            _ => None,
        }
    }

    fn copy_call(&mut self, parts: &[Label]) -> Label {
        if let Some(lam_label) = self.resolve_lambda(parts[0]) {
            let ExprKind::Lambda(lam) = self.old.expr(lam_label).clone() else {
                unreachable!()
            };
            let argc = parts.len() - 1;
            if lam.accepts(argc) {
                self.stats.betas += 1;
                let label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
                let mut bindings = Vec::new();
                for (i, &p) in lam.params.iter().enumerate() {
                    let ne = self.copy(parts[1 + i]);
                    let np = self.fresh_from(p, Binder::Let(label));
                    bindings.push((np, ne));
                }
                if let Some(r) = lam.rest {
                    let extras: Vec<Label> = parts[1 + lam.params.len()..]
                        .iter()
                        .map(|&e| self.copy(e))
                        .collect();
                    let mut list = self.konst(Const::Nil);
                    for e in extras.into_iter().rev() {
                        list = self
                            .out
                            .add_expr(ExprKind::Prim(fdi_lang::PrimOp::Cons, vec![e, list]));
                    }
                    let nr = self.fresh_from(r, Binder::Let(label));
                    bindings.push((nr, list));
                }
                let body = self.copy(lam.body);
                if bindings.is_empty() {
                    return body;
                }
                self.out.set_expr(label, ExprKind::Let(bindings, body));
                return label;
            }
        }
        // Unused-formal removal at the call site.
        if let ExprKind::Var(v) = self.old.expr(parts[0]) {
            if let Some(mask) = self.param_masks.get(v).cloned() {
                if mask.len() == parts.len() - 1 {
                    let can_drop = parts[1..]
                        .iter()
                        .zip(&mask)
                        .all(|(&a, &keep)| keep || discardable(self.old, a));
                    if can_drop {
                        let mut new_parts = vec![self.copy(parts[0])];
                        for (&a, &keep) in parts[1..].iter().zip(&mask) {
                            if keep {
                                new_parts.push(self.copy(a));
                            } else {
                                self.stats.formals_removed += 1;
                            }
                        }
                        return self.out.add_expr(ExprKind::Call(new_parts));
                    }
                }
            }
        }
        let new_parts: Vec<Label> = parts.iter().map(|&e| self.copy(e)).collect();
        self.out.add_expr(ExprKind::Call(new_parts))
    }

    fn copy_begin(&mut self, parts: &[Label]) -> Label {
        let mut kept: Vec<Label> = Vec::new();
        for (i, &e) in parts.iter().enumerate() {
            let last = i == parts.len() - 1;
            if !last && discardable(self.old, e) {
                self.stats.begin_drops += 1;
                continue;
            }
            let ne = self.copy(e);
            if !last {
                // Flatten nested begins and drop now-obviously-pure copies.
                if let ExprKind::Begin(inner) = self.out.expr(ne).clone() {
                    kept.extend(inner);
                    continue;
                }
                if matches!(self.out.expr(ne), ExprKind::Const(_) | ExprKind::Var(_)) {
                    self.stats.begin_drops += 1;
                    continue;
                }
            }
            kept.push(ne);
        }
        match kept.len() {
            0 => self.konst(Const::Unspecified),
            1 => kept[0],
            _ => self.out.add_expr(ExprKind::Begin(kept)),
        }
    }

    fn copy_let(&mut self, bindings: &[(VarId, Label)], body: Label) -> Label {
        // (let ((x e)) x) ≡ e
        if let [(x, e)] = bindings {
            if matches!(self.old.expr(body), ExprKind::Var(v) if v == x) {
                self.stats.dead_bindings += 1;
                return self.copy(*e);
            }
        }
        let label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
        let mut kept: Vec<(VarId, Label)> = Vec::new();
        for &(x, e) in bindings {
            let use_count = self.uses.get(&x).copied().unwrap_or(0);
            if self.pinned_vars.contains(&x) {
                // Pinned capture targets always stay materialized.
                let ne = self.copy(e);
                let nx = self.fresh_from(x, Binder::Let(label));
                kept.push((nx, ne));
                continue;
            }
            // Single-use λ: substitute at the use site (β will fire there).
            if use_count == 1 && matches!(self.old.expr(e), ExprKind::Lambda(_)) {
                self.subst.insert(x, Subst::LambdaAt(e));
                self.stats.dead_bindings += 1;
                continue;
            }
            if use_count == 0 && discardable(self.old, e) {
                self.stats.dead_bindings += 1;
                continue;
            }
            let ne = self.copy(e);
            match self.out.expr(ne) {
                ExprKind::Const(c) => {
                    self.subst.insert(x, Subst::Const(*c));
                    self.stats.dead_bindings += 1;
                }
                ExprKind::Var(nv) => {
                    self.subst.insert(x, Subst::Var(*nv));
                    self.stats.dead_bindings += 1;
                }
                _ => {
                    let nx = self.fresh_from(x, Binder::Let(label));
                    kept.push((nx, ne));
                }
            }
        }
        let nbody = self.copy(body);
        if kept.is_empty() {
            return nbody;
        }
        self.out.set_expr(label, ExprKind::Let(kept, nbody));
        label
    }

    fn copy_letrec(&mut self, l: Label, bindings: &[(VarId, Label)], body: Label) -> Label {
        // Liveness: a binding is live if reachable from the body's references
        // through the binding reference graph.
        let live = live_letrec_bindings(self.old, l, bindings, body);
        // A binding is *independent* when its right-hand side references no
        // variable of this letrec group; such bindings get the `let`
        // treatment (single-use substitution in particular), which is what
        // collapses the inliner's non-recursive `(letrec ((y λ)) (y …))`
        // wrappers into β-redexes.
        let group: HashSet<VarId> = bindings.iter().map(|&(v, _)| v).collect();
        let independent: Vec<bool> = bindings
            .iter()
            .map(|&(_, f)| !subtree_references(self.old, f, &group))
            .collect();
        let label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
        let mut kept: Vec<(VarId, VarId, Label)> = Vec::new(); // (old var, new var, old rhs)
        for (i, &(y, f)) in bindings.iter().enumerate() {
            if !live[i] && !self.pinned_vars.contains(&y) {
                self.stats.dead_bindings += 1;
                continue;
            }
            if independent[i]
                && self.uses.get(&y).copied().unwrap_or(0) == 1
                && matches!(self.old.expr(f), ExprKind::Lambda(_))
                && !self.param_masks.contains_key(&y)
                && !self.pinned_vars.contains(&y)
            {
                self.subst.insert(y, Subst::LambdaAt(f));
                self.stats.dead_bindings += 1;
                continue;
            }
            let ny = self.fresh_from(y, Binder::Letrec(label));
            kept.push((y, ny, f));
        }
        let mut new_bindings = Vec::new();
        for &(y, ny, f) in &kept {
            let ExprKind::Lambda(lam) = self.old.expr(f).clone() else {
                unreachable!("letrec rhs is a lambda")
            };
            let mask = self.param_masks.get(&y).cloned();
            let nf = self.copy_lambda(f, &lam, mask.as_deref().unwrap_or(&[]));
            new_bindings.push((ny, nf));
        }
        let nbody = self.copy(body);
        if new_bindings.is_empty() {
            return nbody;
        }
        self.out
            .set_expr(label, ExprKind::Letrec(new_bindings, nbody));
        label
    }

    /// Copies a λ; `drop_mask` marks parameters to remove (empty = keep all).
    fn copy_lambda(&mut self, old_label: Label, lam: &LambdaInfo, drop_mask: &[bool]) -> Label {
        let label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
        if let Some(pins) = self.old.pinned_captures(old_label) {
            let mapped: Vec<VarId> = pins
                .iter()
                .map(|z| {
                    *self
                        .var_map
                        .get(z)
                        .unwrap_or_else(|| panic!("pinned capture {z} unmapped"))
                })
                .collect();
            self.out.pin_captures(label, mapped);
        }
        let mut params = Vec::new();
        for (i, &p) in lam.params.iter().enumerate() {
            if !drop_mask.is_empty() && !drop_mask[i] {
                // Removed formal: no binding needed; the body never uses it.
                continue;
            }
            params.push(self.fresh_from(p, Binder::Lambda(label)));
        }
        let rest = lam.rest.map(|r| self.fresh_from(r, Binder::Lambda(label)));
        let body = self.copy(lam.body);
        self.out
            .set_expr(label, ExprKind::Lambda(LambdaInfo { params, rest, body }));
        label
    }

    fn fresh_from(&mut self, old_var: VarId, binder: Binder) -> VarId {
        let info = *self.old.var(old_var);
        let nv = self.out.add_var(VarInfo {
            name: info.name,
            binder,
            top_level: info.top_level,
        });
        self.var_map.insert(old_var, nv);
        nv
    }
}

/// Computes keep-masks for the unused-formal-elimination pass.
fn compute_param_masks(
    old: &Program,
    reachable: &[Label],
    uses: &HashMap<VarId, usize>,
    operator_uses: &HashMap<VarId, usize>,
    rhs_of: &HashMap<VarId, Label>,
) -> HashMap<VarId, Vec<bool>> {
    // Known procedures: letrec-bound λ, no rest parameter, every use in
    // operator position with exact arity.
    let mut known: HashMap<VarId, Vec<VarId>> = HashMap::new(); // fn var → params
    for &l in reachable {
        let ExprKind::Letrec(bindings, _) = old.expr(l) else {
            continue;
        };
        for &(y, f) in bindings {
            let ExprKind::Lambda(lam) = old.expr(f) else {
                continue;
            };
            if lam.rest.is_some() {
                continue;
            }
            let total = uses.get(&y).copied().unwrap_or(0);
            let ops = operator_uses.get(&y).copied().unwrap_or(0);
            if total > 0 && total == ops {
                known.insert(y, lam.params.clone());
            }
        }
    }
    if known.is_empty() {
        return HashMap::new();
    }
    let param_of: HashMap<VarId, (VarId, usize)> = known
        .iter()
        .flat_map(|(&y, params)| params.iter().enumerate().map(move |(i, &p)| (p, (y, i))))
        .collect();
    // Count, for each candidate parameter, how many of its uses are direct
    // argument occurrences at known-procedure calls, and record the flows.
    let mut direct_uses: HashMap<VarId, usize> = HashMap::new();
    let mut flows_into: HashMap<(VarId, usize), Vec<VarId>> = HashMap::new();
    let mut effectful_positions: HashSet<(VarId, usize)> = HashSet::new();
    for &l in reachable {
        let ExprKind::Call(parts) = old.expr(l) else {
            continue;
        };
        let ExprKind::Var(g) = old.expr(parts[0]) else {
            continue;
        };
        let Some(params) = known.get(g) else {
            continue;
        };
        if params.len() != parts.len() - 1 {
            continue;
        }
        for (j, &arg) in parts[1..].iter().enumerate() {
            if let ExprKind::Var(p) = old.expr(arg) {
                if param_of.contains_key(p) {
                    *direct_uses.entry(*p).or_default() += 1;
                    flows_into.entry((*g, j)).or_default().push(*p);
                    continue;
                }
            }
            // A non-parameter argument: droppable only when effect-free.
            if !discardable(old, arg) {
                effectful_positions.insert((*g, j));
            }
        }
    }
    // Fixpoint: start with parameters whose uses are all direct flows (or
    // none); essential-ness propagates backwards along flows.
    let mut essential: HashSet<VarId> = HashSet::new();
    let mut work: Vec<VarId> = Vec::new();
    for (&p, &(g, i)) in &param_of {
        let total = uses.get(&p).copied().unwrap_or(0);
        let direct = direct_uses.get(&p).copied().unwrap_or(0);
        if total > direct || effectful_positions.contains(&(g, i)) {
            essential.insert(p);
            work.push(p);
        }
    }
    while let Some(p) = work.pop() {
        let (g, i) = param_of[&p];
        // Everything flowing into an essential parameter becomes essential.
        for &q in flows_into.get(&(g, i)).map(Vec::as_slice).unwrap_or(&[]) {
            if essential.insert(q) {
                work.push(q);
            }
        }
    }
    let mut masks = HashMap::new();
    for (y, params) in known {
        let mask: Vec<bool> = params.iter().map(|p| essential.contains(p)).collect();
        if mask.iter().any(|&keep| !keep) {
            masks.insert(y, mask);
        }
    }
    let _ = rhs_of;
    masks
}

/// Does the subtree at `root` reference any variable in `vars`?
fn subtree_references(old: &Program, root: Label, vars: &HashSet<VarId>) -> bool {
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if let ExprKind::Var(v) = old.expr(n) {
            if vars.contains(v) {
                return true;
            }
        }
        old.for_each_child(n, |c| stack.push(c));
    }
    false
}

/// `discardable` over the output program (the effects module's analysis is
/// program-generic).
fn out_discardable(out: &Program, l: Label) -> bool {
    crate::effects::discardable(out, l)
}

fn live_letrec_bindings(
    old: &Program,
    _l: Label,
    bindings: &[(VarId, Label)],
    body: Label,
) -> Vec<bool> {
    let index: HashMap<VarId, usize> = bindings
        .iter()
        .enumerate()
        .map(|(i, &(v, _))| (v, i))
        .collect();
    let refs_in = |root: Label| -> HashSet<usize> {
        let mut out = HashSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if let ExprKind::Var(v) = old.expr(n) {
                if let Some(&i) = index.get(v) {
                    out.insert(i);
                }
            }
            old.for_each_child(n, |c| stack.push(c));
        }
        out
    };
    let mut live = vec![false; bindings.len()];
    let mut work: Vec<usize> = refs_in(body).into_iter().collect();
    while let Some(i) = work.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        for j in refs_in(bindings[i].1) {
            if !live[j] {
                work.push(j);
            }
        }
    }
    live
}
