//! Conservative effect analysis: may an expression be discarded?
//!
//! §3.8 discards "purely functional expressions whose result is never used".
//! We additionally require that evaluation cannot signal a run-time error
//! (`no_fail`), so discarding never turns an erroring program into a
//! non-erroring one.

use fdi_lang::{ExprKind, Label, Program};

/// True when evaluating `label` has no observable effect: no mutation, no
/// I/O, no possible run-time error, and guaranteed termination.
pub fn effect_free(program: &Program, label: Label) -> bool {
    match program.expr(label) {
        ExprKind::Const(_) | ExprKind::Var(_) | ExprKind::Lambda(_) => true,
        ExprKind::Prim(p, args) => {
            let sig = p.sig();
            sig.pure && sig.no_fail && args.iter().all(|&a| effect_free(program, a))
        }
        ExprKind::Begin(parts) => parts.iter().all(|&e| effect_free(program, e)),
        ExprKind::If(c, t, e) => {
            effect_free(program, *c) && effect_free(program, *t) && effect_free(program, *e)
        }
        ExprKind::Let(bindings, body) => {
            bindings.iter().all(|&(_, e)| effect_free(program, e)) && effect_free(program, *body)
        }
        // letrec right-hand sides are λs (pure); the body decides.
        ExprKind::Letrec(_, body) => effect_free(program, *body),
        // Calls may not terminate; cl-ref can fail on a non-closure.
        ExprKind::Call(_) | ExprKind::Apply(..) | ExprKind::ClRef(..) => false,
    }
}

/// Heap-reading primitives: not `pure` (they cannot be reordered across
/// mutation) but still side-effect-free, so an unused application may be
/// discarded.
fn reads_only(p: fdi_lang::PrimOp) -> bool {
    use fdi_lang::PrimOp::*;
    matches!(p, Car | Cdr | VectorRef | VectorLength)
}

/// True when `label` is *discardable*: purely functional in the paper's
/// sense (§3.8 discards "purely functional expressions whose result is never
/// used"). Unlike [`effect_free`], a discardable expression may signal a
/// run-time error (`(car '())`), matching the paper's simplifier, which may
/// drop such expressions.
pub fn discardable(program: &Program, label: Label) -> bool {
    match program.expr(label) {
        ExprKind::Const(_) | ExprKind::Var(_) | ExprKind::Lambda(_) => true,
        ExprKind::ClRef(e, _) => discardable(program, *e),
        ExprKind::Prim(p, args) => {
            (p.sig().pure || reads_only(*p)) && args.iter().all(|&a| discardable(program, a))
        }
        ExprKind::Begin(parts) => parts.iter().all(|&e| discardable(program, e)),
        ExprKind::If(c, t, e) => {
            discardable(program, *c) && discardable(program, *t) && discardable(program, *e)
        }
        ExprKind::Let(bindings, body) => {
            bindings.iter().all(|&(_, e)| discardable(program, e)) && discardable(program, *body)
        }
        ExprKind::Letrec(_, body) => discardable(program, *body),
        ExprKind::Call(_) | ExprKind::Apply(..) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_lang::parse_and_lower;

    fn check(src: &str) -> bool {
        let p = parse_and_lower(src).unwrap();
        effect_free(&p, p.root())
    }

    #[test]
    fn values_are_effect_free() {
        assert!(check("1"));
        assert!(check("(lambda (x) (display x))")); // creating a λ is pure
        assert!(check("(cons 1 2)"));
        assert!(check("(null? '())"));
    }

    #[test]
    fn failing_prims_are_not() {
        assert!(!check("(car '())"));
        assert!(!check("(+ 1 2)")); // + can fail on non-numbers; conservative
    }

    #[test]
    fn io_and_mutation_are_not() {
        assert!(!check("(display 1)"));
        assert!(!check("(set-car! (cons 1 2) 3)"));
    }

    #[test]
    fn calls_are_not() {
        assert!(!check("((lambda (x) x) 1)"));
    }

    #[test]
    fn discardable_allows_failable_pure_prims() {
        let p = parse_and_lower("(car '())").unwrap();
        assert!(discardable(&p, p.root()));
        assert!(!effect_free(&p, p.root()));
        let p = parse_and_lower("(display 1)").unwrap();
        assert!(!discardable(&p, p.root()));
        let p = parse_and_lower("((lambda () 1))").unwrap();
        assert!(!discardable(&p, p.root()));
    }

    #[test]
    fn compound_pure_forms_are() {
        assert!(check("(if (null? '()) (cons 1 2) #f)"));
        assert!(check("(let ((x (cons 1 2))) (pair? x))"));
        assert!(check("(begin #t #f)"));
    }
}
