//! Local simplification (§3.8 / §2.3 of *Flow-directed Inlining*).
//!
//! After inlining, the paper performs purely syntactic clean-ups — no flow
//! information is consulted, so "other optimizations could use flow
//! information generated for the original program when operating over the
//! inlined version". The passes here are:
//!
//! * β-reductions that do not grow code: `((λ (x…) body) e…)` → `(let …)`;
//! * constant propagation and folding (including `if` with a constant test);
//! * elimination of unused bindings (dead `let` bindings, dead `letrec`
//!   procedure groups);
//! * discarding effect-free expressions whose results are unused;
//! * restructuring procedure definitions and calls to eliminate unused
//!   formal parameters (§2.3) — this is what erases the inliner's extra
//!   `w` argument once the callee is known.
//!
//! # Examples
//!
//! ```
//! use fdi_simplify::simplify;
//!
//! let p = fdi_lang::parse_and_lower("((lambda (x y) (+ x y)) 1 2)").unwrap();
//! let (out, stats) = simplify(&p);
//! assert!(stats.betas >= 1);
//! assert_eq!(fdi_lang::unparse(&out).to_string(), "3");
//! ```

mod effects;
mod fold;
mod pass;

pub use effects::effect_free;
pub use fold::fold_prim;
pub use pass::{simplify_n, SimplifyStats};

use fdi_lang::Program;

/// Default bound on rebuild iterations; each iteration is a full O(n) pass
/// and the pipeline converges in a handful.
pub const DEFAULT_ITERS: usize = 8;

/// Simplifies `program` to a (bounded) fixpoint.
pub fn simplify(program: &Program) -> (Program, SimplifyStats) {
    let out = simplify_n(program, DEFAULT_ITERS);
    debug_assert!(
        fdi_lang::validate(&out.0).is_ok(),
        "simplifier produced ill-formed AST: {:?}",
        fdi_lang::validate(&out.0)
    );
    out
}

/// The simplifier packaged for `fdi-core`'s unified pass manager: a plain
/// struct carrying the pass's one knob. The `Pass` trait itself lives in
/// `fdi-core`, which implements it over this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyPass {
    /// Bound on rebuild iterations per application.
    pub iters: usize,
}

impl SimplifyPass {
    /// Stable pass name; also resolves the fault-injection point and the
    /// schedule-grammar keyword.
    pub const NAME: &'static str = "simplify";
    /// Schedule-fingerprint salt for this pass's behaviour version.
    pub const SALT: u64 = 0x51a9_11f1;

    /// One application of the pass: exactly [`simplify_n`].
    pub fn apply(&self, program: &Program) -> (Program, SimplifyStats) {
        simplify_n(program, self.iters)
    }
}

impl Default for SimplifyPass {
    fn default() -> SimplifyPass {
        SimplifyPass {
            iters: DEFAULT_ITERS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdi_lang::parse_and_lower;

    fn simp(src: &str) -> (String, SimplifyStats) {
        let p = parse_and_lower(src).unwrap();
        let (out, stats) = simplify(&p);
        fdi_lang::validate(&out).expect("simplified program is well-formed");
        (fdi_lang::unparse(&out).to_string(), stats)
    }

    #[test]
    fn beta_to_constant() {
        let (out, stats) = simp("((lambda (x y) (+ x y)) 1 2)");
        assert_eq!(out, "3");
        assert!(stats.betas >= 1);
        assert!(stats.folds >= 1);
    }

    #[test]
    fn constant_if_prunes() {
        let (out, stats) = simp("(if (null? '()) 'yes 'no)");
        assert_eq!(out, "(quote yes)");
        assert!(stats.if_prunes >= 1);
    }

    #[test]
    fn dead_let_bindings_dropped() {
        let (out, _) = simp("(let ((unused (cons 1 2))) 42)");
        assert_eq!(out, "42");
    }

    #[test]
    fn effectful_bindings_are_kept() {
        let (out, _) = simp("(let ((unused (display 9))) 42)");
        assert!(out.contains("display"), "{out}");
    }

    #[test]
    fn copy_propagation_through_let() {
        let (out, _) = simp("(let ((x 5)) (let ((y x)) (* y y)))");
        assert_eq!(out, "25");
    }

    #[test]
    fn dead_letrec_group_removed() {
        let (out, _) = simp(
            "(letrec ((dead1 (lambda (n) (dead2 n)))
                      (dead2 (lambda (n) (dead1 n))))
               7)",
        );
        assert_eq!(out, "7");
    }

    #[test]
    fn live_letrec_kept() {
        let (out, _) = simp("(letrec ((f (lambda (n) (if (zero? n) 0 (f (- n 1)))))) (f 3))");
        assert!(out.contains("letrec"), "{out}");
    }

    #[test]
    fn begin_drops_pure_elements() {
        let (out, stats) = simp("(begin (null? '()) (cons 1 2) 42)");
        assert_eq!(out, "42");
        assert!(stats.begin_drops >= 1);
    }

    #[test]
    fn begin_keeps_effects() {
        let (out, _) = simp("(begin (display 1) 42)");
        assert!(out.starts_with("(begin (display 1)"), "{out}");
    }

    #[test]
    fn single_use_lambda_inlines_through_binding() {
        // f is used once; substituting it enables β at the call site.
        let (out, stats) = simp("(let ((f (lambda (x) (* x x)))) (f 6))");
        assert_eq!(out, "36");
        assert!(stats.betas >= 1);
    }

    #[test]
    fn multi_use_lambda_stays_bound() {
        let (out, _) = simp("(let ((f (lambda (x) (* x x)))) (cons (f 2) (f 3)))");
        assert!(out.contains("lambda"), "{out}");
        // But both calls remain (no duplication of the λ body).
        assert_eq!(out.matches("lambda").count(), 1, "{out}");
    }

    #[test]
    fn variadic_beta_builds_rest_list() {
        let (out, _) = simp("((lambda (a . rest) (cons a rest)) 1 2 3)");
        assert!(out.contains("(cons 2 (cons 3 (quote ())))"), "{out}");
    }

    #[test]
    fn unused_formals_removed() {
        let (out, stats) = simp(
            "(define (go k) (letrec ((loop (lambda (w n) (if (zero? n) 0 (loop w (- n 1))))))
               (loop 99 k)))
             (go 5)",
        );
        assert!(stats.formals_removed >= 1, "{out}");
        assert!(
            !out.contains("99"),
            "the unused argument should vanish: {out}"
        );
    }

    #[test]
    fn formals_kept_when_argument_has_effects() {
        let (out, _) = simp(
            "(define (go k) (letrec ((loop (lambda (w n) (if (zero? n) 0 (loop w (- n 1))))))
               (loop (display 9) k)))
             (go 5)",
        );
        assert!(out.contains("display"), "{out}");
    }

    #[test]
    fn nested_arithmetic_folds_completely() {
        let (out, _) = simp("(+ (* 2 3) (- 10 (quotient 9 3)))");
        assert_eq!(out, "13");
    }

    #[test]
    fn iterations_converge() {
        let (_, stats) = simp("(let ((a 1)) (let ((b a)) (let ((c b)) c)))");
        assert!(stats.iterations <= DEFAULT_ITERS);
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn preserves_semantics_shape_of_recursive_program() {
        let (out, _) = simp(
            "(letrec ((fact (lambda (n) (if (zero? n) 1 (* n (fact (- n 1)))))))
               (fact 10))",
        );
        assert!(out.contains("fact"), "{out}");
        assert!(out.contains("(fact 10)"), "{out}");
    }

    #[test]
    fn algebraic_identities() {
        // (+ x 0) / (* 1 x) reduce to unary forms that keep the numeric
        // type obligation.
        let (out, _) = simp("(define (f x) (+ x 0)) (cons (f 2) (f 3))");
        assert!(out.contains("(+ x)"), "{out}");
        let (out, _) = simp("(define (g x) (* 1 x)) (cons (g 2) (g 3))");
        assert!(out.contains("(* x)"), "{out}");
    }

    #[test]
    fn car_of_cons_projects() {
        let (out, _) = simp("(define (f x) (car (cons x 1))) (cons (f 2) (f 3))");
        assert!(!out.contains("car"), "{out}");
        // Effectful other component blocks the projection.
        let (out, _) = simp("(define (f x) (car (cons x (display 1)))) (cons (f 2) (f 3))");
        assert!(out.contains("display"), "{out}");
    }

    #[test]
    fn double_negation_of_predicates_drops() {
        let (out, _) = simp("(define (f x) (not (not (null? x)))) (cons (f '()) (f 1))");
        assert_eq!(out.matches("not").count(), 0, "{out}");
        // General double negation is NOT boolean-safe: (not (not 5)) is #t,
        // not 5 — must stay.
        let (out, _) = simp("(define (f x) (not (not x))) (cons (f 5) (f #f))");
        assert_eq!(out.matches("(not").count(), 2, "{out}");
    }

    #[test]
    fn idempotent_after_fixpoint() {
        let p = parse_and_lower("(let ((f (lambda (x) (* x x)))) (cons (f 2) (f 3)))").unwrap();
        let (once, _) = simplify(&p);
        let (twice, stats) = simplify(&once);
        assert_eq!(
            fdi_lang::unparse(&once).to_string(),
            fdi_lang::unparse(&twice).to_string()
        );
        assert_eq!(stats.iterations, 1, "second run should converge instantly");
    }
}
