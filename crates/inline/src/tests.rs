use crate::{inline_program, InlineConfig, InlineMode, InlineReport};
use fdi_cfa::{analyze, Polyvariance};
use fdi_lang::{parse_and_lower, ExprKind, Program};

fn run(src: &str, config: &InlineConfig) -> (Program, InlineReport) {
    let p = parse_and_lower(src).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    assert!(!flow.stats().aborted);
    let (out, report) = inline_program(&p, &flow, config);
    fdi_lang::validate(&out).expect("inlined program is well-formed");
    (out, report)
}

/// Inline, then simplify — the full §2 pipeline after analysis.
fn run_simplified(src: &str, threshold: usize) -> (String, InlineReport) {
    let (out, report) = run(src, &InlineConfig::with_threshold(threshold));
    let (simple, _) = fdi_simplify::simplify(&out);
    (fdi_lang::unparse(&simple).to_string(), report)
}

#[test]
fn inlines_simple_known_call() {
    let (out, report) = run(
        "(define (sq x) (* x x)) (sq 7)",
        &InlineConfig::with_threshold(100),
    );
    assert_eq!(report.sites_inlined, 1);
    assert!(fdi_lang::validate(&out).is_ok());
}

#[test]
fn simplifies_to_constant_after_inline() {
    let (out, _) = run_simplified("(define (sq x) (* x x)) (sq 7)", 100);
    assert_eq!(out, "49");
}

#[test]
fn threshold_zero_disables_inlining() {
    let (_, report) = run(
        "(define (sq x) (* x x)) (sq 7)",
        &InlineConfig::with_threshold(0),
    );
    assert_eq!(report.sites_inlined, 0);
    assert!(report.rejected_size >= 1);
}

#[test]
fn higher_order_argument_is_inlined() {
    // The paper's generality claim: procedures passed as arguments inline.
    let (out, report) = run_simplified(
        "(define (twice f x) (f (f x)))
         (define (add1 n) (+ n 1))
         (twice add1 5)",
        200,
    );
    assert!(report.sites_inlined >= 2, "{report:?}");
    assert_eq!(out, "7");
}

#[test]
fn procedure_from_data_structure_is_inlined() {
    let (out, report) = run_simplified(
        "(define p (cons (lambda (x) (* 3 x)) '()))
         ((car p) 4)",
        200,
    );
    assert!(report.sites_inlined >= 1, "{report:?}");
    assert_eq!(out, "12");
}

#[test]
fn object_style_dispatch_is_inlined() {
    // §2.1's make-network example: ((N 'open) addr) inlines the open-branch
    // procedure even though N itself is a dispatcher. Each network instance
    // receives one message kind, so polymorphic splitting keeps the
    // dispatch tests precise and specialization prunes the other branches.
    let (out, report) = run_simplified(
        "(define (make-counter)
           (lambda (msg)
             (case msg
               ((get) (lambda (c) (car c)))
               ((bump) (lambda (c) (set-car! c (+ 1 (car c)))))
               (else (error \"bad msg\")))))
         (define cell (cons 41 '()))
         (define bumper (make-counter))
         (define getter (make-counter))
         (begin ((bumper 'bump) cell) ((getter 'get) cell))",
        500,
    );
    assert!(report.sites_inlined >= 2, "{report:?}");
    assert!(
        report.branches_pruned >= 1,
        "case dispatch should prune: {report:?}"
    );
    assert!(!out.contains("error"), "dead else branches pruned: {out}");
}

#[test]
fn recursive_procedure_builds_loop_not_unfolding() {
    let (out, report) = run(
        "(define (count n) (if (zero? n) 0 (count (- n 1))))
         (count 10)",
        &InlineConfig::with_threshold(500),
    );
    assert!(report.sites_inlined >= 1, "{report:?}");
    assert!(report.loops_tied >= 1, "{report:?}");
    assert!(fdi_lang::validate(&out).is_ok());
}

#[test]
fn mutual_recursion_terminates() {
    let (out, report) = run(
        "(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
         (define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
         (even2? 10)",
        &InlineConfig::with_threshold(1000),
    );
    assert!(report.loops_tied >= 1, "{report:?}");
    assert!(fdi_lang::validate(&out).is_ok());
}

#[test]
fn open_procedure_rejected_in_closed_mode() {
    // The returned closure captures k (not top-level) and k's reference
    // survives specialization → rejected in Closed mode.
    let (_, report) = run(
        "(define (const k) (lambda () k))
         (define f (const 5))
         (f)",
        &InlineConfig::with_threshold(500),
    );
    assert!(report.rejected_open >= 1, "{report:?}");
}

#[test]
fn open_procedure_inlined_in_cl_ref_mode() {
    let config = InlineConfig {
        threshold: 500,
        mode: InlineMode::ClRef,
        unroll: 0,
    };
    let (out, report) = run(
        "(define (const k) (lambda () k))
         (define f (const 5))
         (f)",
        &config,
    );
    assert!(report.sites_inlined >= 1, "{report:?}");
    // The inlined copy accesses k through cl-ref.
    let has_clref = out
        .labels()
        .any(|l| matches!(out.expr(l), ExprKind::ClRef(..)));
    assert!(has_clref, "cl-ref should be emitted");
}

#[test]
fn free_var_in_pruned_branch_allows_closed_inline() {
    // The paper's exception (i): z occurs only in a conditional branch that
    // specialization eliminates, so the procedure inlines in Closed mode.
    let (_, report) = run(
        "(define (make z)
           (lambda (flag) (if flag 'const z)))
         (define g (make (cons 1 2)))
         (g #t)",
        &InlineConfig::with_threshold(500),
    );
    assert!(report.sites_inlined >= 1, "{report:?}");
    assert!(report.branches_pruned >= 1, "{report:?}");
}

#[test]
fn map_car_specializes_and_prunes_map_star() {
    // Figs. 1–3: inlining (map car m) prunes the variable-arity path.
    let (out, report) = run_simplified(
        "(define m (cons (cons 1 2) (cons (cons 3 4) '())))
         (map car m)",
        500,
    );
    assert!(report.sites_inlined >= 1, "map should inline: {report:?}");
    assert!(
        report.branches_pruned >= 1,
        "(null? args) should prune: {report:?}"
    );
    assert!(
        !out.contains("apply"),
        "map* (apply path) should be pruned: {out}"
    );
}

#[test]
fn selective_inlining_per_call_site() {
    // A large procedure may be inlined where specialization shrinks it and
    // rejected elsewhere — here the same callee at two sites with a small
    // threshold: both still inline or not coherently; the point is the
    // decision is per-site.
    let src = "(define (f sel x)
                 (if sel
                     (+ x 1)
                     (begin (display x) (display x) (display x) (display x)
                            (display x) (display x) (display x) (display x)
                            (display x) (display x) (display x) (display x)
                            (- x 1))))
               (cons (f #t 1) (f #f 2))";
    let (_, report) = run(src, &InlineConfig::with_threshold(12));
    // The #t site specializes to (+ x 1) — small enough; the #f site's
    // specialization keeps the display chain — too big.
    assert_eq!(report.sites_inlined, 1, "{report:?}");
    assert_eq!(report.rejected_size, 1, "{report:?}");
}

#[test]
fn inlining_inside_large_procedures_still_happens() {
    // §2.2: a procedure too big to inline still gets inlining *within* it.
    let src = "(define (tiny x) (+ x 1))
               (define (huge y)
                 (begin (display y) (display y) (display y) (display y)
                        (display y) (display y) (display y) (display y)
                        (tiny y)))
               (huge 5)";
    let (_, report) = run(src, &InlineConfig::with_threshold(8));
    assert!(
        report.sites_inlined >= 1,
        "tiny inlines inside huge: {report:?}"
    );
    assert!(
        report.rejected_size >= 1,
        "huge itself rejected: {report:?}"
    );
}

#[test]
fn variadic_callee_inlines_with_explicit_rest_list() {
    let (out, report) = run_simplified(
        "(define (collect . xs) xs)
         (collect 1 2 3)",
        200,
    );
    assert!(report.sites_inlined >= 1, "{report:?}");
    assert_eq!(out, "(cons 1 (cons 2 (cons 3 (quote ()))))");
}

#[test]
fn unknown_callee_left_alone() {
    let (_, report) = run(
        "(define (pick b) (if b (lambda (x) (+ x 1)) (lambda (x) (- x 1))))
         ((pick (zero? (random 2))) 5)",
        &InlineConfig::with_threshold(500),
    );
    // ((pick …) 5) has two possible closures → not a candidate.
    assert!(report.sites_inlined <= 2, "{report:?}");
}

#[test]
fn behaviour_preserved_under_inline_plus_simplify() {
    // Source-to-source round trip sanity: the pipeline output re-lowers.
    let (out, _) = run_simplified(
        "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
         (len (cons 1 (cons 2 (cons 3 '()))))",
        300,
    );
    assert!(parse_and_lower(&out).is_ok(), "{out}");
}

#[test]
fn loop_unrolling_unfolds_then_ties() {
    let src = "(define (count n) (if (zero? n) 0 (count (- n 1)))) (count 10)";
    let p = parse_and_lower(src).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let mut config = InlineConfig::with_threshold(500);
    config.unroll = 2;
    let (out, report) = inline_program(&p, &flow, &config);
    fdi_lang::validate(&out).expect("unrolled program is well-formed");
    assert!(report.unrolled >= 1, "{report:?}");
    assert!(report.loops_tied >= 1, "loops must still tie: {report:?}");
    // Behaviour is preserved.
    let (simple, _) = fdi_simplify::simplify(&out);
    let r = fdi_vm::run(&simple, &fdi_vm::RunConfig::default()).unwrap();
    assert_eq!(r.value, "0");
}

#[test]
fn unrolling_reduces_dynamic_calls() {
    let src = "(define (count n) (if (zero? n) 0 (count (- n 1)))) (count 60)";
    let p = parse_and_lower(src).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let run = |unroll: usize| {
        let mut config = InlineConfig::with_threshold(2000);
        config.unroll = unroll;
        let (out, _) = inline_program(&p, &flow, &config);
        let (simple, _) = fdi_simplify::simplify(&out);
        fdi_vm::run(&simple, &fdi_vm::RunConfig::default()).unwrap()
    };
    let plain = run(0);
    let unrolled = run(3);
    assert_eq!(plain.value, unrolled.value);
    assert!(
        unrolled.counters.calls < plain.counters.calls,
        "unrolling should execute fewer calls: {} vs {}",
        unrolled.counters.calls,
        plain.counters.calls
    );
}

#[test]
fn divergence_prunes_right_of_error() {
    // §3.4: with left-to-right evaluation, the subexpressions to the right
    // of one whose abstract value is ⊥ can be pruned.
    let (out, report) = run(
        "(define (boom) (error \"unreachable\"))
         (begin (display 1) (boom) (display 2) (display 3))",
        &InlineConfig::with_threshold(100),
    );
    assert!(report.divergence_prunes >= 2, "{report:?}");
    let printed = fdi_lang::unparse(&out).to_string();
    assert!(!printed.contains("(display 2)"), "{printed}");
    assert!(printed.contains("(display 1)"), "{printed}");
}

#[test]
fn divergent_call_argument_prunes_the_call() {
    let (out, report) = run(
        "(define (f a b) (cons a b))
         (f (error \"stop\") (display 9))",
        &InlineConfig::with_threshold(100),
    );
    assert!(report.divergence_prunes >= 1, "{report:?}");
    let printed = fdi_lang::unparse(&out).to_string();
    assert!(!printed.contains("(display 9)"), "{printed}");
    // Behaviour preserved: the program still errors with the same message.
    let (simple, _) = fdi_simplify::simplify(&out);
    let err = fdi_vm::run(&simple, &fdi_vm::RunConfig::default()).unwrap_err();
    assert!(err.message.contains("stop"), "{}", err.message);
}

#[test]
fn report_counts_are_consistent() {
    let (_, report) = run(
        "(define (sq x) (* x x)) (cons (sq 2) (sq 3))",
        &InlineConfig::with_threshold(100),
    );
    assert!(report.calls_seen >= 2);
    assert_eq!(report.sites_inlined, 2);
}

#[test]
fn budgeted_without_budget_is_identical() {
    use crate::{inline_program_budgeted, inline_program_recorded, InlineGuide};
    use fdi_telemetry::Telemetry;
    let src = "(define (sq x) (* x x)) (define (inc n) (+ n 1)) (cons (sq 7) (inc 1))";
    let p = parse_and_lower(src).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cfg = InlineConfig::with_threshold(200);
    let plain = inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
    let mut guide = InlineGuide::new();
    guide.set("l1", 999);
    let budgeted = inline_program_budgeted(&p, &flow, &cfg, Some(&guide), None, &Telemetry::off());
    assert_eq!(
        fdi_lang::unparse(&plain.program).to_string(),
        fdi_lang::unparse(&budgeted.program).to_string()
    );
    assert_eq!(plain.report, budgeted.report);
    assert_eq!(plain.decisions, budgeted.decisions);
}

#[test]
fn size_budget_caps_committed_specializations() {
    use crate::{inline_program_budgeted, inline_program_recorded, InlineGuide};
    use fdi_telemetry::{DecisionReason, Telemetry};
    let src = "(define (sq x) (* x x))
               (define (inc n) (+ n 1))
               (cons (sq 7) (inc 1))";
    let p = parse_and_lower(src).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cfg = InlineConfig::with_threshold(200);
    let probe = inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
    let sizes: Vec<(String, usize)> = probe
        .decisions
        .iter()
        .filter_map(|d| match d.reason {
            DecisionReason::Inlined { specialized_size } => {
                Some((d.site_label.clone(), specialized_size))
            }
            _ => None,
        })
        .collect();
    assert!(sizes.len() >= 2, "{sizes:?}");
    // A budget that fits either specialization alone but never both.
    let budget = sizes.iter().map(|s| s.1).max().unwrap();
    let stat = inline_program_budgeted(&p, &flow, &cfg, None, Some(budget), &Telemetry::off());
    fdi_lang::validate(&stat.program).unwrap();
    assert_eq!(stat.report.sites_inlined, 1, "{:?}", stat.report);
    assert_eq!(stat.report.rejected_budget, 1);
    // Static order spends the budget on the first probe site.
    let first = &sizes[0].0;
    assert!(stat
        .decisions
        .iter()
        .any(|d| d.site_label == *first && matches!(d.reason, DecisionReason::Inlined { .. })));
    // All the benefit on the second site flips the allocation.
    let hot = &sizes[1].0;
    let mut guide = InlineGuide::new();
    guide.set(hot.clone(), 1_000);
    let guided = inline_program_budgeted(
        &p,
        &flow,
        &cfg,
        Some(&guide),
        Some(budget),
        &Telemetry::off(),
    );
    fdi_lang::validate(&guided.program).unwrap();
    assert_eq!(guided.report.sites_inlined, 1, "{:?}", guided.report);
    assert!(guided
        .decisions
        .iter()
        .any(|d| d.site_label == *hot && matches!(d.reason, DecisionReason::Inlined { .. })));
    let cut = guided
        .decisions
        .iter()
        .find(|d| matches!(d.reason, DecisionReason::SizeBudgetExhausted { .. }))
        .expect("the cold site records the budget cut");
    assert_eq!(cut.site_label, *first);
    // The committed total respects the budget under both orderings.
    for out in [&stat, &guided] {
        let committed: usize = out
            .decisions
            .iter()
            .filter_map(|d| match d.reason {
                DecisionReason::Inlined { specialized_size } => Some(specialized_size),
                _ => None,
            })
            .sum();
        assert!(committed <= budget, "{committed} > {budget}");
    }
}

#[test]
fn budgeted_runs_are_deterministic() {
    use crate::{inline_program_budgeted, InlineGuide};
    use fdi_telemetry::Telemetry;
    let src = "(define (twice f x) (f (f x)))
               (define (add1 n) (+ n 1))
               (define (sq x) (* x x))
               (cons (twice add1 5) (twice sq 2))";
    let p = parse_and_lower(src).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cfg = InlineConfig::with_threshold(300);
    let mut guide = InlineGuide::new();
    guide.set("l9", 70);
    guide.set("l12", 50);
    let a = inline_program_budgeted(&p, &flow, &cfg, Some(&guide), Some(30), &Telemetry::off());
    let b = inline_program_budgeted(&p, &flow, &cfg, Some(&guide), Some(30), &Telemetry::off());
    assert_eq!(
        fdi_lang::unparse(&a.program).to_string(),
        fdi_lang::unparse(&b.program).to_string()
    );
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.report, b.report);
}

// --- specialization cache & parallel units ---------------------------------

/// A source with enough distinct callees, recursion, and higher-order flow
/// to exercise replay, footprints, and threshold validity intervals.
const CACHE_SRC: &str = "
  (define (sq x) (* x x))
  (define (inc n) (+ n 1))
  (define (twice f x) (f (f x)))
  (define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
  (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
  (define data (cons 1 (cons 2 (cons 3 '()))))
  (cons (twice inc (sq 4))
        (cons (len data) (cons (sum data) (map sq data))))";

fn outcome_fingerprint(out: &crate::InlineOutcome) -> (String, InlineReport, usize) {
    (
        fdi_lang::unparse(&out.program).to_string(),
        out.report,
        out.decisions.len(),
    )
}

#[test]
fn spec_cache_sweep_is_byte_identical_and_hits() {
    use crate::{inline_program_with, InlineRuntime, SpecializationCache};
    use fdi_telemetry::Telemetry;
    let p = parse_and_lower(CACHE_SRC).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cache = SpecializationCache::unbounded();
    let salt = 0xfeed_beef_u64;
    for &t in &[0usize, 50, 100, 200, 500, 1000] {
        let cfg = InlineConfig::with_threshold(t);
        let base = crate::inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
        let rt = InlineRuntime {
            cache: Some((&cache, salt)),
            units: 1,
        };
        let cached = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
        assert_eq!(
            outcome_fingerprint(&base),
            outcome_fingerprint(&cached),
            "threshold {t}"
        );
        assert_eq!(base.decisions, cached.decisions, "threshold {t}");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "sweep must replay entries: {stats:?}");
    assert!(stats.misses > 0, "{stats:?}");
    // A second identical sweep replays from cache.
    let before = cache.stats();
    let cfg = InlineConfig::with_threshold(200);
    let rt = InlineRuntime {
        cache: Some((&cache, salt)),
        units: 1,
    };
    let again = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
    fdi_lang::validate(&again.program).unwrap();
    assert!(cache.stats().hits > before.hits);
}

#[test]
fn spec_cache_salt_separates_sources() {
    use crate::{inline_program_with, InlineRuntime, SpecializationCache};
    use fdi_telemetry::Telemetry;
    let cache = SpecializationCache::unbounded();
    let cfg = InlineConfig::with_threshold(200);
    for (salt, src) in [
        (1u64, "(define (sq x) (* x x)) (sq 7)"),
        (2u64, "(define (sq x) (+ x x)) (sq 7)"),
    ] {
        let p = parse_and_lower(src).unwrap();
        let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
        let base = crate::inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
        let rt = InlineRuntime {
            cache: Some((&cache, salt)),
            units: 1,
        };
        let cached = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
        assert_eq!(outcome_fingerprint(&base), outcome_fingerprint(&cached));
    }
}

#[test]
fn spec_cache_clear_mid_sweep_is_transparent() {
    use crate::{inline_program_with, InlineRuntime, SpecializationCache};
    use fdi_telemetry::Telemetry;
    let p = parse_and_lower(CACHE_SRC).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cache = SpecializationCache::unbounded();
    let cfg = InlineConfig::with_threshold(200);
    let base = crate::inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
    let rt = InlineRuntime {
        cache: Some((&cache, 7)),
        units: 1,
    };
    let warm = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
    cache.clear();
    let cold = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
    assert_eq!(outcome_fingerprint(&base), outcome_fingerprint(&warm));
    assert_eq!(outcome_fingerprint(&base), outcome_fingerprint(&cold));
    assert!(cache.stats().evictions > 0, "{:?}", cache.stats());
}

#[test]
fn parallel_units_are_byte_identical() {
    use crate::{inline_program_with, InlineRuntime};
    use fdi_telemetry::Telemetry;
    let p = parse_and_lower(CACHE_SRC).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    for &t in &[0usize, 100, 200, 500] {
        let cfg = InlineConfig::with_threshold(t);
        let base = crate::inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
        for units in [2usize, 4, 8] {
            let rt = InlineRuntime { cache: None, units };
            let par = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
            assert_eq!(
                outcome_fingerprint(&base),
                outcome_fingerprint(&par),
                "threshold {t}, units {units}"
            );
            assert_eq!(
                base.decisions, par.decisions,
                "threshold {t}, units {units}"
            );
        }
    }
}

#[test]
fn cache_and_units_compose_byte_identically() {
    use crate::{inline_program_with, InlineRuntime, SpecializationCache};
    use fdi_telemetry::Telemetry;
    let p = parse_and_lower(CACHE_SRC).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cache = SpecializationCache::unbounded();
    for &t in &[100usize, 200, 500] {
        let cfg = InlineConfig::with_threshold(t);
        let base = crate::inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
        let rt = InlineRuntime {
            cache: Some((&cache, 3)),
            units: 4,
        };
        let both = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
        assert_eq!(
            outcome_fingerprint(&base),
            outcome_fingerprint(&both),
            "threshold {t}"
        );
    }
    assert!(cache.stats().misses > 0);
}

#[test]
fn budgeted_with_cache_runtime_is_identical() {
    use crate::{
        inline_program_budgeted, inline_program_budgeted_with, InlineRuntime, SpecializationCache,
    };
    use fdi_telemetry::Telemetry;
    let p = parse_and_lower(CACHE_SRC).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cfg = InlineConfig::with_threshold(300);
    let cache = SpecializationCache::unbounded();
    let base = inline_program_budgeted(&p, &flow, &cfg, None, Some(40), &Telemetry::off());
    let rt = InlineRuntime {
        cache: Some((&cache, 11)),
        units: 2,
    };
    let cached =
        inline_program_budgeted_with(&p, &flow, &cfg, None, Some(40), &Telemetry::off(), rt);
    assert_eq!(outcome_fingerprint(&base), outcome_fingerprint(&cached));
    assert_eq!(base.decisions, cached.decisions);
}

#[test]
fn spec_cache_ledger_sheds_under_pressure() {
    use crate::{inline_program_with, CacheLedger, InlineRuntime, SpecializationCache};
    use fdi_telemetry::Telemetry;
    use std::sync::atomic::{AtomicUsize, Ordering};
    struct TinyLedger {
        used: AtomicUsize,
        limit: usize,
    }
    impl CacheLedger for TinyLedger {
        fn charge(&self, bytes: usize) {
            self.used.fetch_add(bytes, Ordering::Relaxed);
        }
        fn release(&self, bytes: usize) {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
        }
        fn over_limit(&self) -> bool {
            self.used.load(Ordering::Relaxed) > self.limit
        }
    }
    let cache = SpecializationCache::new(Box::new(TinyLedger {
        used: AtomicUsize::new(0),
        limit: 512,
    }));
    let p = parse_and_lower(CACHE_SRC).unwrap();
    let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
    let cfg = InlineConfig::with_threshold(500);
    let base = crate::inline_program_recorded(&p, &flow, &cfg, &Telemetry::off());
    let rt = InlineRuntime {
        cache: Some((&cache, 5)),
        units: 1,
    };
    let out = inline_program_with(&p, &flow, &cfg, rt, &Telemetry::off());
    assert_eq!(outcome_fingerprint(&base), outcome_fingerprint(&out));
    let stats = cache.stats();
    assert!(stats.evictions > 0, "tiny ledger must shed: {stats:?}");
    assert!(stats.bytes <= 4096, "{stats:?}");
}
