//! Flow-directed inlining: the transformation `I[e]κρ` of Fig. 5.
//!
//! A call site is inlined when a unique abstract closure flows to its
//! function position (Inlining Condition 1, §3.3), the arity matches, the
//! site is not already being unfolded (the loop map ρ), and the *specialized*
//! body passes the `Inline?` size threshold (§3.7). The callee is specialized
//! to the closure's contour: conditionals whose test can never be true
//! (resp. false) there lose the corresponding branch (§3.4), and call sites
//! inside the specialized body are inlined recursively under Inlining
//! Condition 2. Infinite unfolding is cut by binding the specialized
//! procedure with `letrec` and emitting back-edge calls to it (§3.6).
//!
//! Two modes reproduce the paper's two configurations (§3.5/§4):
//!
//! * [`InlineMode::ClRef`] — the general algorithm: free variables of the
//!   inlined procedure are rebound via `(cl-ref w i)` on the extra closure
//!   parameter `w`.
//! * [`InlineMode::Closed`] — the evaluated configuration: only procedures
//!   *closed up to top-level variables* are inlined, so no `cl-ref` is ever
//!   emitted. A procedure with free variables still inlines when its free
//!   references disappear in the specialized copy (pruned branch) or refer
//!   to procedures that are themselves inlined — exactly the paper's two
//!   exceptions.
//!
//! Two orthogonal accelerations preserve byte-identical output (see
//! [`InlineRuntime`]): outermost specializations can be memoized in a
//! [`SpecializationCache`] shared across runs (a threshold sweep then only
//! re-evaluates the `Inline?` gate per threshold), and the root letrec's
//! bindings can be specialized on parallel threads and merged back in
//! binding order.
//!
//! # Examples
//!
//! ```
//! use fdi_inline::{inline_program, InlineConfig};
//! use fdi_cfa::{analyze, Polyvariance};
//!
//! let p = fdi_lang::parse_and_lower("(define (sq x) (* x x)) (sq 7)").unwrap();
//! let flow = analyze(&p, Polyvariance::PolymorphicSplitting);
//! let (out, report) = inline_program(&p, &flow, &InlineConfig::with_threshold(100));
//! assert_eq!(report.sites_inlined, 1);
//! # let _ = out;
//! ```

use fdi_cfa::{AbsVal, ClosureId, ContourId, Ctx, FlowAnalysis};
use fdi_lang::{
    Binder, Const, ExprKind, FreeVars, Label, LambdaInfo, PrimOp, Program, VarId, VarInfo,
};
use fdi_telemetry::{DecisionReason, DecisionRecord, Telemetry};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

mod spec_cache;

pub use spec_cache::{CacheLedger, SpecCacheStats, SpecializationCache, UnboundedLedger};
use spec_cache::{FootDep, Recording, SpecEntry};

/// How inlined procedures access their free variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InlineMode {
    /// Only inline procedures closed up to top-level variables (the paper's
    /// evaluated configuration — never emits `cl-ref`).
    #[default]
    Closed,
    /// Inline any procedure, accessing free variables with `(cl-ref w i)`.
    ClRef,
}

/// Configuration of one inlining run.
#[derive(Debug, Clone, Copy)]
pub struct InlineConfig {
    /// The size threshold `T`: a specialization is inlined when its size is
    /// below this value. Threshold 0 disables inlining.
    pub threshold: usize,
    /// Free-variable discipline.
    pub mode: InlineMode,
    /// Loop unrolling depth: how many times a recursive back-edge may be
    /// unfolded before the loop map ties it (§3.6 notes "loop unrolling …
    /// would be easy to include in this framework"; the paper sets this to
    /// 0 to isolate the benefits of inlining, and so do we by default).
    pub unroll: usize,
}

impl InlineConfig {
    /// The paper's evaluated configuration at threshold `t`.
    pub fn with_threshold(t: usize) -> InlineConfig {
        InlineConfig {
            threshold: t,
            mode: InlineMode::Closed,
            unroll: 0,
        }
    }
}

impl Default for InlineConfig {
    fn default() -> InlineConfig {
        // The paper's sweet spot is between 200 and 500 (§4).
        InlineConfig::with_threshold(200)
    }
}

/// Shared runtime context of one inliner run, orthogonal to
/// [`InlineConfig`] (which is fingerprinted into artifact identities —
/// nothing here may change the output, only how fast it is produced).
#[derive(Clone, Copy)]
pub struct InlineRuntime<'a> {
    /// Specialization memo table plus the content salt its entries are
    /// valid under. The salt must fingerprint everything the construction
    /// can read besides the threshold: source program, flow analysis
    /// configuration, and the inliner's mode/unroll.
    pub cache: Option<(&'a SpecializationCache, u64)>,
    /// Split the root letrec's bindings across this many threads
    /// (1 = fully sequential). The merge is deterministic: output arenas
    /// are label-for-label identical to the sequential run.
    pub units: usize,
}

impl InlineRuntime<'_> {
    /// No cache, no parallelism — the historical behaviour.
    pub fn sequential() -> InlineRuntime<'static> {
        InlineRuntime {
            cache: None,
            units: 1,
        }
    }
}

impl Default for InlineRuntime<'static> {
    fn default() -> Self {
        InlineRuntime::sequential()
    }
}

/// Per-call-site benefit estimates from a dynamic profile.
///
/// Keys are site labels exactly as [`DecisionRecord::site_label`] renders
/// them (`"l17"`); values are the estimated mutator cost inlining the site
/// would save — dynamic call count × per-call overhead, as measured by
/// `fdi_vm::run_profiled`. Sites absent from the guide have benefit 0. Under
/// a size budget ([`inline_program_budgeted`]) the guide replaces syntactic
/// traversal order with benefit order, so hot sites claim the budget first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InlineGuide {
    benefits: HashMap<String, u64>,
}

impl InlineGuide {
    /// An empty guide (every site's benefit is 0).
    pub fn new() -> InlineGuide {
        InlineGuide::default()
    }

    /// Sets one site's estimated benefit.
    pub fn set(&mut self, site_label: impl Into<String>, benefit: u64) {
        self.benefits.insert(site_label.into(), benefit);
    }

    /// The estimated benefit of a site; 0 when unprofiled.
    pub fn benefit(&self, site_label: &str) -> u64 {
        self.benefits.get(site_label).copied().unwrap_or(0)
    }

    /// How many sites carry a benefit estimate.
    pub fn len(&self) -> usize {
        self.benefits.len()
    }

    /// Whether the guide is empty.
    pub fn is_empty(&self) -> bool {
        self.benefits.is_empty()
    }
}

/// What the inliner did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InlineReport {
    /// Call sites considered (calls and applies).
    pub calls_seen: usize,
    /// Call sites inlined.
    pub sites_inlined: usize,
    /// Back-edges tied into loops via the loop map.
    pub loops_tied: usize,
    /// Candidates rejected for free-variable reasons (Closed mode).
    pub rejected_open: usize,
    /// Candidates rejected because the specialized body exceeded the size
    /// threshold at an ordinary (non-back-edge) site.
    pub rejected_size: usize,
    /// Loop-unroll attempts at back-edge sites whose specialization exceeded
    /// the size threshold; the site was then tied via the loop map (counted
    /// in [`InlineReport::loops_tied`] as well).
    pub rejected_loop_guard: usize,
    /// Candidates denied because the whole-run size budget was already
    /// spent on higher-priority sites ([`inline_program_budgeted`]).
    pub rejected_budget: usize,
    /// Conditional branches pruned during specialization.
    pub branches_pruned: usize,
    /// Subexpressions pruned to the right of a divergent one (§3.4's
    /// generalized pruning for left-to-right evaluation).
    pub divergence_prunes: usize,
    /// Recursive back-edges unfolded by loop unrolling before tying.
    pub unrolled: usize,
}

impl InlineReport {
    /// Field-wise `self - base` (counters only ever grow during a run).
    pub(crate) fn delta_from(self, base: InlineReport) -> InlineReport {
        InlineReport {
            calls_seen: self.calls_seen - base.calls_seen,
            sites_inlined: self.sites_inlined - base.sites_inlined,
            loops_tied: self.loops_tied - base.loops_tied,
            rejected_open: self.rejected_open - base.rejected_open,
            rejected_size: self.rejected_size - base.rejected_size,
            rejected_loop_guard: self.rejected_loop_guard - base.rejected_loop_guard,
            rejected_budget: self.rejected_budget - base.rejected_budget,
            branches_pruned: self.branches_pruned - base.branches_pruned,
            divergence_prunes: self.divergence_prunes - base.divergence_prunes,
            unrolled: self.unrolled - base.unrolled,
        }
    }

    /// Field-wise `self + delta`.
    pub(crate) fn merged(self, d: InlineReport) -> InlineReport {
        InlineReport {
            calls_seen: self.calls_seen + d.calls_seen,
            sites_inlined: self.sites_inlined + d.sites_inlined,
            loops_tied: self.loops_tied + d.loops_tied,
            rejected_open: self.rejected_open + d.rejected_open,
            rejected_size: self.rejected_size + d.rejected_size,
            rejected_loop_guard: self.rejected_loop_guard + d.rejected_loop_guard,
            rejected_budget: self.rejected_budget + d.rejected_budget,
            branches_pruned: self.branches_pruned + d.branches_pruned,
            divergence_prunes: self.divergence_prunes + d.divergence_prunes,
            unrolled: self.unrolled + d.unrolled,
        }
    }
}

/// The inliner packaged for `fdi-core`'s unified pass manager: a plain
/// struct carrying the inliner's knobs. The `Pass` trait itself lives in
/// `fdi-core`, which implements it over this type.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlinePass {
    /// The inliner's configuration.
    pub config: InlineConfig,
}

impl InlinePass {
    /// Stable pass name; also resolves the fault-injection point and the
    /// schedule-grammar keyword.
    pub const NAME: &'static str = "inline";
    /// Schedule-fingerprint salt for this pass's behaviour version.
    pub const SALT: u64 = 0x1a11_4e01;

    /// One application of the pass: exactly [`inline_program`].
    pub fn apply(&self, program: &Program, flow: &FlowAnalysis) -> (Program, InlineReport) {
        inline_program(program, flow, &self.config)
    }

    /// One application with full decision provenance and telemetry.
    pub fn apply_recorded(
        &self,
        program: &Program,
        flow: &FlowAnalysis,
        telemetry: &Telemetry,
    ) -> InlineOutcome {
        inline_program_recorded(program, flow, &self.config, telemetry)
    }

    /// [`InlinePass::apply_recorded`] under an explicit runtime (shared
    /// specialization cache, parallel units). Output is byte-identical to
    /// the sequential, cache-free run.
    pub fn apply_with(
        &self,
        program: &Program,
        flow: &FlowAnalysis,
        telemetry: &Telemetry,
        rt: InlineRuntime<'_>,
    ) -> InlineOutcome {
        inline_program_with(program, flow, &self.config, rt, telemetry)
    }

    /// One application under a whole-run size budget with optional
    /// benefit-ordered priority: exactly [`inline_program_budgeted`].
    pub fn apply_budgeted(
        &self,
        program: &Program,
        flow: &FlowAnalysis,
        guide: Option<&InlineGuide>,
        size_budget: Option<usize>,
        telemetry: &Telemetry,
    ) -> InlineOutcome {
        inline_program_budgeted(program, flow, &self.config, guide, size_budget, telemetry)
    }

    /// [`InlinePass::apply_budgeted`] under an explicit runtime.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_budgeted_with(
        &self,
        program: &Program,
        flow: &FlowAnalysis,
        guide: Option<&InlineGuide>,
        size_budget: Option<usize>,
        telemetry: &Telemetry,
        rt: InlineRuntime<'_>,
    ) -> InlineOutcome {
        inline_program_budgeted_with(
            program,
            flow,
            &self.config,
            guide,
            size_budget,
            telemetry,
            rt,
        )
    }
}

/// Everything one inlining run produced: the rewritten program, the
/// aggregate counters, and per-call-site decision provenance.
#[derive(Debug, Clone)]
pub struct InlineOutcome {
    /// The rewritten (not yet simplified) program.
    pub program: Program,
    /// Aggregate counters.
    pub report: InlineReport,
    /// One record per candidate call site that reached a final verdict, in
    /// transformation order. Candidates are sites whose operator value set
    /// contains at least one closure. Records inside *discarded*
    /// speculations are dropped (the aggregate counters, historically, are
    /// not rolled back — so counter totals may exceed record totals when
    /// speculative inlining unwinds).
    pub decisions: Vec<DecisionRecord>,
}

/// Runs flow-directed inlining over `program` using `flow`.
///
/// The returned program is *not* yet simplified; run
/// `fdi_simplify::simplify` afterwards, as §2.3 prescribes.
pub fn inline_program(
    program: &Program,
    flow: &FlowAnalysis,
    config: &InlineConfig,
) -> (Program, InlineReport) {
    let out = inline_program_recorded(program, flow, config, &Telemetry::off());
    (out.program, out.report)
}

/// [`inline_program`] with decision provenance: returns per-call-site
/// [`DecisionRecord`]s alongside the program, and emits each record (plus an
/// `inline` span) into `telemetry` when a collector is installed. The
/// rewritten program and report are byte-identical to [`inline_program`]'s
/// regardless of the telemetry handle.
pub fn inline_program_recorded(
    program: &Program,
    flow: &FlowAnalysis,
    config: &InlineConfig,
    telemetry: &Telemetry,
) -> InlineOutcome {
    inline_program_with(
        program,
        flow,
        config,
        InlineRuntime::sequential(),
        telemetry,
    )
}

/// [`inline_program_recorded`] under an explicit [`InlineRuntime`]: a shared
/// [`SpecializationCache`] memoizes outermost specializations across runs,
/// and `units > 1` shards the root letrec's bindings across threads. Both
/// are transparent — the output is byte-identical to the sequential,
/// cache-free run (replays carry an exact footprint of the ambient facts the
/// recorded construction consulted, and stale footprints fall back to a live
/// specialization).
pub fn inline_program_with(
    program: &Program,
    flow: &FlowAnalysis,
    config: &InlineConfig,
    rt: InlineRuntime<'_>,
    telemetry: &Telemetry,
) -> InlineOutcome {
    let out = run_inliner(program, flow, config, None, rt, telemetry);
    // Decisions are emitted only once the run is complete, so discarded
    // speculations never leak ghost records into the collector.
    for record in &out.decisions {
        telemetry.decision(record);
    }
    out
}

/// [`inline_program_recorded`] under a whole-run *size budget*: the total
/// specialized size committed across all inlined sites may not exceed
/// `size_budget`.
///
/// The run is probe-order-commit. A silent probe pass discovers every
/// site the threshold-driven inliner would specialize and how much total
/// specialized size each distinct `(site, contour)` key commits. Those
/// keys are grouped into admission *units* and put in priority order:
/// static order is one key per unit in probe (syntactic) order; a guide
/// groups a label's every contour key into one unit and sorts units by
/// benefit *density* (measured dynamic call overhead per unit of probe
/// size), ties broken by probe order. The budget is then allocated by
/// *measurement*, not estimate: a binary search over gated inliner runs
/// finds the longest prefix of the priority order whose committed total
/// fits the budget, and a greedy extension pass tries each remaining unit
/// that could still fit, keeping it only if the re-measured commit stays
/// within budget. Denied sites record
/// [`DecisionReason::SizeBudgetExhausted`] and stay plain calls.
///
/// Probe estimates steer only the ordering and the extension pruning — a
/// key may fire in more copies under the gate than the probe saw, so
/// every kept plan is one the inliner actually committed within budget.
/// The budget is a **hard cap on the committed total**; an over-budget
/// commit is never returned. Only the final commit's decisions reach
/// telemetry.
///
/// With `size_budget == None` there is nothing to gate and this is exactly
/// [`inline_program_recorded`] — guide or not, the output is byte-identical
/// to the static run.
pub fn inline_program_budgeted(
    program: &Program,
    flow: &FlowAnalysis,
    config: &InlineConfig,
    guide: Option<&InlineGuide>,
    size_budget: Option<usize>,
    telemetry: &Telemetry,
) -> InlineOutcome {
    inline_program_budgeted_with(
        program,
        flow,
        config,
        guide,
        size_budget,
        telemetry,
        InlineRuntime::sequential(),
    )
}

/// [`inline_program_budgeted`] under an explicit [`InlineRuntime`]. The
/// ungated probe pass may reuse memoized specializations; gated commit
/// passes always specialize live (a budget gate changes which nested sites
/// inline, which the memo footprint does not model).
#[allow(clippy::too_many_arguments)]
pub fn inline_program_budgeted_with(
    program: &Program,
    flow: &FlowAnalysis,
    config: &InlineConfig,
    guide: Option<&InlineGuide>,
    size_budget: Option<usize>,
    telemetry: &Telemetry,
    rt: InlineRuntime<'_>,
) -> InlineOutcome {
    let Some(budget) = size_budget else {
        return inline_program_with(program, flow, config, rt, telemetry);
    };
    let probe = run_inliner(program, flow, config, None, rt, telemetry);
    // Committed-size totals per key, as last observed (the estimate the
    // greedy plan allocates by); plus each key's first probe occurrence,
    // the static priority and the guide's tie-break.
    let per_key_totals = |decisions: &[DecisionRecord]| {
        let mut totals: HashMap<(String, String), usize> = HashMap::new();
        for d in decisions {
            if let DecisionReason::Inlined { specialized_size } = d.reason {
                *totals
                    .entry((d.site_label.clone(), d.contour.clone()))
                    .or_insert(0) += specialized_size;
            }
        }
        totals
    };
    let estimate = per_key_totals(&probe.decisions);
    // Planning units: one per admission decision. Static order plans per
    // (site, contour) key in probe order. A guide plans per *label* — the
    // profile's granularity — so a hot label's every contour variant is
    // admitted (and charged) together: crediting the label's full dynamic
    // cost to each variant separately would spend budget on cold-contour
    // duplicates of hot labels.
    struct Unit {
        index: usize,
        keys: Vec<(String, String)>,
        benefit: u64,
    }
    // A label the probe tied as a loop back-edge realizes almost none of
    // its measured benefit: the profile counted every iteration through
    // the site, but inlining eliminates only the loop *entry* — the
    // back-edge is tied to a residual loop and keeps paying call overhead.
    // Such labels sort last (benefit 0) rather than soaking up budget the
    // hot straight-line sites could use.
    let loopy: HashSet<&str> = probe
        .decisions
        .iter()
        .filter(|d| matches!(d.reason, DecisionReason::LoopGuard))
        .map(|d| d.site_label.as_str())
        .collect();
    let mut units: Vec<Unit> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (i, d) in probe.decisions.iter().enumerate() {
        if let DecisionReason::Inlined { .. } = d.reason {
            let key = (d.site_label.clone(), d.contour.clone());
            match guide {
                None => {
                    if !units.iter().any(|u| u.keys[0] == key) {
                        units.push(Unit {
                            index: i,
                            keys: vec![key],
                            benefit: 0,
                        });
                    }
                }
                Some(g) => match seen.entry(d.site_label.clone()) {
                    Entry::Occupied(e) => {
                        let unit = &mut units[*e.get()];
                        if !unit.keys.contains(&key) {
                            unit.keys.push(key);
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(units.len());
                        units.push(Unit {
                            index: i,
                            keys: vec![key],
                            benefit: if loopy.contains(d.site_label.as_str()) {
                                0
                            } else {
                                g.benefit(&d.site_label)
                            },
                        });
                    }
                },
            }
        }
    }
    let unit_size = |u: &Unit, estimate: &HashMap<(String, String), usize>| -> usize {
        u.keys
            .iter()
            .map(|k| estimate.get(k).copied().unwrap_or(0))
            .sum()
    };
    if guide.is_some() {
        // Greedy knapsack order: benefit *density* (dynamic cost saved per
        // unit of specialized size committed), not raw benefit — a huge hot
        // site must not crowd out several cheap warm ones. Cross-multiplied
        // in u128 so the comparison is exact; zero-size units are free and
        // sort first; ties fall back to probe order. Sorted once, on probe
        // estimates, so re-planning rounds never reshuffle priorities.
        let density: Vec<(u128, u128, usize)> = units
            .iter()
            .map(|u| (u.benefit as u128, unit_size(u, &estimate) as u128, u.index))
            .collect();
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by(|&a, &b| {
            let ((ba, sa, ia), (bb, sb, ib)) = (density[a], density[b]);
            (bb * sa).cmp(&(ba * sb)).then(ia.cmp(&ib))
        });
        units = {
            let mut by_pos: Vec<Option<Unit>> = units.into_iter().map(Some).collect();
            order.iter().map(|&i| by_pos[i].take().unwrap()).collect()
        };
    }
    // Commit under a given admission set, measuring the actual total. The
    // gate denies any key outside `allow`, so an empty admission commits 0
    // and every measurement is a plan the inliner really executed.
    let commit = |admit: &[bool]| -> (InlineOutcome, usize) {
        let mut gate = Gate {
            allow: HashSet::new(),
            denied: HashMap::new(),
            budget,
        };
        for (u, &on) in units.iter().zip(admit) {
            if on {
                gate.allow.extend(u.keys.iter().cloned());
            } else {
                for k in &u.keys {
                    gate.denied
                        .insert(k.clone(), estimate.get(k).copied().unwrap_or(0));
                }
            }
        }
        let out = run_inliner(program, flow, config, Some(gate), rt, telemetry);
        let total = per_key_totals(&out.decisions).values().sum::<usize>();
        (out, total)
    };
    // Longest admissible prefix of the priority order, by measurement: a
    // gated key can fire in more copies than the probe saw, so probe
    // estimates cannot allocate the budget — each probe here is a real
    // commit. The empty prefix commits nothing, so `lo` always holds a
    // within-budget plan.
    let mut admit = vec![false; units.len()];
    let (mut best, mut best_total) = (None, 0usize);
    let (mut lo, mut hi) = (0usize, units.len());
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        admit[..mid].fill(true);
        admit[mid..].fill(false);
        let (out, total) = commit(&admit);
        if total <= budget {
            best = Some(out);
            best_total = total;
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    admit[..lo].fill(true);
    admit[lo..].fill(false);
    let mut out = match best {
        Some(out) => out,
        None => {
            let (out, total) = commit(&admit);
            best_total = total;
            out
        }
    };
    // Greedy extension: the prefix may stop at one oversized unit while
    // later, smaller ones still fit. Try each remaining unit whose probe
    // estimate fits the measured slack; keep it only if the re-measured
    // commit stays within budget.
    for i in lo..units.len() {
        if unit_size(&units[i], &estimate) > budget - best_total {
            continue;
        }
        admit[i] = true;
        let (ext, total) = commit(&admit);
        if total <= budget {
            out = ext;
            best_total = total;
        } else {
            admit[i] = false;
        }
    }
    for record in &out.decisions {
        telemetry.decision(record);
    }
    out
}

/// The commit-phase allow set of a budgeted run: only keys in `allow` may
/// inline; `denied` remembers each cut site's planned size for its
/// [`DecisionReason::SizeBudgetExhausted`] record. Keys are
/// `(site label, contour)` strings, matching [`DecisionRecord`]s.
struct Gate {
    allow: HashSet<(String, String)>,
    denied: HashMap<(String, String), usize>,
    budget: usize,
}

/// One full inliner pass, optionally gated by a budget plan. Emits nothing
/// into telemetry besides cache/unit tracing — callers emit decisions, once
/// the run is final.
fn run_inliner(
    program: &Program,
    flow: &FlowAnalysis,
    config: &InlineConfig,
    gate: Option<Gate>,
    rt: InlineRuntime<'_>,
    telemetry: &Telemetry,
) -> InlineOutcome {
    let mut rhs_of = HashMap::new();
    for l in program.reachable() {
        if let ExprKind::Let(bindings, _) | ExprKind::Letrec(bindings, _) = program.expr(l) {
            for &(v, e) in bindings {
                rhs_of.insert(v, e);
            }
        }
    }
    // Pre-intern the inliner's generated names: after this point no
    // transformation interns anything (copied variables reuse their source
    // `Sym`s), so every parallel unit — and every run over the same source —
    // shares one interner layout. This is what lets memoized entries store
    // `Sym`s directly and lets units discard their interner clones at merge.
    let mut interner = program.interner().clone();
    interner.intern("%inl");
    interner.intern("%w");
    let shared = Shared {
        old: program,
        flow,
        config: *config,
        gate,
        fv: FreeVars::compute(program),
        rhs_of,
        cache: rt.cache,
        units: rt.units.max(1),
        telemetry,
    };
    let mut inliner = Inliner::new(&shared, Program::new(interner));
    let root = inliner
        .transform(program.root(), Ctx::At(ContourId::EMPTY))
        .expect("top-level transform cannot poison");
    inliner.out.set_root(root);
    debug_assert!(
        fdi_lang::validate(&inliner.out).is_ok(),
        "inliner produced ill-formed AST: {:?}",
        fdi_lang::validate(&inliner.out)
    );
    if shared.cache.is_some() {
        telemetry.instant(
            "specialize.cache",
            "inline",
            &[
                ("hits", inliner.run_hits.to_string()),
                ("misses", inliner.run_misses.to_string()),
            ],
        );
    }
    InlineOutcome {
        program: inliner.out,
        report: inliner.report,
        decisions: inliner.decisions,
    }
}

/// Aborts a speculative specialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Poison {
    /// Closed-mode body referenced a disallowed free variable: the nearest
    /// enclosing speculation rejects and falls back to a plain call.
    Open,
    /// The outermost speculation's size budget was exceeded: unwind the
    /// whole nest.
    TooBig,
}

/// How one specialization attempt ended (internal to the transformer).
enum Attempt {
    /// Inlined: the resulting expression and the specialized body size.
    Inlined(Label, usize),
    /// Rejected; the caller attributes counters and records the reason.
    Rejected(Reject),
}

/// Why a specialization attempt was rejected.
enum Reject {
    /// Closed-mode free-variable violation; carries how many free variables
    /// this speculation had to poison (0 when the blocking reference was
    /// poisoned by an enclosing speculation).
    Open { free_vars: usize },
    /// The specialized body was too big: either measured over the threshold,
    /// or aborted mid-construction (where `size` counts the arena nodes
    /// built before the budget tripped).
    TooBig { size: usize },
}

/// A constructed (pre-gate) specialization: everything [`Inliner::try_inline`]
/// needs to run the `Inline?` gate and, on acceptance, commit the
/// `(letrec ((y λ')) (call y …))` wrapper. All labels/variables index the
/// current output arena — memoized entries store these record-side and
/// relocate on replay.
#[derive(Debug, Clone)]
pub(crate) struct SpecData {
    letrec_label: Label,
    lam_label: Label,
    y: VarId,
    w: VarId,
    new_params: Vec<VarId>,
    body: Label,
    cl_ref_binds: Vec<(VarId, u32)>,
    specialized_size: usize,
}

/// How one outermost-eligible specialization construction ended. Unlike
/// [`Attempt`], the `Inline?` gate has *not* run yet: `Done` may still be
/// rejected by size at the current threshold. This is the memoization unit.
#[derive(Debug, Clone)]
pub(crate) enum SpecAttempt {
    /// Construction finished; the gate decides.
    Done(SpecData),
    /// Closed-mode free-variable violation (see [`Reject::Open`]).
    Open { free_vars: usize },
    /// Construction aborted past the size budget (see [`Reject::TooBig`]).
    TooBig { size: usize },
}

/// Hard cap on transform recursion through nested inlines; combined with the
/// loop map this cannot trigger on sane thresholds, but keeps adversarial
/// configurations from overflowing the stack.
const MAX_INLINE_DEPTH: usize = 64;

/// Run-wide immutable state, shared by the main transformer and every
/// parallel inlining unit.
struct Shared<'p> {
    old: &'p Program,
    flow: &'p FlowAnalysis,
    config: InlineConfig,
    /// Budget plan of a commit pass; `None` runs ungated (the historical
    /// behaviour, and the probe pass).
    gate: Option<Gate>,
    fv: FreeVars,
    /// Binding right-hand sides: variable → RHS label, for recognizing
    /// direct calls to locally-bound procedures.
    rhs_of: HashMap<VarId, Label>,
    /// Memo table for outermost specializations, with its content salt.
    cache: Option<(&'p SpecializationCache, u64)>,
    /// Parallel inlining units for the root letrec (1 = sequential).
    units: usize,
    telemetry: &'p Telemetry,
}

struct Inliner<'p, 's> {
    sh: &'s Shared<'p>,
    out: Program,
    /// Scope-ordered variable renaming; `None` marks a poisoned variable.
    vmap: Vec<(VarId, Option<VarId>)>,
    /// The loop map ρ: (λ label, specialization contour) → loop variable,
    /// plus whether that variable's λ carries the extra `w` parameter
    /// (call-site specializations do; letrec-registered originals do not).
    loop_map: Vec<((Label, ContourId), (VarId, bool))>,
    report: InlineReport,
    /// Decision provenance for candidate call sites, in transformation
    /// order; truncated back when a speculation is discarded.
    decisions: Vec<DecisionRecord>,
    depth: usize,
    /// Arena sizes at the start of each in-flight speculative inline; a
    /// specialization that grows past its budget aborts immediately instead
    /// of finishing construction (the paper's footnote 2 estimates the
    /// specialized size "without actually constructing it"; we construct,
    /// but bail out as soon as the budget is exceeded).
    size_marks: Vec<usize>,
    /// Live footprint/validity bookkeeping while an outermost
    /// specialization records a cache entry.
    rec: Option<Recording>,
    run_hits: u64,
    run_misses: u64,
}

/// One parallel unit's results, merged back in binding order.
struct UnitOut {
    out: Program,
    /// Unit-arena labels of the transformed binding λs, in binding order.
    lambdas: Vec<Label>,
    report: InlineReport,
    decisions: Vec<DecisionRecord>,
    run_hits: u64,
    run_misses: u64,
}

/// Split `n` bindings into at most `units` contiguous, near-even chunks.
fn chunk_ranges(n: usize, units: usize) -> Vec<(usize, usize)> {
    let units = units.min(n).max(1);
    let (base, extra) = (n / units, n % units);
    let mut out = Vec::with_capacity(units);
    let mut start = 0;
    for i in 0..units {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

impl<'p, 's> Inliner<'p, 's> {
    fn new(sh: &'s Shared<'p>, out: Program) -> Inliner<'p, 's> {
        Inliner {
            sh,
            out,
            vmap: Vec::new(),
            loop_map: Vec::new(),
            report: InlineReport::default(),
            decisions: Vec::new(),
            depth: 0,
            size_marks: Vec::new(),
            rec: None,
            run_hits: 0,
            run_misses: 0,
        }
    }

    fn lookup(&mut self, v: VarId) -> Option<Option<VarId>> {
        let found = self
            .vmap
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &(w, _))| w == v);
        let (idx, res) = match found {
            Some((i, &(_, nv))) => (Some(i), Some(nv)),
            None => (None, None),
        };
        if let Some(rec) = &mut self.rec {
            // Resolutions below the region's watermark (or misses) read
            // *ambient* state: they are part of the entry's footprint.
            if idx.is_none_or(|i| i < rec.vmark) {
                rec.note_var(v, res);
            }
        }
        res
    }

    /// [`Inliner::lookup`] without footprint recording, for probing whether
    /// a candidate entry's recorded footprint still holds.
    fn lookup_raw(&self, v: VarId) -> Option<Option<VarId>> {
        self.vmap
            .iter()
            .rev()
            .find(|&&(w, _)| w == v)
            .map(|&(_, nv)| nv)
    }

    fn loop_var(&mut self, lam: Label, k: ContourId) -> Option<(VarId, bool)> {
        let found = self
            .loop_map
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &(key, _))| key == (lam, k));
        let (idx, res) = match found {
            Some((i, &(_, y))) => (Some(i), Some(y)),
            None => (None, None),
        };
        if let Some(rec) = &mut self.rec {
            if idx.is_none_or(|i| i < rec.lmark) {
                rec.note_loop(lam, k, res);
            }
        }
        res
    }

    fn loop_var_raw(&self, lam: Label, k: ContourId) -> Option<(VarId, bool)> {
        self.loop_map
            .iter()
            .rev()
            .find(|&&(key, _)| key == (lam, k))
            .map(|&(_, y)| y)
    }

    fn fresh_var(&mut self, name: &str, binder: Binder, top_level: bool) -> VarId {
        let sym = self.out.interner_mut().intern(name);
        self.out.add_var(VarInfo {
            name: sym,
            binder,
            top_level,
        })
    }

    fn fresh_from(&mut self, old_var: VarId, binder: Binder) -> VarId {
        let info = *self.sh.old.var(old_var);
        let nv = self.out.add_var(VarInfo {
            name: info.name,
            binder,
            top_level: info.top_level,
        });
        self.vmap.push((old_var, Some(nv)));
        nv
    }

    fn konst(&mut self, c: Const) -> Label {
        self.out.add_expr(ExprKind::Const(c))
    }

    /// The contour column of a decision record: `?` is the union contour,
    /// `∅` a dead context.
    fn ctx_string(ctx: Ctx) -> String {
        match ctx {
            Ctx::Top => "?".to_string(),
            Ctx::At(k) => k.to_string(),
            Ctx::Dead => "∅".to_string(),
        }
    }

    /// Human-readable callee: the operator variable's source name when the
    /// operator is a variable, otherwise the callee λ's label (or the
    /// operator expression's label when no unique callee exists).
    fn callee_string(&self, op: Label, lambda: Option<Label>) -> String {
        if let ExprKind::Var(v) = self.sh.old.expr(op) {
            return self.sh.old.var_name(*v).to_string();
        }
        match lambda {
            Some(l) => format!("λ{l}"),
            None => format!("<{op}>"),
        }
    }

    /// When a budget plan is active and does not admit this site, the size
    /// its specialization would have added (0 when the probe never priced
    /// it). `None` means the site may try to inline.
    fn gate_denied(&self, site: Label, ctx: Ctx) -> Option<usize> {
        let gate = self.sh.gate.as_ref()?;
        let key = (site.to_string(), Self::ctx_string(ctx));
        if gate.allow.contains(&key) {
            None
        } else {
            Some(gate.denied.get(&key).copied().unwrap_or(0))
        }
    }

    fn record_decision(&mut self, site: Label, ctx: Ctx, callee: String, reason: DecisionReason) {
        self.decisions.push(DecisionRecord {
            site_label: site.to_string(),
            contour: Self::ctx_string(ctx),
            callee,
            verdict: reason.verdict(),
            reason,
        });
    }

    // --- the transformation I[e]κρ -----------------------------------------

    fn transform(&mut self, l: Label, ctx: Ctx) -> Result<Label, Poison> {
        if let Some(&mark) = self.size_marks.first() {
            // Generous slack: arena nodes include speculative garbage, and
            // the size metric is roughly one unit per node.
            let budget = mark + self.sh.config.threshold.max(1) * 8;
            let count = self.out.expr_count();
            if count > budget {
                if let Some(rec) = &mut self.rec {
                    // The outermost mark is the recording region's own, so
                    // this growth is exactly the one a replaying threshold
                    // must also trip on.
                    rec.trip_growth = Some(count - mark);
                }
                return Err(Poison::TooBig);
            }
            if let Some(rec) = &mut self.rec {
                rec.max_growth = rec.max_growth.max(count - mark);
            }
        }
        match self.sh.old.expr(l).clone() {
            ExprKind::Const(c) => Ok(self.konst(c)),
            ExprKind::Var(v) => match self.lookup(v) {
                Some(Some(nv)) => Ok(self.out.add_expr(ExprKind::Var(nv))),
                Some(None) => Err(Poison::Open),
                None => unreachable!("variable {v} not in transform scope"),
            },
            ExprKind::Prim(p, args) => {
                if let Some(done) = self.prune_divergent_sequence(&args, ctx)? {
                    return Ok(done);
                }
                let new_args = args
                    .iter()
                    .map(|&a| self.transform(a, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.out.add_expr(ExprKind::Prim(p, new_args)))
            }
            ExprKind::Call(parts) => self.transform_call(l, &parts, ctx),
            ExprKind::Apply(f, arg) => {
                self.report.calls_seen += 1;
                let nf = self.transform(f, ctx)?;
                let na = self.transform(arg, ctx)?;
                Ok(self.out.add_expr(ExprKind::Apply(nf, na)))
            }
            ExprKind::Begin(parts) => {
                if let Some(done) = self.prune_divergent_sequence(&parts, ctx)? {
                    return Ok(done);
                }
                let new_parts = parts
                    .iter()
                    .map(|&e| self.transform(e, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.out.add_expr(ExprKind::Begin(new_parts)))
            }
            ExprKind::If(c, t, e) => self.transform_if(c, t, e, ctx),
            ExprKind::Let(bindings, body) => {
                let rhs_ctx = self.sh.flow.extend_ctx(ctx, l);
                let label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
                let mark = self.vmap.len();
                let mut rhss = Vec::new();
                for &(_, e) in &bindings {
                    rhss.push(self.transform(e, rhs_ctx)?);
                }
                let mut new_bindings = Vec::new();
                for (&(x, _), ne) in bindings.iter().zip(rhss) {
                    let nx = self.fresh_from(x, Binder::Let(label));
                    new_bindings.push((nx, ne));
                }
                let nbody = self.transform(body, ctx);
                self.vmap.truncate(mark);
                let nbody = nbody?;
                self.out.set_expr(label, ExprKind::Let(new_bindings, nbody));
                Ok(label)
            }
            ExprKind::Letrec(bindings, body) => self.transform_letrec(l, &bindings, body, ctx),
            ExprKind::Lambda(lam) => {
                // Original copies of λ-expressions are not specialized to any
                // contour: their bodies transform in the union contour `?`.
                self.transform_lambda(l, &lam, Ctx::Top)
            }
            ExprKind::ClRef(e, n) => {
                let ne = self.transform(e, ctx)?;
                Ok(self.out.add_expr(ExprKind::ClRef(ne, n)))
            }
        }
    }

    fn transform_lambda(
        &mut self,
        old_label: Label,
        lam: &LambdaInfo,
        body_ctx: Ctx,
    ) -> Result<Label, Poison> {
        let label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
        // In ClRef mode the capture layout of every original λ copy is
        // pinned to the source free-variable order, so the `cl-ref` indices
        // emitted at inline sites stay valid under later simplification
        // (§3.5's `[z1 … zm]` annotation).
        if self.sh.config.mode == InlineMode::ClRef {
            if let Some(free) = self.sh.fv.get(old_label) {
                let free = free.to_vec();
                let mapped: Option<Vec<VarId>> =
                    free.iter().map(|&z| self.lookup(z).flatten()).collect();
                if let Some(pins) = mapped {
                    if !pins.is_empty() {
                        if let Some(rec) = &mut self.rec {
                            rec.pins.push((label, pins.clone()));
                        }
                        self.out.pin_captures(label, pins);
                    }
                }
            }
        }
        let mark = self.vmap.len();
        let params: Vec<VarId> = lam
            .params
            .iter()
            .map(|&p| self.fresh_from(p, Binder::Lambda(label)))
            .collect();
        let rest = lam.rest.map(|r| self.fresh_from(r, Binder::Lambda(label)));
        let body = self.transform(lam.body, body_ctx);
        self.vmap.truncate(mark);
        let body = body?;
        self.out
            .set_expr(label, ExprKind::Lambda(LambdaInfo { params, rest, body }));
        Ok(label)
    }

    fn transform_letrec(
        &mut self,
        l: Label,
        bindings: &[(VarId, Label)],
        body: Label,
        ctx: Ctx,
    ) -> Result<Label, Poison> {
        let units = self.plan_units(l, bindings);
        let rhs_ctx = self.sh.flow.extend_ctx(ctx, l);
        let label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
        let vmark = self.vmap.len();
        let lmark = self.loop_map.len();
        let mut new_vars = Vec::new();
        for &(y, f) in bindings {
            let ny = self.fresh_from(y, Binder::Letrec(label));
            new_vars.push(ny);
            // Register each letrec procedure in the loop map for its binding
            // contour: recursive references (which the analysis does not
            // split) then emit plain calls to the letrec variable instead of
            // unfolding. Only meaningful under a splitting policy — without
            // splitting every call shares the binding contour and
            // registration would suppress inlining entirely.
            if self.sh.flow.policy().splits() {
                if let Ctx::At(k) = rhs_ctx {
                    self.loop_map.push(((f, k), (ny, false)));
                }
            }
        }
        let result = if units > 1 {
            self.transform_letrec_parallel(bindings, body, ctx, label, &new_vars, units)
        } else {
            (|| -> Result<Label, Poison> {
                let mut new_bindings = Vec::new();
                for (i, &(_, f)) in bindings.iter().enumerate() {
                    let ExprKind::Lambda(lam) = self.sh.old.expr(f).clone() else {
                        unreachable!("letrec rhs is a lambda")
                    };
                    let nf = self.transform_lambda(f, &lam, Ctx::Top)?;
                    new_bindings.push((new_vars[i], nf));
                }
                let nbody = self.transform(body, ctx)?;
                self.out
                    .set_expr(label, ExprKind::Letrec(new_bindings, nbody));
                Ok(label)
            })()
        };
        self.vmap.truncate(vmark);
        self.loop_map.truncate(lmark);
        result
    }

    /// How many parallel units to split this letrec across. Only the
    /// outermost (root) letrec — the top-level `define` chain — is sharded:
    /// its bindings transform independently (each `transform_lambda`
    /// restores every stack it touches), so chunks of bindings can run on
    /// separate threads against private output arenas and merge in binding
    /// order with a pure index relocation.
    fn plan_units(&self, l: Label, bindings: &[(VarId, Label)]) -> usize {
        if self.sh.units <= 1
            || self.depth != 0
            || l != self.sh.old.root()
            || self.rec.is_some()
            || bindings.len() < 2
        {
            return 1;
        }
        self.sh.units.min(bindings.len())
    }

    #[allow(clippy::too_many_arguments)]
    fn transform_letrec_parallel(
        &mut self,
        bindings: &[(VarId, Label)],
        body: Label,
        ctx: Ctx,
        label: Label,
        new_vars: &[VarId],
        units: usize,
    ) -> Result<Label, Poison> {
        let sh = self.sh;
        let v_base = self.out.var_count();
        let seed_vars: Vec<VarInfo> = (0..v_base)
            .map(|i| *self.out.var(VarId(i as u32)))
            .collect();
        let chunks = chunk_ranges(bindings.len(), units);
        let unit_outs: Vec<Result<UnitOut, Poison>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(start, end)| {
                    let vmap = self.vmap.clone();
                    let loop_map = self.loop_map.clone();
                    let interner = self.out.interner().clone();
                    let seed = &seed_vars;
                    scope.spawn(move || {
                        let _span = sh.telemetry.span("inline.unit", "inline");
                        let mut out = Program::new(interner);
                        for vi in seed {
                            out.add_var(*vi);
                        }
                        let mut unit = Inliner::new(sh, out);
                        unit.vmap = vmap;
                        unit.loop_map = loop_map;
                        let mut lambdas = Vec::new();
                        for &(_, f) in &bindings[start..end] {
                            let ExprKind::Lambda(lam) = sh.old.expr(f).clone() else {
                                unreachable!("letrec rhs is a lambda")
                            };
                            lambdas.push(unit.transform_lambda(f, &lam, Ctx::Top)?);
                        }
                        Ok(UnitOut {
                            out: unit.out,
                            lambdas,
                            report: unit.report,
                            decisions: unit.decisions,
                            run_hits: unit.run_hits,
                            run_misses: unit.run_misses,
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("inlining unit panicked"))
                .collect()
        });
        let mut new_bindings = Vec::new();
        let mut idx = 0usize;
        for r in unit_outs {
            let u = r?;
            for nf in self.merge_unit(u, v_base) {
                new_bindings.push((new_vars[idx], nf));
                idx += 1;
            }
        }
        let nbody = self.transform(body, ctx)?;
        self.out
            .set_expr(label, ExprKind::Letrec(new_bindings, nbody));
        Ok(label)
    }

    /// Appends one unit's private arena onto the main one. Unit expressions
    /// only reference unit labels (0-based), and unit variables split into
    /// the seeded ambient prefix (`< v_base`, kept verbatim — those indices
    /// are the main arena's) and unit-fresh variables (relocated). Because
    /// units are merged in binding order and each binding's allocations are
    /// self-contained, the merged arena is label-for-label identical to the
    /// sequential run's.
    fn merge_unit(&mut self, u: UnitOut, v_base: usize) -> Vec<Label> {
        let label_offset = self.out.expr_count() as u32;
        let var_offset = self.out.var_count() as u32 - v_base as u32;
        let vb = v_base as u32;
        let rl = move |l: Label| Label(l.0 + label_offset);
        let rv = move |v: VarId| {
            if v.0 < vb {
                v
            } else {
                VarId(v.0 + var_offset)
            }
        };
        for l in 0..u.out.expr_count() {
            let nk = fdi_lang::map_expr_refs(u.out.expr(Label(l as u32)), rl, rv);
            self.out.add_expr(nk);
        }
        for v in v_base..u.out.var_count() {
            let vi = *u.out.var(VarId(v as u32));
            self.out.add_var(VarInfo {
                name: vi.name,
                binder: vi.binder.map_label(rl),
                top_level: vi.top_level,
            });
        }
        for (l, pins) in u.out.pinned_captures_all() {
            self.out
                .pin_captures(rl(l), pins.iter().map(|&p| rv(p)).collect());
        }
        self.report = self.report.merged(u.report);
        self.decisions.extend(u.decisions);
        self.run_hits += u.run_hits;
        self.run_misses += u.run_misses;
        u.lambdas.iter().map(|&l| rl(l)).collect()
    }

    fn transform_if(&mut self, c: Label, t: Label, e: Label, ctx: Ctx) -> Result<Label, Poison> {
        let test_vals = self.sh.flow.values(c, ctx);
        let may_true = test_vals.may_be_true();
        let may_false = test_vals.may_be_false();
        let nc = self.transform(c, ctx)?;
        match (may_true, may_false) {
            (true, true) => {
                let nt = self.transform(t, ctx)?;
                let ne = self.transform(e, ctx)?;
                Ok(self.out.add_expr(ExprKind::If(nc, nt, ne)))
            }
            (true, false) => {
                self.report.branches_pruned += 1;
                let nt = self.transform(t, ctx)?;
                Ok(self.out.add_expr(ExprKind::Begin(vec![nc, nt])))
            }
            (false, true) => {
                self.report.branches_pruned += 1;
                let ne = self.transform(e, ctx)?;
                Ok(self.out.add_expr(ExprKind::Begin(vec![nc, ne])))
            }
            (false, false) => {
                // The test diverges (or the context is dead): both branches
                // are pruned (Fig. 5's final case).
                self.report.branches_pruned += 2;
                Ok(nc)
            }
        }
    }

    fn transform_call(&mut self, site: Label, parts: &[Label], ctx: Ctx) -> Result<Label, Poison> {
        self.report.calls_seen += 1;
        if let Some(done) = self.prune_divergent_sequence(parts, ctx)? {
            return Ok(done);
        }
        let argc = parts.len() - 1;
        // Inlining Condition 1/2: a unique procedure in this context. Per
        // §3.3, the closures may differ in environment as long as they share
        // the same code; we additionally require a single specialization
        // contour so Fig. 5's specialization context is well defined.
        //
        // A site is a *candidate* (and gets a decision record) when at least
        // one closure flows to its operator; sites calling only primitives or
        // unreached code stay silent.
        let fn_vals = self.sh.flow.values(parts[0], ctx);
        let is_candidate = fn_vals.iter().any(|v| matches!(v, AbsVal::Clo(_)));
        let unique = self.unique_code_and_contour(&fn_vals);
        if let Some(cid) = unique {
            let c = self.sh.flow.closure(cid);
            let ExprKind::Lambda(lam) = self.sh.old.expr(c.lambda).clone() else {
                unreachable!("closure over non-lambda")
            };
            let callee = self.callee_string(parts[0], Some(c.lambda));
            if lam.accepts(argc) {
                match self.loop_var(c.lambda, c.contour) {
                    Some((y, true)) => {
                        // Already unfolding this procedure at this contour.
                        // With loop unrolling enabled, unfold up to `unroll`
                        // more copies before tying the back-edge.
                        let unfoldings = self
                            .loop_map
                            .iter()
                            .filter(|&&(key, (_, w))| key == (c.lambda, c.contour) && w)
                            .count();
                        if unfoldings <= self.sh.config.unroll && self.depth < MAX_INLINE_DEPTH {
                            if let Some(size) = self.gate_denied(site, ctx) {
                                // The budget plan cut this unfolding: tie the
                                // back-edge as if the unroll lost its turn.
                                self.report.rejected_budget += 1;
                                self.report.loops_tied += 1;
                                let budget = self.sh.gate.as_ref().map_or(0, |g| g.budget);
                                self.record_decision(
                                    site,
                                    ctx,
                                    callee,
                                    DecisionReason::SizeBudgetExhausted { size, budget },
                                );
                                return self.emit_loop_call(y, &lam, parts, ctx);
                            }
                            match self.try_inline(parts, ctx, cid, &lam)? {
                                Attempt::Inlined(done, size) => {
                                    self.report.unrolled += 1;
                                    self.record_decision(
                                        site,
                                        ctx,
                                        callee,
                                        DecisionReason::Inlined {
                                            specialized_size: size,
                                        },
                                    );
                                    return Ok(done);
                                }
                                Attempt::Rejected(Reject::Open { .. }) => {
                                    self.report.rejected_open += 1;
                                }
                                Attempt::Rejected(Reject::TooBig { .. }) => {
                                    self.report.rejected_loop_guard += 1;
                                }
                            }
                        }
                        self.report.loops_tied += 1;
                        self.record_decision(site, ctx, callee, DecisionReason::LoopGuard);
                        return self.emit_loop_call(y, &lam, parts, ctx);
                    }
                    Some((_, false)) => {
                        // A letrec-bound original: leave the call as-is (the
                        // operator already names the letrec variable). Not a
                        // decision — the site was never up for inlining.
                    }
                    None => {
                        if let Some(size) = self.gate_denied(site, ctx) {
                            // The budget plan cut this site: record the cut
                            // and fall through to a plain call.
                            self.report.rejected_budget += 1;
                            let budget = self.sh.gate.as_ref().map_or(0, |g| g.budget);
                            self.record_decision(
                                site,
                                ctx,
                                callee,
                                DecisionReason::SizeBudgetExhausted { size, budget },
                            );
                        } else if self.depth < MAX_INLINE_DEPTH {
                            match self.try_inline(parts, ctx, cid, &lam)? {
                                Attempt::Inlined(done, size) => {
                                    self.record_decision(
                                        site,
                                        ctx,
                                        callee,
                                        DecisionReason::Inlined {
                                            specialized_size: size,
                                        },
                                    );
                                    return Ok(done);
                                }
                                Attempt::Rejected(Reject::Open { free_vars }) => {
                                    self.report.rejected_open += 1;
                                    self.record_decision(
                                        site,
                                        ctx,
                                        callee,
                                        DecisionReason::OpenProcedure { free_vars },
                                    );
                                }
                                Attempt::Rejected(Reject::TooBig { size }) => {
                                    self.report.rejected_size += 1;
                                    self.record_decision(
                                        site,
                                        ctx,
                                        callee,
                                        DecisionReason::ThresholdExceeded {
                                            size,
                                            limit: self.sh.config.threshold,
                                        },
                                    );
                                }
                            }
                        } else {
                            self.record_decision(site, ctx, callee, DecisionReason::BudgetDenied);
                        }
                    }
                }
            } else {
                // A unique closure that cannot accept this arity: fold into
                // the non-unique reason (no single *compatible* procedure).
                self.record_decision(site, ctx, callee, DecisionReason::NonUniqueClosure);
            }
        } else if is_candidate {
            let callee = self.callee_string(parts[0], None);
            self.record_decision(site, ctx, callee, DecisionReason::NonUniqueClosure);
        }
        let new_parts = parts
            .iter()
            .map(|&e| self.transform(e, ctx))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.out.add_expr(ExprKind::Call(new_parts)))
    }

    /// §3.4 generalized pruning: with left-to-right evaluation, everything
    /// to the right of a subexpression whose abstract value is ⊥ (divergent
    /// or erroring) can never run. Returns the transformed prefix as a
    /// `begin` when such a subexpression exists (other than in last
    /// position, where the enclosing form is equivalent anyway).
    fn prune_divergent_sequence(
        &mut self,
        parts: &[Label],
        ctx: Ctx,
    ) -> Result<Option<Label>, Poison> {
        // Only meaningful in a live analyzed context: at `Dead` everything
        // is ⊥ and the caller's normal transformation handles it.
        if ctx == Ctx::Dead {
            return Ok(None);
        }
        let divergent = parts
            .iter()
            .position(|&e| self.sh.flow.reached(e, ctx) && self.sh.flow.values(e, ctx).is_empty());
        let Some(i) = divergent else {
            return Ok(None);
        };
        if i + 1 == parts.len() {
            return Ok(None);
        }
        self.report.divergence_prunes += parts.len() - i - 1;
        let kept = parts[..=i]
            .iter()
            .map(|&e| self.transform(e, ctx))
            .collect::<Result<Vec<_>, _>>()?;
        if kept.len() == 1 {
            return Ok(Some(kept[0]));
        }
        Ok(Some(self.out.add_expr(ExprKind::Begin(kept))))
    }

    /// All values are closures over one λ in one contour → representative.
    fn unique_code_and_contour(&self, vals: &fdi_cfa::ValSet) -> Option<ClosureId> {
        let mut rep: Option<(ClosureId, Label, ContourId)> = None;
        for v in vals.iter() {
            let AbsVal::Clo(id) = v else { return None };
            let c = self.sh.flow.closure(id);
            match rep {
                None => rep = Some((id, c.lambda, c.contour)),
                Some((_, l0, k0)) if l0 == c.lambda && k0 == c.contour => {}
                Some(_) => return None,
            }
        }
        rep.map(|(id, _, _)| id)
    }

    /// The operator expression passed as the extra `w` argument. In Closed
    /// mode `w` is never read, so a bare variable reference — which carries
    /// no effects, and may refer to a procedure that only stays inlinable if
    /// we do not materialize the reference (the paper's free-procedure
    /// exception) — becomes the unspecified constant. In ClRef mode the body
    /// loads captures through `w`, so the operator must be passed for real.
    fn w_argument(&mut self, e0: Label, ctx: Ctx) -> Result<Label, Poison> {
        let w_unused = self.sh.config.mode == InlineMode::Closed;
        if w_unused && matches!(self.sh.old.expr(e0), ExprKind::Var(_)) {
            Ok(self.konst(Const::Unspecified))
        } else {
            self.transform(e0, ctx)
        }
    }

    /// Arguments for a call to a specialized procedure `y`: fixed parameters
    /// pass through; a variadic callee's extra arguments build the rest list
    /// explicitly so the emitted λ has fixed arity.
    fn loop_call_args(
        &mut self,
        lam: &LambdaInfo,
        parts: &[Label],
        ctx: Ctx,
    ) -> Result<Vec<Label>, Poison> {
        let mut out = Vec::new();
        for &a in &parts[1..1 + lam.params.len()] {
            out.push(self.transform(a, ctx)?);
        }
        if lam.rest.is_some() {
            let extras = &parts[1 + lam.params.len()..];
            let transformed = extras
                .iter()
                .map(|&e| self.transform(e, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            let mut list = self.konst(Const::Nil);
            for e in transformed.into_iter().rev() {
                list = self
                    .out
                    .add_expr(ExprKind::Prim(PrimOp::Cons, vec![e, list]));
            }
            out.push(list);
        }
        Ok(out)
    }

    fn emit_loop_call(
        &mut self,
        y: VarId,
        lam: &LambdaInfo,
        parts: &[Label],
        ctx: Ctx,
    ) -> Result<Label, Poison> {
        let yref = self.out.add_expr(ExprKind::Var(y));
        let w = self.w_argument(parts[0], ctx)?;
        let mut call = vec![yref, w];
        call.extend(self.loop_call_args(lam, parts, ctx)?);
        Ok(self.out.add_expr(ExprKind::Call(call)))
    }

    /// Attempts to specialize and inline the unique callee at a call site.
    /// Returns `Ok(Attempt::Rejected(..))` when the speculation fails
    /// (threshold, free variables); the caller attributes counters, records
    /// the decision, and emits a plain call. Speculative output nodes simply
    /// stay unreachable in the arena; speculative decision records are
    /// truncated on rejection.
    fn try_inline(
        &mut self,
        parts: &[Label],
        ctx: Ctx,
        cid: ClosureId,
        lam: &LambdaInfo,
    ) -> Result<Attempt, Poison> {
        // A *direct local call*: the operator is a let/letrec variable whose
        // right-hand side is this very λ. Such a call always receives the
        // closure created by the current activation of the enclosing scope,
        // so the λ's free variables denote exactly the bindings lexically
        // visible here and may be referenced directly — this is what lets
        // Fig. 2 specialize `map1` (whose `f` is free) inside the inlined
        // copy of `map`.
        let direct_local = match self.sh.old.expr(parts[0]) {
            ExprKind::Var(v) => self.sh.rhs_of.get(v) == Some(&self.sh.flow.closure(cid).lambda),
            _ => false,
        };
        let dmark = self.decisions.len();
        let spec = match self.specialize_cached(cid, lam, direct_local)? {
            SpecAttempt::Open { free_vars } => {
                return Ok(Attempt::Rejected(Reject::Open { free_vars }));
            }
            SpecAttempt::TooBig { size } => {
                return Ok(Attempt::Rejected(Reject::TooBig { size }));
            }
            SpecAttempt::Done(d) => d,
        };

        // Inline? — the size of the specialized body must be under T. The
        // verdict (but never the construction above) depends on the
        // threshold, which is why it runs outside the memoized region; a
        // recording in progress notes it to bound the entry's validity.
        if spec.specialized_size >= self.sh.config.threshold {
            if let Some(rec) = &mut self.rec {
                rec.note_gate(spec.specialized_size, false);
            }
            self.decisions.truncate(dmark);
            return Ok(Attempt::Rejected(Reject::TooBig {
                size: spec.specialized_size,
            }));
        }
        if let Some(rec) = &mut self.rec {
            rec.note_gate(spec.specialized_size, true);
        }

        // Bind cl-refs around the body (Fig. 5's let of (cl-ref w i)).
        let final_body = if spec.cl_ref_binds.is_empty() {
            spec.body
        } else {
            let let_label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
            let mut binds = Vec::new();
            for &(nz, i) in &spec.cl_ref_binds {
                self.out.set_var_binder(nz, Binder::Let(let_label));
                let wref = self.out.add_expr(ExprKind::Var(spec.w));
                let clref = self.out.add_expr(ExprKind::ClRef(wref, i));
                binds.push((nz, clref));
            }
            self.out
                .set_expr(let_label, ExprKind::Let(binds, spec.body));
            let_label
        };

        self.out.set_expr(
            spec.lam_label,
            ExprKind::Lambda(LambdaInfo {
                params: spec.new_params.clone(),
                rest: None,
                body: final_body,
            }),
        );
        // (letrec ((y λ')) (call y I[e0] I[e1] … I[en]))
        let yref = self.out.add_expr(ExprKind::Var(spec.y));
        let warg = self.w_argument(parts[0], ctx)?;
        let mut call_parts = vec![yref, warg];
        call_parts.extend(self.loop_call_args(lam, parts, ctx)?);
        let ncall = self.out.add_expr(ExprKind::Call(call_parts));
        self.out.set_expr(
            spec.letrec_label,
            ExprKind::Letrec(vec![(spec.y, spec.lam_label)], ncall),
        );
        self.report.sites_inlined += 1;
        Ok(Attempt::Inlined(spec.letrec_label, spec.specialized_size))
    }

    /// [`Inliner::specialize`] through the memo table when this site is
    /// *outermost* (depth 0, no budget gate, no recording already open):
    /// a valid cached variant is replayed into the arena; a miss records
    /// the live construction as a new variant.
    fn specialize_cached(
        &mut self,
        cid: ClosureId,
        lam: &LambdaInfo,
        direct_local: bool,
    ) -> Result<SpecAttempt, Poison> {
        let Some((cache, salt)) = self.sh.cache else {
            return self.specialize(cid, lam, direct_local);
        };
        if self.depth != 0 || self.sh.gate.is_some() || self.rec.is_some() {
            return self.specialize(cid, lam, direct_local);
        }
        let key = (salt, cid, direct_local);
        let hit = cache.probe(key, self.sh.config.threshold, |deps| self.deps_hold(deps));
        if let Some(entry) = hit {
            self.run_hits += 1;
            return Ok(self.replay(&entry));
        }
        self.run_misses += 1;
        self.rec = Some(Recording::new(
            self.vmap.len(),
            self.loop_map.len(),
            self.decisions.len(),
            self.out.expr_count(),
            self.out.var_count(),
            self.report,
        ));
        let result = self.specialize(cid, lam, direct_local);
        let rec = self.rec.take().expect("recording survives specialization");
        if let Ok(attempt) = &result {
            cache.insert(key, self.build_entry(rec, attempt));
        }
        result
    }

    /// Does a recorded footprint still describe the current ambient scope?
    fn deps_hold(&self, deps: &[FootDep]) -> bool {
        deps.iter().all(|d| match *d {
            FootDep::Var(v, expect) => self.lookup_raw(v) == expect,
            FootDep::Loop(l, k, expect) => self.loop_var_raw(l, k) == expect,
        })
    }

    /// Splices a memoized arena delta into the output, relocating region
    /// labels/variables to the current bases (ambient references recorded
    /// below the entry's bases are kept verbatim — the footprint check
    /// guarantees they resolve identically here).
    fn replay(&mut self, entry: &SpecEntry) -> SpecAttempt {
        let eb = self.out.expr_count() as u32;
        let vb = self.out.var_count() as u32;
        let (e0, v0) = entry.bases();
        let rl = move |l: Label| {
            if l.0 >= e0 {
                Label(l.0 - e0 + eb)
            } else {
                l
            }
        };
        let rv = move |v: VarId| {
            if v.0 >= v0 {
                VarId(v.0 - v0 + vb)
            } else {
                v
            }
        };
        for k in entry.exprs() {
            let nk = fdi_lang::map_expr_refs(k, rl, rv);
            self.out.add_expr(nk);
        }
        for vi in entry.vars() {
            self.out.add_var(VarInfo {
                name: vi.name,
                binder: vi.binder.map_label(rl),
                top_level: vi.top_level,
            });
        }
        for (l, pins) in entry.pins() {
            self.out
                .pin_captures(rl(*l), pins.iter().map(|&p| rv(p)).collect());
        }
        self.report = self.report.merged(entry.report_delta());
        for d in entry.decisions() {
            let mut d = d.clone();
            // Nested threshold rejections embed the recording run's limit;
            // restate them against the current one.
            if let DecisionReason::ThresholdExceeded { size, .. } = d.reason {
                d.reason = DecisionReason::ThresholdExceeded {
                    size,
                    limit: self.sh.config.threshold,
                };
                d.verdict = d.reason.verdict();
            }
            self.decisions.push(d);
        }
        match entry.outcome() {
            SpecAttempt::Open { free_vars } => SpecAttempt::Open {
                free_vars: *free_vars,
            },
            SpecAttempt::TooBig { size } => SpecAttempt::TooBig { size: *size },
            SpecAttempt::Done(d) => SpecAttempt::Done(SpecData {
                letrec_label: rl(d.letrec_label),
                lam_label: rl(d.lam_label),
                y: rv(d.y),
                w: rv(d.w),
                new_params: d.new_params.iter().map(|&p| rv(p)).collect(),
                body: rl(d.body),
                cl_ref_binds: d.cl_ref_binds.iter().map(|&(v, i)| (rv(v), i)).collect(),
                specialized_size: d.specialized_size,
            }),
        }
    }

    /// Packages a finished recording as a cache entry: the arena delta
    /// since the recording's bases plus footprint, validity interval, and
    /// report/decision deltas.
    fn build_entry(&self, rec: Recording, attempt: &SpecAttempt) -> SpecEntry {
        let exprs: Vec<ExprKind> = (rec.e0..self.out.expr_count())
            .map(|i| self.out.expr(Label(i as u32)).clone())
            .collect();
        let vars: Vec<VarInfo> = (rec.v0..self.out.var_count())
            .map(|i| *self.out.var(VarId(i as u32)))
            .collect();
        SpecEntry::from_recording(
            rec,
            attempt.clone(),
            exprs,
            vars,
            self.report,
            &self.decisions,
        )
    }

    /// Constructs the specialized copy of the unique callee: skeleton
    /// labels, free-variable discipline, parameter renaming, loop-map
    /// registration, and the recursive body transform. Everything here is a
    /// deterministic function of `(cid, direct_local)`, the run
    /// configuration, and the ambient facts the construction looks up —
    /// crucially, *not* of the size threshold, which only enters through
    /// the caller's `Inline?` gate and the abort guard (both captured in a
    /// recording's validity interval). That is what makes this the
    /// memoization boundary.
    fn specialize(
        &mut self,
        cid: ClosureId,
        lam: &LambdaInfo,
        direct_local: bool,
    ) -> Result<SpecAttempt, Poison> {
        let c = self.sh.flow.closure(cid);
        let body_ctx = self.sh.flow.closure_body_ctx(cid);
        let free = self
            .sh
            .fv
            .get(c.lambda)
            .map(<[VarId]>::to_vec)
            .unwrap_or_default();

        // Set up the specialized λ skeleton.
        let letrec_label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
        let lam_label = self.out.add_expr(ExprKind::Const(Const::Unspecified));
        let y = self.fresh_var("%inl", Binder::Letrec(letrec_label), false);
        let w = self.fresh_var("%w", Binder::Lambda(lam_label), false);

        let vmark = self.vmap.len();
        let lmark = self.loop_map.len();
        let dmark = self.decisions.len();
        // Free-variable discipline.
        let mut poisoned = 0usize;
        let mut cl_ref_binds: Vec<(VarId, u32)> = Vec::new(); // (new var, index)
        for (i, &z) in free.iter().enumerate() {
            let info = *self.sh.old.var(z);
            match self.sh.config.mode {
                InlineMode::Closed => {
                    if (info.top_level || direct_local)
                        && self.lookup(z).is_some_and(|m| m.is_some())
                    {
                        // Top-level variables have a single activation, and a
                        // direct local call sees the creating activation's
                        // bindings: reference them through the enclosing
                        // mapping (no push).
                    } else {
                        // Poison: the specialization only survives if this
                        // reference disappears (pruned branch or inlined
                        // procedure reference).
                        self.vmap.push((z, None));
                        poisoned += 1;
                    }
                }
                InlineMode::ClRef => {
                    if (info.top_level || direct_local)
                        && self.lookup(z).is_some_and(|m| m.is_some())
                    {
                        // Direct references beat cl-ref loads when sound.
                    } else {
                        let name = self.sh.old.var_name(z).to_string();
                        let nz = self.fresh_var(&name, Binder::Let(Label(0)), false);
                        self.vmap.push((z, Some(nz)));
                        cl_ref_binds.push((nz, i as u32));
                    }
                }
            }
        }
        // Parameters (fixed arity in the emitted λ; rest becomes explicit).
        let mut new_params = vec![w];
        for &p in &lam.params {
            new_params.push(self.fresh_from(p, Binder::Lambda(lam_label)));
        }
        if let Some(r) = lam.rest {
            new_params.push(self.fresh_from(r, Binder::Lambda(lam_label)));
        }
        // Guard against unbounded unfolding of this closure. The key is the
        // closure's identity (λ, creation contour) — a recursive reference
        // yields the same abstract closure under every policy, so the
        // back-edge is caught even when the body specializes in the union
        // context (call-strings policy, whose body contours the transformer
        // does not track).
        self.loop_map.push(((c.lambda, c.contour), (y, true)));
        self.depth += 1;
        let smark = self.out.expr_count();
        self.size_marks.push(smark);
        let body = self.transform(lam.body, body_ctx);
        self.size_marks.pop();
        self.depth -= 1;
        self.vmap.truncate(vmark);
        self.loop_map.truncate(lmark);
        let body = match body {
            Ok(b) => b,
            Err(Poison::Open) => {
                // This specialization references a disallowed free variable:
                // reject it and let the caller emit a plain call (enclosing
                // speculations are unaffected). Counter attribution lives
                // with the caller, which knows whether this was an unroll
                // attempt or an ordinary site.
                self.decisions.truncate(dmark);
                return Ok(SpecAttempt::Open {
                    free_vars: poisoned,
                });
            }
            Err(Poison::TooBig) => {
                // The *outermost* budget was exceeded. If that is this
                // speculation, reject it; otherwise keep unwinding.
                if self.size_marks.is_empty() {
                    self.decisions.truncate(dmark);
                    return Ok(SpecAttempt::TooBig {
                        size: self.out.expr_count().saturating_sub(smark),
                    });
                }
                return Err(Poison::TooBig);
            }
        };

        let specialized_size = fdi_lang::expr_size(&self.out, body);
        Ok(SpecAttempt::Done(SpecData {
            letrec_label,
            lam_label,
            y,
            w,
            new_params,
            body,
            cl_ref_binds,
            specialized_size,
        }))
    }
}

#[cfg(test)]
mod tests;
